//! Cross-crate integration tests: every mechanism on a full pipeline, with
//! the invariants the paper claims (semantics preservation, state
//! conservation, completion).

use drrs_repro::baselines::{
    megaphone, otfs_all_at_once, otfs_fluid, MecesPlugin, StopRestartPlugin, UnboundPlugin,
};
use drrs_repro::drrs::{FlexScaler, MechanismConfig};
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::{EngineConfig, ScalePlugin};
use drrs_repro::sim::time::secs;

fn scaled_run(plugin: Box<dyn ScalePlugin>, horizon: u64) -> Sim {
    let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 2);
    w.schedule_scale(secs(2), agg, 4);
    let mut sim = Sim::new(w, plugin);
    sim.run_until(secs(horizon));
    sim
}

fn semantic_mechanisms() -> Vec<(&'static str, Box<dyn ScalePlugin>)> {
    vec![
        ("DRRS", Box::new(FlexScaler::drrs())),
        ("DR", Box::new(FlexScaler::new(MechanismConfig::dr_only()))),
        (
            "Schedule",
            Box::new(FlexScaler::new(MechanismConfig::schedule_only())),
        ),
        (
            "Subscale",
            Box::new(FlexScaler::new(MechanismConfig::subscale_only())),
        ),
        ("OTFS", Box::new(otfs_fluid())),
        ("OTFS-AAO", Box::new(otfs_all_at_once())),
        ("Megaphone", Box::new(megaphone(1))),
        ("Stop-Restart", Box::new(StopRestartPlugin::new())),
    ]
}

#[test]
fn all_semantic_mechanisms_preserve_order_and_complete() {
    for (name, plugin) in semantic_mechanisms() {
        let sim = scaled_run(plugin, 25);
        assert!(
            !sim.world.scale.in_progress,
            "{name}: migration incomplete at horizon"
        );
        assert_eq!(
            sim.world.semantics.violations(),
            0,
            "{name}: order violations {:?}",
            sim.world.semantics.samples()
        );
    }
}

#[test]
fn all_mechanisms_conserve_state_units() {
    // No key-group may be lost or duplicated, whatever the mechanism.
    let mut all: Vec<(&str, Box<dyn ScalePlugin>)> = semantic_mechanisms();
    all.push(("Meces", Box::new(MecesPlugin::new())));
    for (name, plugin) in all {
        let sim = scaled_run(plugin, 30);
        let w = &sim.world;
        let agg_op = w.scale.plan.as_ref().expect("plan").op;
        for g in 0..w.cfg.max_key_groups {
            let holders: Vec<_> = w.ops[agg_op.0 as usize]
                .instances
                .iter()
                .filter(|&&i| {
                    w.insts[i.0 as usize]
                        .state
                        .holds_group(drrs_repro::engine::KeyGroup(g))
                })
                .collect();
            assert_eq!(
                holders.len(),
                1,
                "{name}: key-group {g} held by {holders:?}"
            );
        }
    }
}

#[test]
fn meces_completes_but_may_reorder() {
    let sim = scaled_run(Box::new(MecesPlugin::new()), 40);
    assert!(!sim.world.scale.in_progress, "Meces incomplete");
    // Violations may be zero at low load; the dedicated baseline test
    // exercises the overload case. Here we only require conservation +
    // completion (asserted above) and that the sink kept receiving.
    assert!(sim.world.metrics.sink_records > 50_000);
}

#[test]
fn unbound_total_counts_match_sink() {
    let sim = scaled_run(Box::new(UnboundPlugin::new()), 20);
    let w = &sim.world;
    let agg_op = w.scale.plan.as_ref().expect("plan").op;
    let total: u64 = w.ops[agg_op.0 as usize]
        .instances
        .iter()
        .map(|&i| {
            w.insts[i.0 as usize]
                .state
                .snapshot_counts()
                .values()
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total, w.metrics.sink_records);
}

#[test]
fn scaling_rebalances_load() {
    // After a 2→4 DRRS scale, new instances end up owning state and doing work.
    let sim = scaled_run(Box::new(FlexScaler::drrs()), 25);
    let w = &sim.world;
    let agg_op = w.scale.plan.as_ref().expect("plan").op;
    for &i in &w.ops[agg_op.0 as usize].instances {
        let inst = &w.insts[i.0 as usize];
        assert!(
            inst.state.total_keys() > 0,
            "{i} owns no keys after rescale"
        );
        assert!(inst.processed > 0, "{i} processed nothing after rescale");
    }
}

#[test]
fn back_to_back_scales_supersede_cleanly() {
    // Scale 2→3, then 3→4 after the first completes.
    let (mut w, agg) = tiny_job(EngineConfig::test(), 3_000.0, 256, 2);
    w.schedule_scale(secs(2), agg, 3);
    w.schedule_scale(secs(6), agg, 4);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(12));
    assert_eq!(sim.world.ops[agg.0 as usize].instances.len(), 4);
    assert!(!sim.world.scale.in_progress, "second scale incomplete");
    assert_eq!(sim.world.semantics.violations(), 0);
}
