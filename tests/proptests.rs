//! Property-based tests over the core data structures and the scaling
//! invariants, per the repo's testing strategy (DESIGN.md §7).

use std::collections::HashSet;

use drrs_repro::drrs::{divide_subscales, FlexScaler, MechanismConfig};
use drrs_repro::engine::ids::{key_group_of, sub_group_of, InstId, KeyGroup};
use drrs_repro::engine::keygroup::{uniform_repartition, KgMove, RoutingTable};
use drrs_repro::engine::state::{StateBackend, StateValue};
use drrs_repro::engine::window::{Agg, PaneSet};
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::EngineConfig;
use drrs_repro::sim::time::secs;
use drrs_repro::sim::{DetRng, FutureEventList, SchedulerBackend, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn key_groups_always_in_range(key in any::<u64>(), kgs in 1u16..=1024) {
        prop_assert!(key_group_of(key, kgs).0 < kgs);
    }

    #[test]
    fn sub_groups_always_in_range(key in any::<u64>(), fanout in 1u8..=16) {
        prop_assert!(sub_group_of(key, 128, fanout) < fanout.max(1));
    }

    #[test]
    fn uniform_routing_partitions_all_groups(kgs in 1u16..=512, n in 1u32..=64) {
        let targets: Vec<InstId> = (0..n).map(InstId).collect();
        let t = RoutingTable::uniform(kgs, &targets);
        let mut counts = vec![0u32; n as usize];
        for g in 0..kgs {
            counts[t.route(KeyGroup(g)).0 as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<u32>() as u16, kgs);
        // Balanced to within one group.
        let (lo, hi) = (counts.iter().min().copied().unwrap_or(0), counts.iter().max().copied().unwrap_or(0));
        prop_assert!(hi - lo <= 1, "imbalance {:?}", counts);
    }

    #[test]
    fn repartition_moves_are_minimal_and_consistent(kgs in 8u16..=256, old_n in 1u32..=16, add in 1u32..=8) {
        let old_t: Vec<InstId> = (0..old_n).map(InstId).collect();
        let new_t: Vec<InstId> = (0..old_n + add).map(InstId).collect();
        let old = RoutingTable::uniform(kgs, &old_t);
        let new = RoutingTable::uniform(kgs, &new_t);
        let moves = uniform_repartition(&old, &new_t);
        let moved: HashSet<u16> = moves.iter().map(|m| m.kg.0).collect();
        prop_assert_eq!(moved.len(), moves.len(), "duplicate moves");
        for g in 0..kgs {
            let kg = KeyGroup(g);
            if moved.contains(&g) {
                prop_assert_ne!(old.route(kg), new.route(kg));
            } else {
                prop_assert_eq!(old.route(kg), new.route(kg));
            }
        }
    }

    #[test]
    fn subscale_division_is_a_partition(n_moves in 1usize..200, target in 1usize..32) {
        let moves: Vec<KgMove> = (0..n_moves)
            .map(|i| KgMove {
                kg: KeyGroup(i as u16),
                from: InstId((i % 5) as u32),
                to: InstId(10 + (i % 3) as u32),
            })
            .collect();
        let subs = divide_subscales(&moves, target);
        let mut seen = HashSet::new();
        for s in &subs {
            prop_assert!(!s.kgs.is_empty());
            for kg in &s.kgs {
                prop_assert!(seen.insert(kg.0), "kg {} in two subscales", kg.0);
            }
            // Single (from, to) pair per subscale.
            for m in &moves {
                if s.kgs.contains(&m.kg) {
                    prop_assert_eq!(m.from, s.from);
                    prop_assert_eq!(m.to, s.to);
                }
            }
        }
        prop_assert_eq!(seen.len(), n_moves);
    }

    #[test]
    fn state_extract_install_preserves_counts(
        keys in proptest::collection::vec((any::<u64>(), 1u64..1000), 1..50)
    ) {
        let mut b = StateBackend::new(16, 1);
        for g in 0..16 {
            b.ensure_group(KeyGroup(g));
        }
        let mut expect = std::collections::HashMap::new();
        for &(k, c) in &keys {
            let kg = key_group_of(k, 16);
            if let StateValue::Count(v) = b.entry_or(kg, k, || StateValue::Count(0)) {
                *v += c;
            }
            *expect.entry(k).or_insert(0u64) += c;
        }
        // Move every group to a second backend.
        let mut b2 = StateBackend::new(16, 1);
        for g in 0..16 {
            for u in b.extract_group(KeyGroup(g)) {
                b2.install(u, true);
            }
        }
        prop_assert_eq!(b.total_keys(), 0);
        prop_assert_eq!(b2.snapshot_counts(), expect);
    }

    #[test]
    fn panes_window_agg_matches_naive(
        events in proptest::collection::vec((0u64..1000, -100i64..100), 1..60),
        slide in 1u64..50,
        size_mult in 1u64..6
    ) {
        let size = slide * size_mult;
        let mut p = PaneSet::default();
        for &(t, v) in &events {
            p.add(t, v, 1, slide, Agg::Sum);
        }
        let end: u64 = 1000;
        let naive: i64 = events
            .iter()
            .filter(|&&(t, _)| (t / slide) * slide >= end.saturating_sub(size) && t < end)
            .map(|&(_, v)| v)
            .sum();
        let got = p.window_agg(end, size, Agg::Sum).map(|(v, _)| v).unwrap_or(0);
        prop_assert_eq!(got, naive);
    }

    #[test]
    fn zipf_samples_within_universe(n in 1usize..500, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = DetRng::seed(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn scheduler_backends_pop_identical_sequences(
        // Random interleavings of schedule / schedule_at / pop /
        // peek_time / pop_at_most. Ops are (kind, value) pairs; the value
        // steers the delay or absolute time, deliberately covering
        // past-clamped times (kind 2 draws absolute times that often land
        // before "now"), massed same-timestamp ties (kind 1 always uses
        // the same short delay), and cursor-advancing peeks and
        // horizon-limited pops (kinds 4-5 — these walk the calendar's
        // scan cursor ahead without popping, the precondition for its
        // pull-back and overflow-migration edge cases).
        ops in proptest::collection::vec((0u8..7, 0u64..5_000), 1..400),
        heap_cap in 0usize..300,
        cal_cap in 0usize..300,
    ) {
        let mut heap: FutureEventList<u64> =
            FutureEventList::with_backend(SchedulerBackend::BinaryHeap, heap_cap);
        let mut cal: FutureEventList<u64> =
            FutureEventList::with_backend(SchedulerBackend::Calendar, cal_cap);
        let mut heap_buf: Vec<u64> = Vec::new();
        let mut cal_buf: Vec<u64> = Vec::new();
        for (i, &(kind, v)) in ops.iter().enumerate() {
            let id = i as u64;
            match kind {
                0 => {
                    // Mixed horizons: mostly short, occasionally far future
                    // (exercises the calendar's overflow tier).
                    let delay = if v % 7 == 0 { v * 997 } else { v % 800 };
                    heap.schedule(delay, id);
                    cal.schedule(delay, id);
                }
                1 => {
                    // Massed ties at one instant: FIFO seq order must hold.
                    heap.schedule(13, id);
                    cal.schedule(13, id);
                }
                2 => {
                    // Absolute times, frequently in the past (clamped to
                    // "now" — both lists must clamp identically).
                    heap.schedule_at(v, id);
                    cal.schedule_at(v, id);
                }
                3 => {
                    prop_assert_eq!(heap.pop(), cal.pop(), "pop diverged at op {}", i);
                    prop_assert_eq!(heap.now(), cal.now());
                }
                4 => {
                    prop_assert_eq!(
                        heap.peek_time(),
                        cal.peek_time(),
                        "peek diverged at op {}",
                        i
                    );
                }
                5 => {
                    let horizon = heap.now().saturating_add(v);
                    prop_assert_eq!(
                        heap.pop_at_most(horizon),
                        cal.pop_at_most(horizon),
                        "pop_at_most diverged at op {}",
                        i
                    );
                    prop_assert_eq!(heap.now(), cal.now());
                }
                _ => {
                    // Batch drain of the earliest same-instant run — both
                    // backends must return the same instant and the same
                    // FIFO-ordered payload run (dry probes included).
                    let horizon = heap.now().saturating_add(v % 2_500);
                    let h = heap.pop_run_at_most(horizon, &mut heap_buf);
                    let c = cal.pop_run_at_most(horizon, &mut cal_buf);
                    prop_assert_eq!(h, c, "pop_run_at_most diverged at op {}", i);
                    prop_assert_eq!(&heap_buf, &cal_buf, "batch run diverged at op {}", i);
                    prop_assert_eq!(heap.now(), cal.now());
                    prop_assert_eq!(heap.processed(), cal.processed());
                }
            }
            prop_assert_eq!(heap.len(), cal.len(), "len diverged at op {}", i);
        }
        // Drain: the full remaining sequences must match, element by element.
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(h, c, "drain diverged");
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn dry_jump_then_earlier_schedule_pops_in_order(
        // The calendar's horizon probes (`pop_at_most`/`pop_run_at_most`
        // returning `None`) are not read-only: they advance the scan
        // cursor and migrate overflow events into the rolling window. A
        // schedule_at for an *earlier but still future* instant right
        // after such a dry jump lands behind the mutated cursor state —
        // the exact precondition of the PR 3 pull-back bugs. Property:
        // after any prefix of (pending set, dry jump, earlier schedule),
        // both backends drain the identical sequence, globally sorted by
        // time with FIFO order among ties.
        pending in proptest::collection::vec((1u64..100_000, 0u64..4), 1..60),
        probes in proptest::collection::vec((0u64..120_000, 1u64..50_000, any::<bool>()), 1..12),
    ) {
        let mut heap: FutureEventList<u64> =
            FutureEventList::with_backend(SchedulerBackend::BinaryHeap, 0);
        let mut cal: FutureEventList<u64> =
            FutureEventList::with_backend(SchedulerBackend::Calendar, 0);
        // `expected` mirrors the FEL contract: (clamped at, schedule order).
        let mut expected: Vec<(u64, u64)> = Vec::new();
        let mut id = 0u64;
        let sched = |heap: &mut FutureEventList<u64>,
                         cal: &mut FutureEventList<u64>,
                         expected: &mut Vec<(u64, u64)>,
                         id: &mut u64,
                         at: u64| {
            let clamped = at.max(heap.now());
            heap.schedule_at(at, *id);
            cal.schedule_at(at, *id);
            expected.push((clamped, *id));
            *id += 1;
        };
        for &(at, extra_ties) in &pending {
            // Seed a mixed pending set, some instants massed.
            for _ in 0..=extra_ties {
                sched(&mut heap, &mut cal, &mut expected, &mut id, at);
            }
        }
        for &(probe_offset, earlier_gap, batch) in &probes {
            // A horizon probe that may or may not be dry; dry probes walk
            // the calendar cursor ahead (and can jump it to the overflow
            // head's day) without popping.
            let horizon = heap.now().saturating_add(probe_offset % 3_000);
            if batch {
                let mut hb = Vec::new();
                let mut cb = Vec::new();
                let h = heap.pop_run_at_most(horizon, &mut hb);
                prop_assert_eq!(h, cal.pop_run_at_most(horizon, &mut cb));
                prop_assert_eq!(&hb, &cb);
                for &e in &hb {
                    let min = expected.iter().enumerate().min_by_key(|(_, &(t, s))| (t, s))
                        .map(|(i, _)| i).expect("popped from non-empty");
                    let (t, s) = expected.remove(min);
                    prop_assert_eq!((t, s), (h.expect("popped"), e), "batch run out of order");
                }
            } else {
                let got = heap.pop_at_most(horizon);
                prop_assert_eq!(got, cal.pop_at_most(horizon));
                if let Some((t, e)) = got {
                    let min = expected.iter().enumerate().min_by_key(|(_, &(t, s))| (t, s))
                        .map(|(i, _)| i).expect("popped from non-empty");
                    prop_assert_eq!(expected.remove(min), (t, e), "pop out of order");
                }
            }
            prop_assert_eq!(heap.now(), cal.now());
            // Now schedule an *earlier but still future* instant than the
            // current pending minimum: strictly behind wherever the dry
            // jump left the cursor, but at or after "now".
            let min_pending = expected.iter().map(|&(t, _)| t).min();
            let target = match min_pending {
                Some(m) if m > heap.now() => heap.now() + (m - heap.now()).min(earlier_gap),
                _ => heap.now() + earlier_gap,
            };
            sched(&mut heap, &mut cal, &mut expected, &mut id, target);
        }
        // Full drain must come out globally (at, seq)-sorted and identical
        // across backends.
        expected.sort_unstable();
        let mut got = Vec::new();
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(h, c, "backends diverged during drain");
            match h {
                Some(p) => got.push(p),
                None => break,
            }
        }
        prop_assert_eq!(got, expected, "drain not in (at, seq) order");
    }
}

proptest! {
    // Full-simulation properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn drrs_preserves_order_under_randomized_scaling(
        seed in 0u64..1000,
        scale_at_ms in 500u64..3000,
        subscales in 1usize..12,
        new_par in 3usize..6
    ) {
        let mut cfg = EngineConfig::test();
        cfg.seed = seed;
        let (mut w, agg) = tiny_job(cfg, 5_000.0, 256, 2);
        w.schedule_scale(scale_at_ms * 1_000, agg, new_par);
        let mech = MechanismConfig { subscale_count: subscales, ..MechanismConfig::drrs() };
        let mut sim = Sim::new(w, Box::new(FlexScaler::new(mech)));
        sim.run_until(secs(12));
        prop_assert!(!sim.world.scale.in_progress, "incomplete");
        prop_assert_eq!(sim.world.semantics.violations(), 0);
        // Conservation: each group owned exactly once.
        let moves = sim.world.scale.plan.as_ref().expect("plan").moves.clone();
        for m in &moves {
            prop_assert!(sim.world.insts[m.to.0 as usize].state.holds_group(m.kg));
        }
    }

    #[test]
    fn region_partitioning_preserves_digests_on_random_graphs(
        // Random linear operator graphs (random stage count, per-stage
        // parallelism, edge kinds, rate) run under a random region count:
        // the K-region schedule must produce a byte-identical metrics
        // digest, event count and final clock to the sequential engine,
        // in both dispatch modes. This is the region contract the engine
        // unit tests pin on fixed jobs, generalized over graph shape.
        seed in 0u64..1000,
        stages in 1usize..4,
        pars in proptest::collection::vec(1usize..4, 3),
        services in proptest::collection::vec(10u64..120, 3),
        regions in 2usize..6,
        batch in any::<bool>(),
        rate in 1_000u64..8_000,
    ) {
        use drrs_repro::engine::graph::{EdgeKind, JobBuilder};
        use drrs_repro::engine::operator::KeyedAgg;
        use drrs_repro::engine::world::tests_support::FixedGen;
        use drrs_repro::engine::world::DispatchMode;

        let run = |k: usize| {
            let mut cfg = EngineConfig::test();
            cfg.seed = seed;
            cfg.regions = k;
            let mut b = JobBuilder::new(cfg);
            let src = b.source(
                "src",
                1,
                Box::new(move |_| Box::new(FixedGen::new(rate as f64, 256))),
            );
            let mut prev = src;
            for s in 0..stages {
                let service = services[s];
                let op = b.operator(
                    &format!("op{s}"),
                    pars[s],
                    Box::new(move || Box::new(KeyedAgg {
                        service,
                        bytes_per_key: 500,
                        bytes_per_record: 0,
                        emit_every: 1,
                    })),
                );
                // Keyed state demands keyed routing on every operator
                // inbound edge; only the sink edge may rebalance.
                b.connect(prev, op, EdgeKind::Keyed);
                prev = op;
            }
            let sink = b.sink("sink", 1);
            b.connect(prev, sink, EdgeKind::Rebalance);
            let mode = if batch { DispatchMode::Batch } else { DispatchMode::SinglePop };
            let mut sim = Sim::new(b.build(), Box::new(drrs_repro::engine::NoScale))
                .with_dispatch_mode(mode);
            sim.run_until(secs(2));
            (
                sim.world.metrics_digest(),
                sim.world.q.processed(),
                sim.world.q.now(),
                sim.world.metrics.sink_records,
            )
        };
        let reference = run(1);
        let partitioned = run(regions);
        prop_assert_eq!(reference, partitioned, "{} regions diverged from sequential", regions);
    }

    #[test]
    fn parallel_execution_matches_sequential_on_random_graphs(
        // The thread-per-region executor's exactness contract, generalized
        // over graph shape: random keyed pipelines × random region count ×
        // resume latency ∈ {0, small}. At resume_latency = 0 `run_parallel`
        // must fall back to the sequential engine (no lookahead to run
        // epochs on); at > 0 the threaded run must reproduce the
        // sequential PDES engine's digest, processed count and sink
        // records exactly — same quad, independent of thread scheduling.
        seed in 0u64..1000,
        stages in 1usize..4,
        pars in proptest::collection::vec(1usize..4, 3),
        services in proptest::collection::vec(10u64..120, 3),
        regions in 2usize..6,
        rl_pick in 0usize..3,
        rate in 1_000u64..8_000,
    ) {
        // Resume latency axis: 0 (sequential-fallback contract) and two
        // small real lookaheads (PDES epochs).
        let resume_latency = [0u64, 100, 400][rl_pick];
        use drrs_repro::engine::graph::{EdgeKind, JobBuilder};
        use drrs_repro::engine::operator::KeyedAgg;
        use drrs_repro::engine::world::tests_support::FixedGen;

        let pars = &pars;
        let services = &services;
        let build = move || {
            let mut cfg = EngineConfig::test();
            cfg.seed = seed;
            cfg.regions = regions;
            cfg.resume_latency = resume_latency;
            let mut b = JobBuilder::new(cfg);
            let src = b.source(
                "src",
                1,
                Box::new(move |_| Box::new(FixedGen::new(rate as f64, 256))),
            );
            let mut prev = src;
            for s in 0..stages {
                let service = services[s];
                let op = b.operator(
                    &format!("op{s}"),
                    pars[s],
                    Box::new(move || Box::new(KeyedAgg {
                        service,
                        bytes_per_key: 500,
                        bytes_per_record: 0,
                        emit_every: 1,
                    })),
                );
                b.connect(prev, op, EdgeKind::Keyed);
                prev = op;
            }
            let sink = b.sink("sink", 1);
            b.connect(prev, sink, EdgeKind::Rebalance);
            Sim::new(b.build(), Box::new(drrs_repro::engine::NoScale))
        };
        let mut seq = build();
        seq.run_until(secs(1));
        prop_assert_eq!(seq.world.q.now(), secs(1), "sequential clock short of horizon");
        let report = drrs_repro::engine::run_parallel(build, secs(1));
        if resume_latency == 0 {
            prop_assert_eq!(report.threads, 1, "rl=0 must fall back to the sequential engine");
        }
        prop_assert_eq!(
            report.digest(), seq.world.metrics_digest(),
            "parallel digest diverged (k={}, rl={})", regions, resume_latency
        );
        prop_assert_eq!(report.obs.processed, seq.world.q.processed());
        prop_assert_eq!(report.obs.sink_records, seq.world.metrics.sink_records);
    }

    #[test]
    fn parallel_executor_never_deadlocks_under_backpressure(
        // Backpressured tiny job on the threaded executor: blocked senders
        // wake via reverse pump edges, which under PDES carry only the
        // configured resume latency of lookahead — small lookahead + full
        // channels is the classic conservative-deadlock shape, now with
        // real barriers a stuck region would hang on forever. The run is
        // executed under a wall-clock watchdog: completion within the
        // bound *is* the deadlock-freedom property.
        seed in 0u64..200,
        regions in 2usize..6,
        resume_latency in 50u64..500,
    ) {
        use std::sync::mpsc;
        use std::time::Duration;

        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let report = drrs_repro::engine::run_parallel(
                move || {
                    let mut cfg = EngineConfig::test();
                    cfg.seed = seed;
                    cfg.regions = regions;
                    cfg.resume_latency = resume_latency;
                    let (w, _) = tiny_job(cfg, 30_000.0, 64, 2);
                    Sim::new(w, Box::new(drrs_repro::engine::NoScale))
                },
                secs(1),
            );
            let _ = tx.send(report);
        });
        // Generous bound: a healthy run takes well under a second even in
        // debug builds; a deadlocked barrier never returns at all.
        let report = rx.recv_timeout(Duration::from_secs(120));
        prop_assert!(report.is_ok(), "parallel run exceeded the deadlock watchdog");
        let report = report.unwrap();
        prop_assert!(report.obs.processed > 0, "no events dispatched");
        prop_assert!(
            report.threads == 1 || report.stats.epochs > 0,
            "threaded run recorded no epochs"
        );
    }

    #[test]
    fn region_scheduler_never_deadlocks(
        // Backpressured tiny job: blocked senders are woken by receiver-side
        // pumps, which are zero-lookahead reverse edges between regions —
        // the classic conservative-PDES deadlock shape. Any region count
        // must still drain every event up to the horizon and land the
        // clock exactly there, with every region's own clock caught up on
        // its pending work.
        seed in 0u64..200,
        regions in 2usize..6,
        par in 1usize..4,
    ) {
        let mut cfg = EngineConfig::test();
        cfg.seed = seed;
        cfg.regions = regions;
        let (w, _) = tiny_job(cfg, 30_000.0, 64, par);
        let mut sim = Sim::new(w, Box::new(drrs_repro::engine::NoScale));
        sim.run_until(secs(2));
        prop_assert!(sim.world.q.processed() > 0, "no events dispatched");
        prop_assert_eq!(sim.world.q.now(), secs(2), "clock stalled before the horizon");
        let stats = sim.world.q.region_sync_stats();
        prop_assert!(stats.runs > 0, "no region runs accounted");
    }

    #[test]
    fn event_bus_is_digest_neutral_on_random_graphs(
        // The bus contract: publishing telemetry must not perturb the
        // simulation. Random backpressured jobs (which exercise every
        // event class: metrics ticks, backpressure transitions, sync
        // epochs) run with the bus off (`Null`) and on (`Mem`), across
        // random region counts, sequentially and — when a lookahead
        // exists — on the thread-per-region executor: every digest quad
        // must be identical, and the bus's own lag/drop counters must be
        // reproducible run-over-run.
        seed in 0u64..1000,
        regions in 1usize..5,
        par in 1usize..4,
        rate in 5_000u64..30_000,
    ) {
        use drrs_repro::engine::BusSinkKind;

        let build = move |sink: BusSinkKind| {
            let mut cfg = EngineConfig::test();
            cfg.seed = seed;
            cfg.regions = regions;
            cfg.resume_latency = 100;
            cfg.bus_sink = sink;
            let (w, _) = tiny_job(cfg, rate as f64, 64, par);
            Sim::new(w, Box::new(drrs_repro::engine::NoScale))
        };
        let quad = |sim: &mut Sim| {
            sim.run_until(secs(1));
            (
                sim.world.metrics_digest(),
                sim.world.q.processed(),
                sim.world.q.now(),
                sim.world.metrics.sink_records,
            )
        };
        let off = quad(&mut build(BusSinkKind::Null));
        let mut on = build(BusSinkKind::Mem);
        let on_quad = quad(&mut on);
        prop_assert_eq!(off, on_quad, "Mem-sink run diverged from Null");
        on.world.bus.drain();
        let summary = on.world.bus.summary();
        prop_assert!(summary.published > 0, "enabled bus published nothing");
        // Counter determinism: a rerun reports the same accounting.
        let mut again = build(BusSinkKind::Mem);
        let _ = quad(&mut again);
        again.world.bus.drain();
        prop_assert_eq!(again.world.bus.summary(), summary);
        // And the threaded executor, bus on, still matches the quad.
        let report = drrs_repro::engine::run_parallel(move || build(BusSinkKind::Mem), secs(1));
        prop_assert_eq!(report.digest(), off.0, "parallel Mem-sink digest diverged");
        prop_assert_eq!(report.obs.processed, off.1);
        prop_assert_eq!(report.obs.sink_records, off.3);
    }

    #[test]
    fn channel_credits_never_oversubscribe(seed in 0u64..200) {
        let mut cfg = EngineConfig::test();
        cfg.seed = seed;
        let (w, _) = tiny_job(cfg, 30_000.0, 64, 1);
        let mut sim = Sim::new(w, Box::new(drrs_repro::engine::NoScale));
        sim.run_until(secs(2));
        for c in &sim.world.chans {
            prop_assert!(
                c.queued() + c.in_flight <= c.capacity,
                "channel {:?} oversubscribed: {} queued + {} in flight > {}",
                c.id, c.queued(), c.in_flight, c.capacity
            );
        }
    }
}
