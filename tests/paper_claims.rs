//! Integration tests pinning the paper's *qualitative* claims — the shape
//! results the reproduction must preserve (see EXPERIMENTS.md for the
//! quantitative record).

use drrs_repro::baselines::{megaphone, otfs_fluid, MecesPlugin, UnboundPlugin};
use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::{EngineConfig, ScalePlugin};
use drrs_repro::sim::time::secs;

struct Outcome {
    suspension_us: u64,
    lp_us: u64,
    ld_us: f64,
    done_at: Option<u64>,
}

fn measure(plugin: Box<dyn ScalePlugin>) -> Outcome {
    let (mut w, agg) = tiny_job(EngineConfig::test(), 8_000.0, 512, 2);
    w.schedule_scale(secs(2), agg, 4);
    let mut sim = Sim::new(w, plugin);
    sim.run_until(secs(25));
    let now = sim.world.now();
    let suspension_us = sim.world.ops[agg.0 as usize]
        .instances
        .iter()
        .map(|&i| sim.world.insts[i.0 as usize].suspension_as_of(now))
        .sum();
    Outcome {
        suspension_us,
        lp_us: sim.world.scale.metrics.cumulative_propagation_delay(),
        ld_us: sim.world.scale.metrics.avg_dependency_overhead(),
        done_at: sim.world.scale.metrics.migration_done,
    }
}

#[test]
fn claim_drrs_minimizes_suspension() {
    // §III-B / Fig. 13: Record Scheduling proactively prevents suspensions.
    let drrs = measure(Box::new(FlexScaler::drrs()));
    let otfs = measure(Box::new(otfs_fluid()));
    let meces = measure(Box::new(MecesPlugin::new()));
    assert!(
        drrs.suspension_us < otfs.suspension_us,
        "DRRS {} vs OTFS {}",
        drrs.suspension_us,
        otfs.suspension_us
    );
    assert!(
        drrs.suspension_us < meces.suspension_us,
        "DRRS {} vs Meces {}",
        drrs.suspension_us,
        meces.suspension_us
    );
}

#[test]
fn claim_megaphone_worst_dependency_overhead() {
    // Fig. 12b: the strict linear dependency of naive division dominates.
    let drrs = measure(Box::new(FlexScaler::drrs()));
    let mega = measure(Box::new(megaphone(1)));
    assert!(
        mega.ld_us > 2.0 * drrs.ld_us,
        "Megaphone Ld {} should dwarf DRRS {}",
        mega.ld_us,
        drrs.ld_us
    );
    // And its scaling takes far longer end to end.
    assert!(mega.done_at.expect("mega done") > drrs.done_at.expect("drrs done"));
}

#[test]
fn claim_decoupled_signals_cut_propagation_delay() {
    // §III-A / Fig. 12a: trigger barriers bypass in-flight data.
    let drrs = measure(Box::new(FlexScaler::drrs()));
    let otfs = measure(Box::new(otfs_fluid()));
    let per_signal_drrs = drrs.lp_us as f64 / 8.0; // 8 subscales
    assert!(
        per_signal_drrs < otfs.lp_us as f64,
        "per-signal Lp: DRRS {per_signal_drrs} vs OTFS {}",
        otfs.lp_us
    );
}

#[test]
fn claim_unbound_eliminates_suspension_but_not_correctness() {
    // §II-B / Fig. 2: Unbound has no Ls at all, at the price of order.
    let unb = measure(Box::new(UnboundPlugin::new()));
    assert_eq!(unb.suspension_us, 0);

    let (mut w, agg) = tiny_job(EngineConfig::test(), 60_000.0, 512, 2);
    w.schedule_scale(secs(2), agg, 4);
    let mut sim = Sim::new(w, Box::new(UnboundPlugin::new()));
    sim.run_until(secs(8));
    assert!(
        sim.world.semantics.violations() > 0,
        "Unbound under overload must reorder"
    );
}

#[test]
fn minimal_moves_strategy_shortens_migration() {
    // Related-work planner policy (paper §VI [27,53,54]): fewer moved
    // units → less to migrate → faster scale, same correctness.
    use drrs_repro::engine::keygroup::Repartition;
    let run_with = |strategy: Repartition| {
        let mut ecfg = EngineConfig::test();
        ecfg.ser_bytes_per_us = 2.0; // slow migration so duration is visible
        let (mut w, agg) = tiny_job(ecfg, 4_000.0, 512, 2);
        w.schedule_scale_with(secs(2), agg, 4, strategy);
        let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
        sim.run_until(secs(20));
        assert!(!sim.world.scale.in_progress, "{strategy:?} incomplete");
        assert_eq!(sim.world.semantics.violations(), 0);
        let moves = sim.world.scale.plan.as_ref().expect("plan").moves.len();
        let done = sim.world.scale.metrics.migration_done.expect("done");
        (moves, done)
    };
    let (uni_moves, uni_done) = run_with(Repartition::Uniform);
    let (min_moves, min_done) = run_with(Repartition::MinimalMoves);
    assert!(
        min_moves < uni_moves,
        "minimal {min_moves} vs uniform {uni_moves}"
    );
    assert!(
        min_done < uni_done,
        "minimal {min_done} vs uniform {uni_done}"
    );
}

#[test]
fn claim_meces_back_and_forth_churn() {
    // §V-B: fetch-on-demand moves hot units repeatedly. Needs enough load
    // that the old instances still hold queued records when routing flips.
    let (mut w, agg) = tiny_job(EngineConfig::test(), 48_000.0, 512, 2);
    w.schedule_scale(secs(2), agg, 4);
    let mut sim = Sim::new(w, Box::new(MecesPlugin::new()));
    sim.run_until(secs(30));
    let (avg, max) = sim.world.scale.metrics.migration_churn();
    assert!(avg >= 1.0);
    assert!(
        max >= 2,
        "expected at least one unit to bounce (avg {avg}, max {max})"
    );
}
