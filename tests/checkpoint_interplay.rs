//! Fault-tolerance compatibility (paper §IV-C, Fig. 9): checkpoints and
//! scaling must not run concurrently, and both must complete.

use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::EngineConfig;
use drrs_repro::sim::time::{ms, secs};

#[test]
fn checkpoints_pause_during_scaling_and_resume() {
    let mut cfg = EngineConfig::test();
    cfg.checkpoint_interval = Some(ms(500));
    let (mut w, agg) = tiny_job(cfg, 3_000.0, 256, 2);
    w.schedule_scale(secs(2), agg, 4);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(10));

    let w = &sim.world;
    assert!(!w.scale.in_progress, "scale incomplete");
    assert_eq!(w.semantics.violations(), 0);

    let ckpts: Vec<u64> = w
        .metrics
        .checkpoints
        .points()
        .iter()
        .map(|&(t, _)| t)
        .collect();
    assert!(
        ckpts.len() >= 4,
        "too few checkpoints completed: {}",
        ckpts.len()
    );
    // Checkpoints both before the scale and after migration completed.
    let done = w.scale.metrics.migration_done.expect("migration done");
    assert!(
        ckpts.iter().any(|&t| t < secs(2)),
        "no pre-scale checkpoint"
    );
    assert!(ckpts.iter().any(|&t| t > done), "no post-scale checkpoint");
    // No checkpoint completed in the deferral window between the scale
    // request and migration completion (barriers already in flight at the
    // request may still drain — allow a small grace period).
    let grace = secs(1);
    let overlapping = ckpts
        .iter()
        .filter(|&&t| t > secs(2) + grace && t < done)
        .count();
    assert_eq!(overlapping, 0, "checkpoints completed mid-scale: {ckpts:?}");
}

#[test]
fn scaling_with_inflight_barrier_preserves_order() {
    // Fire the scale right as a checkpoint is propagating: redirection must
    // fence at the barrier (Fig. 9a) and the run must stay order-clean.
    let mut cfg = EngineConfig::test();
    cfg.checkpoint_interval = Some(ms(1_000));
    let (mut w, agg) = tiny_job(cfg, 6_000.0, 256, 2);
    // Checkpoint ticks land at 1.0s, 2.0s, ...; scale exactly then.
    w.schedule_scale(ms(2_000), agg, 3);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(10));
    assert!(!sim.world.scale.in_progress);
    assert_eq!(sim.world.semantics.violations(), 0);
    assert!(sim.world.metrics.checkpoints.len() >= 2);
}
