//! Integration tests exercising the paper's actual workloads under scaling
//! (compressed timelines; the full protocol lives in the bench binaries).

use drrs_repro::baselines::MecesPlugin;
use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::Sim;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::custom::{cluster_engine_config, custom, CustomParams};
use drrs_repro::workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
use drrs_repro::workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

#[test]
fn q7_scales_8_to_12_under_drrs() {
    let mut cfg = nexmark_engine_config(1);
    cfg.check_semantics = true;
    let p = Q7Params {
        tps: 8_000.0,
        ..Default::default()
    };
    let (mut w, op) = q7(cfg, &p);
    w.schedule_scale(secs(30), op, 12);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(90));
    assert!(!sim.world.scale.in_progress, "Q7 scale incomplete");
    assert_eq!(sim.world.semantics.violations(), 0);
    assert_eq!(
        sim.world.scale.plan.as_ref().expect("plan").moves.len(),
        111
    );
}

#[test]
fn q8_dual_keyed_input_scales_cleanly() {
    // Q8's join has TWO keyed input edges — both routing-table sets must
    // flip consistently.
    let mut cfg = nexmark_engine_config(2);
    cfg.check_semantics = true;
    let p = Q8Params {
        tps: 800.0,
        window: secs(10),
        ..Default::default()
    };
    let (mut w, op) = q8(cfg, &p);
    w.schedule_scale(secs(20), op, 12);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(120));
    assert!(!sim.world.scale.in_progress, "Q8 scale incomplete");
    assert_eq!(sim.world.semantics.violations(), 0);
    // Both keyed edges now route every moving group to its new owner on
    // every predecessor's table.
    let plan = sim.world.scale.plan.as_ref().expect("plan").clone();
    for e in sim.world.keyed_in_edges(op) {
        for (_pred, table) in sim.world.edges[e.0 as usize].tables() {
            for m in &plan.moves {
                assert_eq!(table.route(m.kg), m.to, "stale routing on edge {}", e.0);
            }
        }
    }
}

#[test]
fn twitch_pipeline_scales_mid_stream() {
    let p = TwitchParams {
        events: 800_000,
        duration_s: 200,
        parallelism: 8,
        batch: 2,
    };
    let mut cfg = twitch_engine_config(3);
    cfg.check_semantics = true;
    let (mut w, op) = twitch(cfg, &p);
    w.schedule_scale(secs(40), op, 12);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(120));
    assert!(!sim.world.scale.in_progress);
    assert_eq!(sim.world.semantics.violations(), 0);
    assert!(sim.world.metrics.sink_records > 200_000);
}

#[test]
fn custom_cluster_scale_25_to_30_with_meces() {
    let p = CustomParams {
        tps: 5_000.0,
        total_state_bytes: 500_000_000,
        universe: 20_000,
        skew: 0.5,
        ..Default::default()
    };
    let (mut w, op) = custom(cluster_engine_config(4), &p);
    w.schedule_scale(secs(20), op, 30);
    let mut sim = Sim::new(w, Box::new(MecesPlugin::new()));
    sim.run_until(secs(120));
    assert!(
        !sim.world.scale.in_progress,
        "Meces cluster scale incomplete"
    );
    assert_eq!(sim.world.ops[op.0 as usize].instances.len(), 30);
}

#[test]
fn concurrent_scale_requests_supersede() {
    // Two requests fired while the first is still migrating: the engine
    // defers (paper §IV-B — the later supersedes), and the final
    // parallelism wins with no unit lost.
    let mut cfg = nexmark_engine_config(5);
    cfg.check_semantics = true;
    let p = Q7Params {
        tps: 6_000.0,
        ..Default::default()
    };
    let (mut w, op) = q7(cfg, &p);
    w.schedule_scale(secs(20), op, 10);
    w.schedule_scale(secs(21), op, 12); // lands mid-deploy/migration
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(150));
    assert_eq!(sim.world.ops[op.0 as usize].instances.len(), 12);
    assert!(!sim.world.scale.in_progress);
    assert_eq!(sim.world.semantics.violations(), 0);
    // Conservation across the two scales.
    for g in 0..sim.world.cfg.max_key_groups {
        let holders = sim.world.ops[op.0 as usize]
            .instances
            .iter()
            .filter(|&&i| {
                sim.world.insts[i.0 as usize]
                    .state
                    .holds_group(drrs_repro::engine::KeyGroup(g))
            })
            .count();
        assert_eq!(holders, 1, "key-group {g} held {holders} times");
    }
}
