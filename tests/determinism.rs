//! Determinism regression tests guarding the hot-path data structures.
//!
//! The simulator's value is bit-reproducibility: identical seeds must
//! produce identical metrics, byte for byte. Every PR that swaps a queue,
//! hasher, or state-backend layout must keep these green — a digest
//! mismatch means iteration order (and therefore the event interleaving)
//! leaked into observable behavior.

use drrs_repro::baselines::MecesPlugin;
use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::{EngineConfig, NoScale, ScalePlugin};
use drrs_repro::sim::time::secs;

fn digest_with(seed: u64, horizon_s: u64, plugin: Box<dyn ScalePlugin>, scale: bool) -> u64 {
    let mut cfg = EngineConfig::test();
    cfg.seed = seed;
    let (mut w, agg) = tiny_job(cfg, 5_000.0, 256, 2);
    if scale {
        w.schedule_scale(secs(1), agg, 4);
    }
    let mut sim = Sim::new(w, plugin);
    sim.run_until(secs(horizon_s));
    sim.world.metrics_digest()
}

fn digest_of_run(seed: u64, scale: bool, horizon_s: u64) -> u64 {
    let plugin: Box<dyn ScalePlugin> = if scale {
        Box::new(FlexScaler::drrs())
    } else {
        Box::new(NoScale)
    };
    digest_with(seed, horizon_s, plugin, scale)
}

#[test]
fn same_seed_same_digest_steady_state() {
    let a = digest_of_run(0xD225, false, 5);
    let b = digest_of_run(0xD225, false, 5);
    assert_eq!(a, b, "steady-state run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_with_mid_run_scale() {
    // The scale event exercises the rewritten paths end to end: dense
    // backend extraction/installation, routing-table updates, cached
    // predecessor lists, re-routed records and the migration links.
    let a = digest_of_run(0xD225, true, 6);
    let b = digest_of_run(0xD225, true, 6);
    assert_eq!(a, b, "scaling run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_meces() {
    // Regression: Meces' background pump used to iterate a std HashMap
    // (random SipHash order) to pick which units migrate per pump, making
    // same-seed Meces runs diverge. The pump now sorts into canonical
    // unit order.
    let a = digest_with(0xD225, 6, Box::new(MecesPlugin::new()), true);
    let b = digest_with(0xD225, 6, Box::new(MecesPlugin::new()), true);
    assert_eq!(a, b, "Meces run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_overload_backpressure() {
    // The arena path under sustained backpressure: the operator saturates
    // (120K/s into a ~40K/s pipeline), so backlogs fill to the block
    // watermark, senders stall, and every pump cycle recycles arena slots
    // through the free list. Any nondeterminism in handle recycling or the
    // index queues would change the interleaving and split these digests.
    let digest = |seed: u64| {
        let mut cfg = EngineConfig::test();
        cfg.seed = seed;
        let (w, _) = tiny_job(cfg, 120_000.0, 1_024, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(6));
        sim.world.metrics_digest()
    };
    let a = digest(0xBEEF);
    let b = digest(0xBEEF);
    assert_eq!(a, b, "overload run diverged between two identical runs");
}

#[test]
fn arena_slots_are_reclaimed_in_steady_state() {
    // The record arena must plateau: live elements are bounded by channel
    // credits plus bounded backlogs, so its slot count after warm-up must
    // not grow over a 5x longer run — monotonic growth means consumed
    // elements are leaking slots.
    let mut cfg = EngineConfig::test();
    cfg.seed = 42;
    let (w, _) = tiny_job(cfg, 5_000.0, 256, 2);
    let mut sim = Sim::new(w, Box::new(NoScale));
    sim.run_until(secs(2));
    let warm = sim.world.arena.slot_count();
    sim.run_until(secs(10));
    let end = sim.world.arena.slot_count();
    assert_eq!(
        warm, end,
        "arena slots grew in steady state: {warm} -> {end}"
    );
    // And the live element count stays within the credit bound.
    let slack = drrs_repro::engine::channel::BACKLOG_INITIAL_BUFFERS;
    let credit_bound: usize = sim.world.chans.iter().map(|c| c.capacity + slack).sum();
    assert!(
        sim.world.arena.len() <= credit_bound,
        "live elements {} exceed the credit bound {credit_bound}",
        sim.world.arena.len()
    );
}

#[test]
fn scheduler_backends_produce_identical_digests() {
    // The future-event list's backend is a pure perf knob: the calendar
    // queue and the binary heap must pop identical (time, event) sequences
    // (FIFO seq tie-break included), so a full simulation — including a
    // mid-run scale, which schedules far-future deploy timers through the
    // calendar's overflow tier — must digest identically under both.
    use drrs_repro::sim::SchedulerBackend;
    let digest = |backend: SchedulerBackend| {
        let mut cfg = EngineConfig::test();
        cfg.seed = 0xD225;
        cfg.scheduler = backend;
        let (mut w, agg) = tiny_job(cfg, 5_000.0, 256, 2);
        w.schedule_scale(secs(1), agg, 4);
        let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
        sim.run_until(secs(6));
        sim.world.metrics_digest()
    };
    assert_eq!(
        digest(SchedulerBackend::BinaryHeap),
        digest(SchedulerBackend::Calendar),
        "scheduler backends diverged — the calendar queue broke the FIFO \
         tie-break or dropped/reordered an event"
    );
}

#[test]
fn massed_same_instant_runs_digest_identically_across_backends_and_dispatch_modes() {
    // The batch-drain stress shape: at 50K records/s the 10 ms source-tick
    // granularity emits ~500 records per tick, all `send`s share the same
    // channel latency, so hundreds of `Deliver` events mass at single
    // instants — exactly the runs `pop_run_at_most` drains in one cursor
    // walk. Draining a run as a batch instead of popping its events one by
    // one must not change the interleaving: all four {backend} × {dispatch
    // mode} combinations are required to produce byte-identical digests
    // (and event counts), on a run that also crosses a mid-flight rescale
    // so boxed control/priority events ride inside the massed traffic.
    use drrs_repro::engine::DispatchMode;
    use drrs_repro::sim::SchedulerBackend;
    let run = |backend: SchedulerBackend, mode: DispatchMode| {
        let mut cfg = EngineConfig::test();
        cfg.seed = 0x5EED;
        cfg.scheduler = backend;
        let (mut w, agg) = tiny_job(cfg, 50_000.0, 1_024, 4);
        w.schedule_scale(secs(2), agg, 6);
        let mut sim = Sim::new(w, Box::new(FlexScaler::drrs())).with_dispatch_mode(mode);
        sim.run_until(secs(4));
        (sim.world.metrics_digest(), sim.world.q.processed())
    };
    let reference = run(SchedulerBackend::BinaryHeap, DispatchMode::SinglePop);
    assert!(
        reference.1 > 100_000,
        "scenario too small to mass deliveries"
    );
    for backend in [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar] {
        for mode in [DispatchMode::SinglePop, DispatchMode::Batch] {
            assert_eq!(
                run(backend, mode),
                reference,
                "{} × {} diverged from heap × single",
                backend.name(),
                mode.name()
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Digest sanity: the digest must actually observe the run (two seeds
    // colliding would make the equality tests above vacuous).
    let a = digest_of_run(1, true, 5);
    let b = digest_of_run(2, true, 5);
    assert_ne!(a, b, "digest is insensitive to the seed");
}

#[test]
fn digest_stable_across_horizons_prefix() {
    // Running longer must change the digest (it ingests more events) —
    // guards against the digest accidentally hashing only static topology.
    let a = digest_of_run(7, false, 3);
    let b = digest_of_run(7, false, 5);
    assert_ne!(a, b);
}
