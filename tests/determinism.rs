//! Determinism regression tests guarding the hot-path data structures.
//!
//! The simulator's value is bit-reproducibility: identical seeds must
//! produce identical metrics, byte for byte. Every PR that swaps a queue,
//! hasher, or state-backend layout must keep these green — a digest
//! mismatch means iteration order (and therefore the event interleaving)
//! leaked into observable behavior.
//!
//! The scenarios under test are **named registry specs** — the same
//! `bench::scenario::registry` entries `perf_report` measures — so the
//! digest tests and the perf harness can never drift apart on what a
//! scenario means. Horizons are shortened with the spec builders to keep
//! the suite fast; everything else (rates, universes, parallelism, seeds,
//! scale plans) is the registry's word.

use drrs_repro::bench::scenario::{registry, MechanismSpec, ScenarioSpec};
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::{EngineConfig, NoScale};
use drrs_repro::sim::time::secs;

/// Fetch a named perf scenario (full variant) from the registry.
fn perf_spec(name: &str) -> ScenarioSpec {
    registry::find(name, false).unwrap_or_else(|| panic!("{name} not in the registry"))
}

#[test]
fn same_seed_same_digest_steady_state() {
    let spec = perf_spec("perf/steady_50k").with_horizon(secs(5));
    let a = spec.run().digest;
    let b = spec.run().digest;
    assert_eq!(a, b, "steady-state run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_with_mid_run_scale() {
    // The scale event exercises the rewritten paths end to end: dense
    // backend extraction/installation, routing-table updates, cached
    // predecessor lists, re-routed records and the migration links.
    let spec = perf_spec("perf/drrs_rescale_4_to_6").with_horizon(secs(6));
    let a = spec.run().digest;
    let b = spec.run().digest;
    assert_eq!(a, b, "scaling run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_meces() {
    // Regression: Meces' background pump used to iterate a std HashMap
    // (random SipHash order) to pick which units migrate per pump, making
    // same-seed Meces runs diverge. The pump now sorts into canonical
    // unit order. Meces has no perf scenario of its own, so it rides the
    // registry's rescale spec with the mechanism swapped.
    let spec = perf_spec("perf/drrs_rescale_4_to_6")
        .with_mechanism(MechanismSpec::Meces)
        .with_horizon(secs(6));
    let a = spec.run().digest;
    let b = spec.run().digest;
    assert_eq!(a, b, "Meces run diverged between two identical runs");
}

#[test]
fn same_seed_same_digest_overload_backpressure() {
    // The arena path under sustained backpressure: the operator saturates
    // (120K/s into a ~40K/s pipeline), so backlogs fill to the block
    // watermark, senders stall, and every pump cycle recycles arena slots
    // through the free list. Any nondeterminism in handle recycling or the
    // index queues would change the interleaving and split these digests.
    let spec = perf_spec("perf/overload_backpressure")
        .with_seed(0xBEEF)
        .with_horizon(secs(6));
    let a = spec.run().digest;
    let b = spec.run().digest;
    assert_eq!(a, b, "overload run diverged between two identical runs");
}

#[test]
fn arena_slots_are_reclaimed_in_steady_state() {
    // The record arena must plateau: live elements are bounded by channel
    // credits plus bounded backlogs, so its slot count after warm-up must
    // not grow over a 5x longer run — monotonic growth means consumed
    // elements are leaking slots. (Runs the world directly: the probe
    // needs mid-run arena inspection, which a finished RunReport cannot
    // provide.)
    let mut cfg = EngineConfig::test();
    cfg.seed = 42;
    let (w, _) = tiny_job(cfg, 5_000.0, 256, 2);
    let mut sim = Sim::new(w, Box::new(NoScale));
    sim.run_until(secs(2));
    let warm = sim.world.arena.slot_count();
    sim.run_until(secs(10));
    let end = sim.world.arena.slot_count();
    assert_eq!(
        warm, end,
        "arena slots grew in steady state: {warm} -> {end}"
    );
    // And the live element count stays within the credit bound.
    let slack = drrs_repro::engine::channel::BACKLOG_INITIAL_BUFFERS;
    let credit_bound: usize = sim.world.chans.iter().map(|c| c.capacity + slack).sum();
    assert!(
        sim.world.arena.len() <= credit_bound,
        "live elements {} exceed the credit bound {credit_bound}",
        sim.world.arena.len()
    );
}

#[test]
fn jsonl_bus_sink_streams_with_flat_memory_and_deterministic_loss() {
    // The streaming-sink memory contract on a 10x-horizon run: with a
    // writer attached nothing stages in process memory — the bounded
    // channels plateau at their caps (lag high-water), the bounded ring
    // feeds the worker, and the file absorbs the stream. The wide job
    // (18 instances x 8 samples per drain > the 64-slot metrics channel)
    // makes the drop-oldest policy fire for real, and the loss accounting
    // must be byte-reproducible: same counters, same file, every run.
    use drrs_repro::engine::{BusClass, BusSinkKind};
    let dir = std::env::temp_dir();
    let run = |tag: &str, horizon| {
        let path = dir.join(format!("drrs_bus_flatmem_{tag}.jsonl"));
        let mut cfg = EngineConfig::test();
        cfg.seed = 7;
        cfg.bus_sink = BusSinkKind::Jsonl;
        let (w, _) = tiny_job(cfg, 20_000.0, 256, 16);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.world
            .bus
            .attach_jsonl(&path)
            .expect("attach sink worker");
        sim.run_until(horizon);
        let lines = sim.world.bus.finish().expect("flush sink worker");
        assert!(
            sim.world.bus.take_log().is_empty(),
            "writer-attached bus staged events in memory"
        );
        let bytes = std::fs::read(&path).expect("read stream back");
        let _ = std::fs::remove_file(&path);
        (
            lines,
            sim.world.bus.summary(),
            sim.world.metrics_digest(),
            bytes,
        )
    };
    let short = run("short", secs(1));
    let long = run("long", secs(10));
    // Flat memory: the channel high-water plateaus at the bounded caps —
    // 10x more simulated time must not deepen any queue.
    assert_eq!(
        short.1.lag_max, long.1.lag_max,
        "channel lag grew with the horizon"
    );
    assert!(long.1.lag_max <= 128, "lag exceeds the largest channel cap");
    // The stream went to disk, not memory: ~10x the events, all on file.
    assert!(
        long.0 > 5 * short.0,
        "long run did not stream ({} vs {})",
        long.0,
        short.0
    );
    // Honest loss: the high-rate metrics class dropped, deterministically.
    assert!(
        long.1.dropped > 0,
        "wide job should overflow the metrics channel"
    );
    assert!(long.1.class_drops[BusClass::Metrics as usize] > 0);
    let again = run("again", secs(10));
    assert_eq!(again.1, long.1, "bus accounting not reproducible");
    assert_eq!(again.0, long.0, "line count not reproducible");
    assert_eq!(again.3, long.3, "JSONL stream bytes not reproducible");
    assert_eq!(again.2, long.2, "digest perturbed by the streaming sink");
}

#[test]
fn run_report_surfaces_deterministic_bus_counters() {
    // The RunReport side of the loss accounting: a lossy JSONL scenario
    // run says so through `bus_dropped`/`bus_lag_max`, identically on
    // every rerun (and the counters survive the JSON round trip).
    let dir = std::env::temp_dir();
    let run = |tag: &str| {
        let path = dir.join(format!("drrs_bus_report_{tag}.jsonl"));
        let report = perf_spec("perf/steady_50k")
            .with_horizon(secs(3))
            .with_events_path(path.display().to_string())
            .run();
        let _ = std::fs::remove_file(&path);
        report
    };
    let a = run("a");
    let b = run("b");
    assert!(a.bus_published > 0, "enabled bus published nothing");
    assert!(a.bus_lag_max > 0);
    assert_eq!(
        (
            a.bus_published,
            a.bus_dropped,
            a.bus_lag_max,
            a.bus_class_drops.clone()
        ),
        (
            b.bus_published,
            b.bus_dropped,
            b.bus_lag_max,
            b.bus_class_drops.clone()
        ),
        "bus counters diverged across reruns"
    );
    assert_eq!(a.digest, b.digest);
    let back = drrs_repro::bench::scenario::RunReport::parse(&a.to_json("")).expect("round trip");
    assert_eq!(back.bus_published, a.bus_published);
    assert_eq!(back.bus_class_drops, a.bus_class_drops);
    // And the default-spec report is honest about the bus being off.
    let off = perf_spec("perf/steady_50k").with_horizon(secs(1)).run();
    assert_eq!(off.bus_published, 0, "Null sink must publish nothing");
    assert_eq!(off.bus_lag_max, 0);
}

#[test]
fn scheduler_backends_produce_identical_digests() {
    // The future-event list's backend is a pure perf knob: the calendar
    // queue and the binary heap must pop identical (time, event) sequences
    // (FIFO seq tie-break included), so a full simulation — including a
    // mid-run scale, which schedules far-future deploy timers through the
    // calendar's overflow tier — must digest identically under both.
    use drrs_repro::sim::SchedulerBackend;
    let spec = perf_spec("perf/drrs_rescale_4_to_6").with_horizon(secs(6));
    assert_eq!(
        spec.clone()
            .with_backend(SchedulerBackend::BinaryHeap)
            .run()
            .digest,
        spec.with_backend(SchedulerBackend::Calendar).run().digest,
        "scheduler backends diverged — the calendar queue broke the FIFO \
         tie-break or dropped/reordered an event"
    );
}

#[test]
fn massed_same_instant_runs_digest_identically_across_backends_and_dispatch_modes() {
    // The batch-drain stress shape: at 50K records/s the 10 ms source-tick
    // granularity emits ~500 records per tick, all `send`s share the same
    // channel latency, so hundreds of `Deliver` events mass at single
    // instants — exactly the runs `pop_run_at_most` drains in one cursor
    // walk. Draining a run as a batch instead of popping its events one by
    // one must not change the interleaving: all four {backend} × {dispatch
    // mode} combinations are required to produce byte-identical digests
    // (and event counts), on a run that also crosses a mid-flight rescale
    // so boxed control/priority events ride inside the massed traffic.
    use drrs_repro::bench::scenario::WorkloadSpec;
    use drrs_repro::engine::DispatchMode;
    use drrs_repro::sim::SchedulerBackend;
    let mut spec = perf_spec("perf/drrs_rescale_4_to_6")
        .with_seed(0x5EED)
        .with_horizon(secs(4));
    // Narrow the key universe so deliveries mass harder per instant.
    spec.workload = WorkloadSpec::TinyJob {
        rate: 50_000.0,
        universe: 1_024,
        par: 4,
    };
    let run = |backend, mode| {
        let r = spec.clone().with_cell(backend, mode).run();
        (r.digest, r.events)
    };
    let reference = run(SchedulerBackend::BinaryHeap, DispatchMode::SinglePop);
    assert!(
        reference.1 > 100_000,
        "scenario too small to mass deliveries"
    );
    for backend in [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar] {
        for mode in [DispatchMode::SinglePop, DispatchMode::Batch] {
            assert_eq!(
                run(backend, mode),
                reference,
                "{} × {} diverged from heap × single",
                backend.name(),
                mode.name()
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Digest sanity: the digest must actually observe the run (two seeds
    // colliding would make the equality tests above vacuous).
    let spec = perf_spec("perf/drrs_rescale_4_to_6").with_horizon(secs(5));
    let a = spec.clone().with_seed(1).run().digest;
    let b = spec.with_seed(2).run().digest;
    assert_ne!(a, b, "digest is insensitive to the seed");
}

#[test]
fn digest_stable_across_horizons_prefix() {
    // Running longer must change the digest (it ingests more events) —
    // guards against the digest accidentally hashing only static topology.
    let spec = perf_spec("perf/steady_50k").with_seed(7);
    let a = spec.clone().with_horizon(secs(3)).run().digest;
    let b = spec.with_horizon(secs(5)).run().digest;
    assert_ne!(a, b);
}
