//! Scale-in (contraction): the engine supports shrinking an operator; the
//! DRRS machinery is direction-agnostic — key-groups migrate from retiring
//! instances to survivors, the retiring instances drain and are removed.

use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::tests_support::tiny_job;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::{EngineConfig, KeyGroup};
use drrs_repro::sim::time::secs;

#[test]
fn drrs_scale_in_4_to_2() {
    let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 4);
    w.schedule_scale(secs(2), agg, 2);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(15));
    let w = &sim.world;
    assert!(!w.scale.in_progress, "scale-in migration incomplete");
    assert_eq!(w.semantics.violations(), 0);
    // The operator shrank to 2 live instances.
    assert_eq!(
        w.ops[agg.0 as usize].instances.len(),
        2,
        "retiring instances not removed"
    );
    assert!(
        w.scale.retiring.is_empty(),
        "instances stuck in retiring state"
    );
    // Every key-group is owned exactly once, by a survivor.
    for g in 0..w.cfg.max_key_groups {
        let holders: Vec<_> = w.ops[agg.0 as usize]
            .instances
            .iter()
            .filter(|&&i| w.insts[i.0 as usize].state.holds_group(KeyGroup(g)))
            .collect();
        assert_eq!(holders.len(), 1, "key-group {g}: {holders:?}");
    }
    // The pipeline kept flowing throughout.
    assert!(w.metrics.sink_records > 20_000);
}

#[test]
fn scale_in_then_out_round_trip() {
    let (mut w, agg) = tiny_job(EngineConfig::test(), 3_000.0, 256, 3);
    w.schedule_scale(secs(2), agg, 2);
    w.schedule_scale(secs(8), agg, 4);
    let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(20));
    let w = &sim.world;
    assert!(!w.scale.in_progress);
    assert_eq!(w.semantics.violations(), 0);
    assert_eq!(w.ops[agg.0 as usize].instances.len(), 4);
    for g in 0..w.cfg.max_key_groups {
        let holders = w.ops[agg.0 as usize]
            .instances
            .iter()
            .filter(|&&i| w.insts[i.0 as usize].state.holds_group(KeyGroup(g)))
            .count();
        assert_eq!(holders, 1, "key-group {g} held {holders} times");
    }
}
