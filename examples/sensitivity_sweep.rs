//! A miniature sensitivity sweep (the full grid is `bench --bin fig15`):
//! how does throughput deviation during scaling respond to workload
//! skewness for DRRS vs Megaphone?
//!
//! ```bash
//! cargo run --release --example sensitivity_sweep
//! ```

use drrs_repro::baselines::megaphone;
use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::ScalePlugin;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::custom::{cluster_engine_config, custom, CustomParams};

fn main() {
    let skews = [0.0, 0.5, 1.0, 1.5];
    println!("custom 3-op workload: 10K tps, 5 GB state, scaling 25 -> 30 at 40 s");
    println!("throughput deviation over [40, 160] s (records/s; lower is better)\n");
    println!("{:>6} {:>12} {:>12}", "skew", "DRRS", "Megaphone");
    for skew in skews {
        let mut row = Vec::new();
        for mech in ["DRRS", "Megaphone"] {
            let p = CustomParams {
                tps: 10_000.0,
                total_state_bytes: 5_000_000_000,
                skew,
                ..Default::default()
            };
            let (mut world, op) = custom(cluster_engine_config(5), &p);
            world.schedule_scale(secs(40), op, 30);
            let plugin: Box<dyn ScalePlugin> = match mech {
                "DRRS" => Box::new(FlexScaler::drrs()),
                _ => Box::new(megaphone(4)),
            };
            let mut sim = Sim::new(world, plugin);
            sim.run_until(secs(160));
            let measured = sim.world.metrics.mean_throughput(40, 160);
            row.push((p.tps - measured).max(0.0));
        }
        println!("{:>6.1} {:>12.0} {:>12.0}", skew, row[0], row[1]);
    }
    println!("\nExpected shape: deviation grows with skew; DRRS stays at or below Megaphone.");
}
