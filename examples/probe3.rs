use drrs_repro::baselines::MecesPlugin;
use drrs_repro::engine::world::Sim;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::nexmark::{nexmark_engine_config, q7, Q7Params};
fn main() {
    let (mut world, op) = q7(nexmark_engine_config(1), &Q7Params::default());
    world.schedule_scale(secs(300), op, 12);
    let mut sim = Sim::new(world, Box::new(MecesPlugin::new()));
    for t in [305u64, 320, 360, 420, 500, 600] {
        sim.run_until(secs(t));
        let w = &sim.world;
        let plan = w.scale.plan.as_ref().unwrap();
        let settled = plan
            .moves
            .iter()
            .filter(|m| w.insts[m.to.0 as usize].state.holds_group(m.kg))
            .count();
        let installs = w
            .scale
            .metrics
            .unit_migrations
            .values()
            .map(|&c| c as u64)
            .sum::<u64>();
        let (avg, max) = w.scale.metrics.migration_churn();
        // where are the unsettled units?
        let mut away = 0;
        let mut transit = 0;
        for m in &plan.moves {
            if let Some(&(h, tr)) = w.scale.unit_loc.get(&(m.kg.0, 0)) {
                if tr.is_some() {
                    transit += 1;
                } else if h != m.to {
                    away += 1;
                }
            }
        }
        println!("t={t}s settled={settled}/{} installs={installs} churn avg={avg:.2} max={max} away={away} transit={transit} in_progress={}", plan.moves.len(), w.scale.in_progress);
    }
}
