use drrs_repro::baselines::MecesPlugin;
use drrs_repro::engine::world::Sim;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::nexmark::{nexmark_engine_config, q7, Q7Params};
fn main() {
    let (mut world, op) = q7(nexmark_engine_config(1), &Q7Params::default());
    world.schedule_scale(secs(300), op, 12);
    let mut sim = Sim::new(world, Box::new(MecesPlugin::new()));
    sim.run_until(secs(500));
    let w = &sim.world;
    let plan = w.scale.plan.as_ref().unwrap();
    for m in &plan.moves {
        let loc = w.scale.unit_loc.get(&(m.kg.0, 0)).copied();
        let churn = w
            .scale
            .metrics
            .unit_migrations
            .get(&(m.kg.0, 0))
            .copied()
            .unwrap_or(0);
        if churn > 5 || loc.map(|(h, t)| t.is_some() || h != m.to).unwrap_or(true) {
            println!(
                "kg={} from={} to={} loc={:?} churn={}",
                m.kg.0, m.from.0, m.to.0, loc, churn
            );
        }
    }
    // queue state of involved instances
    for &i in &w.ops[op.0 as usize].instances {
        let inst = &w.insts[i.0 as usize];
        let q: usize = inst
            .in_channels
            .iter()
            .map(|c| w.chans[c.0 as usize].queue.len())
            .sum();
        if q > 0 || inst.suspended_since.is_some() {
            println!(
                "inst {} q={} suspended={:?} busy={}",
                i.0,
                q,
                inst.suspended_since.map(|s| s / 1000000),
                inst.busy
            );
        }
    }
}
