//! Quickstart: build a small stateful job, rescale it on the fly with DRRS,
//! and inspect what happened — all through `drrs_repro::prelude`.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use drrs_repro::prelude::*;

// A tiny deterministic source: 5K records/s over 1000 keys.
struct MySource {
    rng: DetRng,
}

impl SourceGen for MySource {
    fn rate(&self, _t: SimTime) -> f64 {
        5_000.0
    }
    fn next(&mut self, _t: SimTime) -> (u64, i64) {
        (self.rng.below(1_000), 1)
    }
}

fn main() {
    // 1. Describe the job: source → keyed aggregation → sink.
    let cfg = EngineConfig {
        max_key_groups: 128,
        check_semantics: true,
        ..EngineConfig::default()
    };
    let mut b = JobBuilder::new(cfg);
    let src = b.source(
        "numbers",
        1,
        Box::new(|i| {
            Box::new(MySource {
                rng: DetRng::seed(7 + i as u64),
            })
        }),
    );
    let agg = b.operator(
        "running-sum",
        2,
        Box::new(|| {
            Box::new(KeyedAgg {
                service: 150,          // µs per record
                bytes_per_key: 50_000, // 1000 keys → ~50 MB of keyed state
                bytes_per_record: 0,
                emit_every: 1,
            })
        }),
    );
    let sink = b.sink("sink", 1);
    b.connect(src, agg, EdgeKind::Keyed);
    b.connect(agg, sink, EdgeKind::Rebalance);
    let mut world = b.build();

    // 2. Ask for an on-the-fly scale-out 2 → 4 instances at t = 10 s.
    world.schedule_scale(secs(10), agg, 4);

    // 3. Run under the DRRS mechanism.
    let mut sim = Sim::new(world, Box::new(FlexScaler::drrs()));
    sim.run_until(secs(25));

    // 4. Inspect.
    let w = &sim.world;
    println!("records delivered to sink : {}", w.metrics.sink_records);
    println!("order violations          : {}", w.semantics.violations());
    println!(
        "state moved               : {} key-groups, {:.1} MB",
        w.scale.plan.as_ref().map(|p| p.moves.len()).unwrap_or(0),
        w.scale.metrics.bytes_transferred as f64 / 1e6
    );
    println!(
        "migration finished at     : {:.1} s",
        w.scale
            .metrics
            .migration_done
            .map(|t| t as f64 / 1e6)
            .unwrap_or(f64::NAN)
    );
    println!(
        "propagation delay (Lp)    : {:.2} ms",
        as_ms(w.scale.metrics.cumulative_propagation_delay())
    );
    println!(
        "dependency overhead (Ld)  : {:.2} ms",
        w.scale.metrics.avg_dependency_overhead() / 1_000.0
    );
    let (peak, avg) = w.metrics.latency_stats_ms(secs(10), secs(20));
    println!("latency during scaling    : peak {peak:.1} ms, avg {avg:.1} ms");

    assert_eq!(
        w.semantics.violations(),
        0,
        "DRRS preserves execution semantics"
    );
    assert!(w.scale.metrics.migration_done.is_some(), "scale completed");
    println!("\nOK: scaled 2 → 4 on the fly with zero order violations.");

    // 5. The same experiment as a declarative, nameable unit: any run can
    //    also be expressed as a ScenarioSpec (this is what the figure
    //    binaries and the process-level sweep sharder are built on).
    let spec = ScenarioSpec {
        name: "example/quickstart".into(),
        engine: EngineProfile::Perf,
        seed: 7,
        workload: WorkloadSpec::TinyJob {
            rate: 5_000.0,
            universe: 1_000,
            par: 2,
        },
        mechanism: MechanismSpec::Drrs,
        scale: Some(ScaleSpec {
            at: secs(10),
            to: 4,
        }),
        horizon: secs(25),
        backend: SchedulerBackend::default(),
        dispatch: DispatchMode::default(),
        regions: 1,
        resume_latency: 0,
        bus_sink: Default::default(),
        events_path: None,
    };
    let report: RunReport = spec.run();
    println!(
        "as a scenario             : {} events, digest 0x{:016x}",
        report.events, report.digest
    );
}
