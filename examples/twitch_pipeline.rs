//! The seven-operator Twitch viewer-engagement pipeline with a mid-run
//! DRRS rescale, demonstrating subscale scheduling on a realistic DAG
//! (stateless parsing, two keyed stages, a re-key, and the bottleneck
//! loyalty aggregation).
//!
//! ```bash
//! cargo run --release --example twitch_pipeline
//! ```

use drrs_repro::drrs::{FlexScaler, MechanismConfig};
use drrs_repro::engine::world::Sim;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

fn main() {
    let params = TwitchParams {
        events: 1_500_000,
        duration_s: 360,
        parallelism: 8,
        batch: 2,
    };
    let mut cfg = twitch_engine_config(77);
    cfg.check_semantics = true;
    let (mut world, loyalty) = twitch(cfg, &params);
    println!("pipeline operators:");
    for op in &world.ops {
        println!("  {:<12} x{} ({:?})", op.name, op.instances.len(), op.role);
    }

    // Scale the loyalty stage 8 → 12 at t = 90 s with 8 subscales.
    world.schedule_scale(secs(90), loyalty, 12);
    let mech = MechanismConfig {
        subscale_count: 8,
        ..MechanismConfig::drrs()
    };
    let mut sim = Sim::new(world, Box::new(FlexScaler::new(mech)));

    // Watch the scale proceed.
    for t in [80u64, 95, 100, 110, 130, 180] {
        sim.run_until(secs(t));
        let w = &sim.world;
        let installed = w.scale.metrics.unit_installed.len();
        let planned = w.scale.plan.as_ref().map(|p| p.moves.len()).unwrap_or(0);
        let (_, avg) = w
            .metrics
            .latency_stats_ms(secs(t.saturating_sub(5)), secs(t));
        println!(
            "t={t:>3}s  migrated {installed:>3}/{planned:>3} key-groups  \
             latency≈{avg:>7.1} ms  suspension={:>6.0} ms",
            w.ops[loyalty.0 as usize]
                .instances
                .iter()
                .map(|&i| w.insts[i.0 as usize].suspension_as_of(w.now()))
                .sum::<u64>() as f64
                / 1e3,
        );
    }

    let w = &sim.world;
    println!(
        "\nscale finished at {:?} s",
        w.scale.metrics.migration_done.map(|t| t / 1_000_000)
    );
    println!(
        "bytes migrated: {:.1} MB",
        w.scale.metrics.bytes_transferred as f64 / 1e6
    );
    println!("order violations: {}", w.semantics.violations());
    assert_eq!(w.semantics.violations(), 0);
}
