//! NEXMark Q7 under rescaling: run the paper's headline workload with any
//! of the mechanisms and compare them head-to-head.
//!
//! ```bash
//! cargo run --release --example nexmark_rescale            # all mechanisms
//! cargo run --release --example nexmark_rescale -- DRRS    # one mechanism
//! ```

use drrs_repro::baselines::{megaphone, MecesPlugin};
use drrs_repro::drrs::FlexScaler;
use drrs_repro::engine::world::Sim;
use drrs_repro::engine::ScalePlugin;
use drrs_repro::sim::time::secs;
use drrs_repro::workloads::nexmark::{nexmark_engine_config, q7, Q7Params};

fn plugin(name: &str) -> Box<dyn ScalePlugin> {
    match name {
        "DRRS" => Box::new(FlexScaler::drrs()),
        "Meces" => Box::new(MecesPlugin::new()),
        "Megaphone" => Box::new(megaphone(1)),
        other => panic!("unknown mechanism {other} (try DRRS, Meces, Megaphone)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mechanisms: Vec<&str> = if args.is_empty() {
        vec!["DRRS", "Meces", "Megaphone"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    // A compressed Q7: 10K tps, scale 8 → 12 at t = 60 s.
    let params = Q7Params {
        tps: 10_000.0,
        ..Default::default()
    };
    println!(
        "NEXMark Q7 @ {} tps, scaling 8 -> 12 instances at 60 s\n",
        params.tps
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "mechanism", "peak(ms)", "avg(ms)", "Lp(ms)", "Ld(ms)", "done(s)"
    );
    for mech in mechanisms {
        let (mut world, op) = q7(nexmark_engine_config(11), &params);
        world.schedule_scale(secs(60), op, 12);
        let mut sim = Sim::new(world, plugin(mech));
        sim.run_until(secs(180));
        let (peak, avg) = sim.world.metrics.latency_stats_ms(secs(60), secs(180));
        let m = &sim.world.scale.metrics;
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>12.1} {:>12.1} {:>10.0}",
            mech,
            peak,
            avg,
            m.cumulative_propagation_delay() as f64 / 1e3,
            m.avg_dependency_overhead() / 1e3,
            m.migration_done.map(|t| t as f64 / 1e6).unwrap_or(f64::NAN),
        );
    }
    println!(
        "\n(The full-protocol comparison lives in `cargo run --release -p bench --bin fig10_11`.)"
    );
}
