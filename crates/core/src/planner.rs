//! The Scale Planner (paper component C): state partitioning into subscales
//! and the greedy subscale scheduler.
//!
//! Default strategies from §IV-A: lexicographic division into near-equal
//! subsets, and a greedy scheduler that prioritizes subscales migrating to
//! the instance currently holding the fewest keys (so new instances join
//! the computation as early as possible), with a per-node concurrency
//! threshold.

use std::collections::HashMap;

use streamflow::ids::{InstId, KeyGroup};
use streamflow::keygroup::KgMove;

/// One subscale: an independently migrated subset of key-groups moving
/// between a single (source, destination) instance pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubscaleSpec {
    /// Source instance.
    pub from: InstId,
    /// Destination instance.
    pub to: InstId,
    /// Key-groups, lexicographically ordered.
    pub kgs: Vec<KeyGroup>,
}

/// Divide the moves into at most ~`target` subscales, lexicographically,
/// as equally sized as possible, never mixing (from, to) pairs.
pub fn divide_subscales(moves: &[KgMove], target: usize) -> Vec<SubscaleSpec> {
    if moves.is_empty() {
        return Vec::new();
    }
    let target = target.max(1);
    // Group by (from, to), preserving lexicographic key-group order.
    let mut sorted: Vec<&KgMove> = moves.iter().collect();
    sorted.sort_by_key(|m| (m.from, m.to, m.kg));
    let chunk = moves.len().div_ceil(target).max(1);
    let mut out: Vec<SubscaleSpec> = Vec::new();
    for m in sorted {
        match out.last_mut() {
            Some(s) if s.from == m.from && s.to == m.to && s.kgs.len() < chunk => {
                s.kgs.push(m.kg);
            }
            _ => out.push(SubscaleSpec {
                from: m.from,
                to: m.to,
                kgs: vec![m.kg],
            }),
        }
    }
    out
}

/// Greedy pick: among `pending` subscale indices, choose the launchable one
/// whose destination holds the fewest keys. `active` counts running
/// subscales per instance; both endpoints must be under `limit`.
pub fn greedy_pick(
    pending: &[usize],
    subs: &[SubscaleSpec],
    held_keys: &dyn Fn(InstId) -> usize,
    active: &HashMap<InstId, usize>,
    limit: usize,
) -> Option<usize> {
    pending
        .iter()
        .copied()
        .filter(|&i| {
            let s = &subs[i];
            active.get(&s.from).copied().unwrap_or(0) < limit
                && active.get(&s.to).copied().unwrap_or(0) < limit
        })
        .min_by_key(|&i| (held_keys(subs[i].to), i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(kg: u16, from: u32, to: u32) -> KgMove {
        KgMove {
            kg: KeyGroup(kg),
            from: InstId(from),
            to: InstId(to),
        }
    }

    #[test]
    fn division_covers_all_moves_exactly_once() {
        let moves: Vec<KgMove> = (0..111u16)
            .map(|k| mv(k, (k % 8) as u32, 8 + (k % 4) as u32))
            .collect();
        let subs = divide_subscales(&moves, 8);
        let total: usize = subs.iter().map(|s| s.kgs.len()).sum();
        assert_eq!(total, 111);
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            for kg in &s.kgs {
                assert!(seen.insert(*kg), "duplicate {kg}");
            }
        }
    }

    #[test]
    fn division_never_mixes_pairs() {
        let moves = vec![mv(0, 0, 2), mv(1, 0, 2), mv(2, 1, 2), mv(3, 1, 3)];
        let subs = divide_subscales(&moves, 2);
        for s in &subs {
            assert!(s.kgs.len() <= 2);
        }
        // (0,2), (1,2), (1,3) pairs stay separate.
        assert!(subs.len() >= 3);
    }

    #[test]
    fn division_is_lexicographic_within_pair() {
        let moves = vec![mv(9, 0, 2), mv(3, 0, 2), mv(7, 0, 2)];
        let subs = divide_subscales(&moves, 1);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].kgs, vec![KeyGroup(3), KeyGroup(7), KeyGroup(9)]);
    }

    #[test]
    fn single_target_single_pair_yields_one_subscale() {
        let moves = vec![mv(0, 0, 1), mv(1, 0, 1)];
        assert_eq!(divide_subscales(&moves, 1).len(), 1);
    }

    #[test]
    fn empty_moves_empty_plan() {
        assert!(divide_subscales(&[], 4).is_empty());
    }

    #[test]
    fn greedy_prefers_emptier_destination() {
        let subs = vec![
            SubscaleSpec {
                from: InstId(0),
                to: InstId(10),
                kgs: vec![KeyGroup(0)],
            },
            SubscaleSpec {
                from: InstId(1),
                to: InstId(11),
                kgs: vec![KeyGroup(1)],
            },
        ];
        let held = |i: InstId| if i == InstId(10) { 100 } else { 0 };
        let active = HashMap::new();
        let pick = greedy_pick(&[0, 1], &subs, &held, &active, 2);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn greedy_respects_concurrency_limit() {
        let subs = vec![
            SubscaleSpec {
                from: InstId(0),
                to: InstId(10),
                kgs: vec![KeyGroup(0)],
            },
            SubscaleSpec {
                from: InstId(0),
                to: InstId(11),
                kgs: vec![KeyGroup(1)],
            },
        ];
        let held = |_: InstId| 0;
        let mut active = HashMap::new();
        active.insert(InstId(0), 2);
        assert_eq!(greedy_pick(&[0, 1], &subs, &held, &active, 2), None);
        active.insert(InstId(0), 1);
        assert_eq!(greedy_pick(&[0, 1], &subs, &held, &active, 2), Some(0));
    }

    #[test]
    fn greedy_ties_break_by_index() {
        let subs = vec![
            SubscaleSpec {
                from: InstId(0),
                to: InstId(10),
                kgs: vec![KeyGroup(0)],
            },
            SubscaleSpec {
                from: InstId(1),
                to: InstId(10),
                kgs: vec![KeyGroup(1)],
            },
        ];
        let held = |_: InstId| 5;
        let active = HashMap::new();
        assert_eq!(greedy_pick(&[1, 0], &subs, &held, &active, 2), Some(0));
    }
}
