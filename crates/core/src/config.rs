//! Mechanism configuration: the axes along which DRRS, its ablation
//! variants, and the barrier-based baselines differ.

use simcore::time::{ms, SimTime};

/// Where scaling signals enter the dataflow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Injection {
    /// Conventional source injection: the signal propagates through the
    /// whole topology with alignment at every operator (generalized OTFS).
    Source,
    /// Direct predecessor injection (DRRS; also the paper's faithful
    /// Megaphone port).
    Predecessor,
}

/// Full mechanism configuration for [`FlexScaler`](crate::plugin::FlexScaler).
#[derive(Clone, Debug, PartialEq)]
pub struct MechanismConfig {
    /// Mechanism name for reports.
    pub name: &'static str,
    /// Signal injection point.
    pub injection: Injection,
    /// Decoupled trigger/confirm barriers with re-routing (DRRS §III-A);
    /// `false` = coupled barrier with alignment and input blocking.
    pub decouple: bool,
    /// Record Scheduling (inter- + intra-channel, §III-B).
    pub scheduling: bool,
    /// Number of subscales to divide the migration into (§III-C); 1 = none.
    pub subscale_count: usize,
    /// Max concurrent subscales per instance (paper default: 2).
    pub concurrency_limit: usize,
    /// Launch subscales strictly one-after-another (Megaphone's
    /// timestamp-driven naive division).
    pub sequential: bool,
    /// Fluid migration (per key-group resume); `false` = all-at-once.
    pub fluid: bool,
    /// Record-scheduling buffer depth (paper: 200 records).
    pub sched_buffer: usize,
    /// Re-route Manager: flush when this many records are buffered.
    pub reroute_batch: usize,
    /// Re-route Manager: flush at least this often.
    pub reroute_timeout: SimTime,
}

impl MechanismConfig {
    /// Full DRRS: all three mechanisms enabled.
    pub fn drrs() -> Self {
        Self {
            name: "DRRS",
            injection: Injection::Predecessor,
            decouple: true,
            scheduling: true,
            subscale_count: 8,
            concurrency_limit: 2,
            sequential: false,
            fluid: true,
            sched_buffer: 200,
            reroute_batch: 32,
            reroute_timeout: ms(5),
        }
    }

    /// Ablation: Decoupling & Re-routing only (no scheduling, no division).
    pub fn dr_only() -> Self {
        Self {
            name: "DR",
            scheduling: false,
            subscale_count: 1,
            ..Self::drrs()
        }
    }

    /// Ablation: Record Scheduling only, on top of conventional coupled
    /// source-injected signals.
    pub fn schedule_only() -> Self {
        Self {
            name: "Schedule",
            injection: Injection::Source,
            decouple: false,
            subscale_count: 1,
            ..Self::drrs()
        }
    }

    /// Ablation: Subscale Division only — naive division over coupled
    /// barriers, which exhibits the inter-subscale synchronization
    /// interference of the paper's Fig. 7a.
    pub fn subscale_only() -> Self {
        Self {
            name: "Subscale",
            decouple: false,
            scheduling: false,
            ..Self::drrs()
        }
    }

    /// Generalized on-the-fly scaling with fluid migration (the paper's
    /// OTFS baseline in Fig. 2).
    pub fn otfs_fluid() -> Self {
        Self {
            name: "OTFS",
            injection: Injection::Source,
            decouple: false,
            scheduling: false,
            subscale_count: 1,
            concurrency_limit: 1,
            sequential: false,
            fluid: true,
            sched_buffer: 0,
            reroute_batch: 32,
            reroute_timeout: ms(5),
        }
    }

    /// Generalized OTFS with all-at-once migration (traditional).
    pub fn otfs_all_at_once() -> Self {
        Self {
            name: "OTFS-AAO",
            fluid: false,
            ..Self::otfs_fluid()
        }
    }

    /// Megaphone (as ported in the paper §V-A): predecessor injection,
    /// coupled barriers with alignment, timestamp-driven naive division
    /// (sequential per-key-group batches), fluid migration, and the same
    /// 200-record scheduling buffer the paper grants it.
    pub fn megaphone(batch_kgs: usize) -> Self {
        Self {
            name: "Megaphone",
            injection: Injection::Predecessor,
            decouple: false,
            scheduling: true,
            subscale_count: usize::MAX / batch_kgs.max(1), // one batch per `batch_kgs` groups
            concurrency_limit: 1,
            sequential: true,
            fluid: true,
            sched_buffer: 200,
            reroute_batch: 32,
            reroute_timeout: ms(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_axes() {
        let d = MechanismConfig::drrs();
        assert!(d.decouple && d.scheduling && d.subscale_count > 1);
        let dr = MechanismConfig::dr_only();
        assert!(dr.decouple && !dr.scheduling && dr.subscale_count == 1);
        let s = MechanismConfig::schedule_only();
        assert!(!s.decouple && s.scheduling && s.injection == Injection::Source);
        let ss = MechanismConfig::subscale_only();
        assert!(!ss.decouple && !ss.scheduling && ss.subscale_count > 1);
        let o = MechanismConfig::otfs_fluid();
        assert!(o.fluid && o.injection == Injection::Source);
        assert!(!MechanismConfig::otfs_all_at_once().fluid);
        let m = MechanismConfig::megaphone(1);
        assert!(m.sequential && !m.decouple && m.scheduling);
    }
}
