//! The mechanism engine: a single [`FlexScaler`] implements DRRS, its three
//! ablation variants, generalized OTFS and Megaphone, differing only in
//! [`MechanismConfig`] axes — mirroring how the paper implements all
//! mechanisms inside one Flink fork for fair comparison.
//!
//! The DRRS-specific machinery (paper §III):
//!
//! * **Decoupling & Re-routing** — trigger barriers travel as priority
//!   messages straight to the old instance and start migration immediately;
//!   confirm barriers jump the sender's output backlog (records of moving
//!   key-groups bypassed there are redirected, order-preserved, onto the new
//!   instance's channel = epoch `Ef`), then travel in-order; the old
//!   instance re-routes post-extraction records (`Ep`) and finally the
//!   confirm itself to the new instance, giving implicit alignment with no
//!   input blocking.
//! * **Record Scheduling** — inter-channel switching plus intra-channel
//!   bypass within a bounded buffer, never crossing watermarks, checkpoint
//!   barriers or scale signals.
//! * **Subscale Division** — independent subscales scheduled greedily with a
//!   per-instance concurrency threshold.

use std::collections::{HashMap, HashSet, VecDeque};

use simcore::SimTime;
use streamflow::events::PriorityMsg;
use streamflow::ids::{ChannelId, InstId, KeyGroup, OpId, SubscaleId};
use streamflow::record::{Record, RecordKind, ScaleSignal, SignalKind, StreamElement};
use streamflow::scaling::{ScalePlan, ScalePlugin, Selection};
use streamflow::state::StateUnit;
use streamflow::world::World;

use crate::config::{Injection, MechanismConfig};
use crate::planner::{divide_subscales, greedy_pick, SubscaleSpec};

const TAG_FLUSH: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Pending,
    Launched,
    Done,
}

struct Sub {
    spec: SubscaleSpec,
    phase: Phase,
    /// Decoupled: first trigger barrier already acted on.
    triggered: bool,
    /// Key-groups awaiting extraction (fluid migration pumps them serially).
    mig_queue: VecDeque<KeyGroup>,
    /// Key-groups installed at the destination.
    installed: HashSet<u16>,
    /// Decoupled: per predecessor, confirms still to be re-routed.
    confirms_pending: HashMap<InstId, u32>,
    /// Predecessors whose confirms have fully arrived at the destination
    /// (per-channel epoch switching = "fluid confirmation").
    confirmed: HashSet<InstId>,
    /// Coupled: channels whose barrier arrived at the old instance.
    align_arrived: HashSet<ChannelId>,
    aligned: bool,
}

/// How a data record at a scaling-operator instance is classified.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    /// Locally processable right now.
    Process,
    /// State migrated out: forward to the new owner (DRRS re-routing).
    Reroute(InstId),
    /// Not yet processable at the new owner (state or confirm missing).
    Hold,
}

/// The configurable scaling mechanism. See module docs.
pub struct FlexScaler {
    /// Active configuration.
    pub cfg: MechanismConfig,
    op: Option<OpId>,
    started: bool,
    done: bool,
    subs: Vec<Sub>,
    kg2sub: HashMap<u16, usize>,
    pending: Vec<usize>,
    active_cnt: HashMap<InstId, usize>,
    preds: HashSet<InstId>,
    /// Per predecessor: number of keyed edges it feeds the scaling operator
    /// on (= confirms it emits per subscale).
    pred_edge_count: HashMap<InstId, u32>,
    /// Re-route Manager buffers: (old, new) → pending records.
    rbuf: HashMap<(InstId, InstId), Vec<Record>>,
    /// New-instance inboxes of re-routed `Ep` records.
    inbox: HashMap<InstId, VecDeque<Record>>,
    /// Outstanding inbox records per (instance, key-group) — gates `Ef`.
    inbox_kg: HashMap<(InstId, u16), usize>,
    /// Source-injection forwarding alignment at intermediate operators.
    fwd_align: HashMap<(InstId, u32), HashSet<ChannelId>>,
    timer_armed: bool,
}

impl FlexScaler {
    /// Create a mechanism with the given configuration.
    pub fn new(cfg: MechanismConfig) -> Self {
        Self {
            cfg,
            op: None,
            started: false,
            done: false,
            subs: Vec::new(),
            kg2sub: HashMap::new(),
            pending: Vec::new(),
            active_cnt: HashMap::new(),
            preds: HashSet::new(),
            pred_edge_count: HashMap::new(),
            rbuf: HashMap::new(),
            inbox: HashMap::new(),
            inbox_kg: HashMap::new(),
            fwd_align: HashMap::new(),
            timer_armed: false,
        }
    }

    /// Full DRRS with defaults.
    pub fn drrs() -> Self {
        Self::new(MechanismConfig::drrs())
    }

    /// Has the scale finished end to end (all subscales done, re-route
    /// buffers and inboxes drained)?
    pub fn finished(&self) -> bool {
        self.done
    }

    fn sub_of_kg(&self, kg: KeyGroup) -> Option<usize> {
        self.kg2sub.get(&kg.0).copied()
    }

    // ------------------------------------------------------------------
    // Launching
    // ------------------------------------------------------------------

    fn launch_ready(&mut self, w: &mut World) {
        loop {
            if self.pending.is_empty() {
                break;
            }
            if self.cfg.sequential {
                // One subscale at a time, in plan order.
                let any_running = self.subs.iter().any(|s| s.phase == Phase::Launched);
                if any_running {
                    break;
                }
                let si = self.pending.remove(0);
                self.launch(w, si);
                continue;
            }
            let specs: Vec<SubscaleSpec> = self.subs.iter().map(|s| s.spec.clone()).collect();
            let held = |i: InstId| w.insts[i.0 as usize].state.total_keys();
            let Some(si) = greedy_pick(
                &self.pending,
                &specs,
                &held,
                &self.active_cnt,
                self.cfg.concurrency_limit,
            ) else {
                break;
            };
            self.pending.retain(|&x| x != si);
            self.launch(w, si);
        }
    }

    fn launch(&mut self, w: &mut World, si: usize) {
        let now = w.now();
        let op = self.op.expect("launch after start");
        {
            let s = &mut self.subs[si];
            s.phase = Phase::Launched;
            *self.active_cnt.entry(s.spec.from).or_insert(0) += 1;
            *self.active_cnt.entry(s.spec.to).or_insert(0) += 1;
        }
        w.scale.metrics.injected.insert(SubscaleId(si as u32), now);
        if !self.cfg.sequential {
            let fanout = w.cfg.sub_group_fanout.max(1);
            for kg in self.subs[si].spec.kgs.clone() {
                for sb in 0..fanout {
                    w.scale.metrics.unit_injected.insert((kg.0, sb), now);
                }
            }
        }
        match self.cfg.injection {
            Injection::Predecessor => self.inject_at_preds(w, op, si),
            Injection::Source => self.inject_at_sources(w, op, si),
        }
    }

    fn signal(&self, si: usize, kind: SignalKind, pred: InstId, now: SimTime) -> ScaleSignal {
        ScaleSignal {
            scale_epoch: 0,
            subscale: SubscaleId(si as u32),
            kind,
            from_pred: pred,
            injected_at: now,
        }
    }

    fn inject_at_preds(&mut self, w: &mut World, op: OpId, si: usize) {
        let now = w.now();
        let spec = self.subs[si].spec.clone();
        let kg_set: HashSet<u16> = spec.kgs.iter().map(|k| k.0).collect();
        // Copy the cached edge list: the loop below mutates routing state.
        let edges = w.keyed_in_edges(op).to_vec();
        let mut confirms: HashMap<InstId, u32> = HashMap::new();
        for e in edges {
            let from_op = w.edges[e.0 as usize].from;
            let pred_insts = w.ops[from_op.0 as usize].instances.clone();
            for pred in pred_insts {
                // Routing confirmation point: future emissions go to `to`.
                w.reroute_groups(op, pred, &spec.kgs, spec.to);
                let Some(ch_old) = w.channel_between(e, pred, spec.from) else {
                    continue;
                };
                let ch_new = w
                    .channel_between(e, pred, spec.to)
                    .expect("channel to new instance wired at deploy");
                if self.cfg.decouple {
                    // Confirm barrier is priority *in the output cache*: the
                    // moving-key-group records it bypasses are redirected to
                    // the new instance's channel, order preserved (epoch Ef).
                    // Redirection concludes at any in-flight checkpoint
                    // barrier (paper Fig. 9a) to keep snapshot consistency.
                    // Only arena handles move between the two backlogs.
                    let mut moved = Vec::new();
                    w.chans[ch_old.0 as usize].drain_backlog_matching_until(
                        &w.arena,
                        |el| {
                            el.as_record()
                                .map(|r| {
                                    r.kind == RecordKind::Data
                                        && kg_set.contains(&w_kg(r.key, &w.cfg))
                                })
                                .unwrap_or(false)
                        },
                        |el| matches!(el, StreamElement::CheckpointBarrier(_)),
                        &mut moved,
                    );
                    for el in moved {
                        w.chans[ch_new.0 as usize].backlog.push_back(el);
                    }
                    w.pump(ch_new);
                    w.pump(ch_old);
                    // Trigger barrier: priority end-to-end.
                    let trig = self.signal(si, SignalKind::Trigger, pred, now);
                    w.send_priority(spec.from, PriorityMsg::Signal(trig));
                    // Confirm barrier: skips the backlog, in-order on the
                    // wire and at the receiver.
                    let conf = self.signal(si, SignalKind::Confirm, pred, now);
                    w.send_uncredited(ch_old, StreamElement::Scale(conf));
                    *confirms.entry(pred).or_insert(0) += 1;
                } else {
                    // Coupled barrier: strictly in-band (through the backlog).
                    let sig = self.signal(si, SignalKind::Coupled, pred, now);
                    w.send(ch_old, StreamElement::Scale(sig));
                }
            }
        }
        self.subs[si].confirms_pending = confirms;
    }

    fn inject_at_sources(&mut self, w: &mut World, op: OpId, si: usize) {
        // Conventional source injection: barriers ride the dataflow from the
        // sources, aligned and forwarded at every intermediate operator.
        let now = w.now();
        let spec = self.subs[si].spec.clone();
        let source_insts: Vec<InstId> = w
            .insts
            .iter()
            .filter(|i| i.source.is_some())
            .map(|i| i.id)
            .collect();
        for srci in source_insts {
            // A source that directly feeds the scaling operator acts as the
            // predecessor: flip routing when the barrier is emitted.
            if self.preds.contains(&srci) {
                w.reroute_groups(op, srci, &spec.kgs, spec.to);
            }
            let sig = self.signal(si, SignalKind::Coupled, srci, now);
            for ch in w.insts[srci.0 as usize].out_channels.clone() {
                w.send(ch, StreamElement::Scale(sig));
            }
        }
    }

    // ------------------------------------------------------------------
    // Migration pump (fluid: one key-group in flight per subscale)
    // ------------------------------------------------------------------

    fn pump_migration(&mut self, w: &mut World, si: usize) {
        let (from, to, next) = {
            let s = &mut self.subs[si];
            let Some(kg) = s.mig_queue.pop_front() else {
                return;
            };
            (s.spec.from, s.spec.to, kg)
        };
        if self.cfg.sequential {
            // Megaphone's timestamp-driven plan announces every unit at the
            // start; record the governing injection lazily at first touch.
            let t = w.scale.metrics.deployed_at.unwrap_or_else(|| w.now());
            let fanout = w.cfg.sub_group_fanout.max(1);
            for sb in 0..fanout {
                w.scale
                    .metrics
                    .unit_injected
                    .entry((next.0, sb))
                    .or_insert(t);
            }
        }
        w.migrate_group(from, to, next, SubscaleId(si as u32));
    }

    fn start_migration(&mut self, w: &mut World, si: usize) {
        let kgs = self.subs[si].spec.kgs.clone();
        self.subs[si].mig_queue = kgs.into();
        if self.cfg.fluid {
            self.pump_migration(w, si);
        } else {
            // All-at-once: extract and enqueue the lot in one batch.
            while !self.subs[si].mig_queue.is_empty() {
                self.pump_migration(w, si);
            }
        }
    }

    // ------------------------------------------------------------------
    // Re-route Manager (paper component B4)
    // ------------------------------------------------------------------

    fn buffer_reroute(&mut self, w: &mut World, old: InstId, to: InstId, rec: Record) {
        let buf = self.rbuf.entry((old, to)).or_default();
        buf.push(rec);
        if buf.len() >= self.cfg.reroute_batch {
            self.flush_rbuf(w, old, to);
        }
    }

    fn flush_rbuf(&mut self, w: &mut World, old: InstId, to: InstId) {
        if let Some(buf) = self.rbuf.get_mut(&(old, to)) {
            if buf.is_empty() {
                return;
            }
            let records = std::mem::take(buf);
            w.send_priority(to, PriorityMsg::ReroutedRecords { from: old, records });
        }
    }

    fn flush_all(&mut self, w: &mut World) {
        let mut keys: Vec<(InstId, InstId)> = self.rbuf.keys().copied().collect();
        // Canonical order: the priority sends scheduled here tie-break FIFO
        // in the event queue, so hash-map iteration order must not leak
        // into the interleaving (same-seed reproducibility).
        keys.sort_unstable();
        for (o, t) in keys {
            self.flush_rbuf(w, o, t);
        }
    }

    // ------------------------------------------------------------------
    // Classification
    // ------------------------------------------------------------------

    fn classify(&self, w: &World, inst: InstId, ch_from: InstId, rec: &Record) -> Class {
        if rec.kind == RecordKind::Marker {
            return Class::Process;
        }
        let kg = w.kg_of(rec.key);
        let Some(si) = self.sub_of_kg(kg) else {
            return Class::Process; // not a moving key-group
        };
        let s = &self.subs[si];
        if s.phase == Phase::Pending {
            return Class::Process; // not yet launched: state is where it was
        }
        let held = w.insts[inst.0 as usize].state.holds_group(kg);
        if inst == s.spec.to {
            if !held {
                return Class::Hold;
            }
            if !self.cfg.fluid && w.scale.in_progress {
                // All-at-once: resume only once the entire migration landed.
                return Class::Hold;
            }
            // Inbox ordering: re-routed Ep records of this key-group must
            // drain before Ef records are admitted.
            if self.inbox_kg.get(&(inst, kg.0)).copied().unwrap_or(0) > 0 {
                return Class::Hold;
            }
            if self.cfg.decouple {
                // Implicit alignment: per-channel epoch switch when Record
                // Scheduling is on ("fluid confirmation"), strict otherwise.
                let ok = if self.cfg.scheduling {
                    s.confirmed.contains(&ch_from) || !self.preds.contains(&ch_from)
                } else {
                    s.confirms_pending.values().all(|&c| c == 0)
                };
                if !ok {
                    return Class::Hold;
                }
            }
            Class::Process
        } else if inst == s.spec.from {
            if held {
                Class::Process // still awaiting its migration turn (Fig. 4b)
            } else {
                Class::Reroute(s.spec.to)
            }
        } else {
            Class::Process
        }
    }

    // ------------------------------------------------------------------
    // Selection (Record Scheduling)
    // ------------------------------------------------------------------

    fn take_inbox_run(&mut self, w: &mut World, inst: InstId) -> Option<Selection> {
        let q = self.inbox.get_mut(&inst)?;
        if q.is_empty() {
            return None;
        }
        let mut records = Vec::new();
        let mut service: SimTime = 0;
        while let Some(front) = q.front() {
            let kg = w.kg_of(front.key);
            if !w.insts[inst.0 as usize].state.holds_group(kg) {
                break; // state still in transit: inbox is strictly FIFO
            }
            if records.len() >= w.cfg.quantum_records || service >= w.cfg.quantum_time {
                break;
            }
            let rec = q.pop_front().expect("non-empty");
            if let Some(c) = self.inbox_kg.get_mut(&(inst, kg.0)) {
                *c = c.saturating_sub(1);
            }
            service += w.service_of(inst, &rec);
            records.push(rec);
        }
        if records.is_empty() {
            None
        } else {
            Some(Selection::Run { records, service })
        }
    }

    // `loop` + let-else keeps the queue-front borrow scoped to the peek;
    // `while let` would hold it across the mutating body.
    #[allow(clippy::while_let_loop)]
    fn flex_select(&mut self, w: &mut World, inst: InstId) -> Selection {
        // Re-routed records are special events, exempt from suspension.
        if let Some(run) = self.take_inbox_run(w, inst) {
            return run;
        }
        let (n, start) = {
            let i = &w.insts[inst.0 as usize];
            (i.in_channels.len(), i.active_ch)
        };
        if n == 0 {
            return Selection::Idle;
        }
        let mut saw_unprocessable = false;
        for k in 0..n {
            let idx = (start + k) % n;
            let ch = w.insts[inst.0 as usize].in_channels[idx];
            if w.insts[inst.0 as usize].blocked_channels.contains(&ch) {
                continue;
            }
            // Drain any front-of-queue re-routable records, then examine.
            loop {
                let Some(front) = w.chan_front(ch) else {
                    break;
                };
                match front {
                    StreamElement::Record(r) => {
                        let from = w.chans[ch.0 as usize].from;
                        match self.classify(w, inst, from, r) {
                            Class::Process => {
                                w.insts[inst.0 as usize].active_ch = idx;
                                let mut me = TakeAdmit(self);
                                return w.build_run(&mut me, inst, ch);
                            }
                            Class::Reroute(to) => {
                                let Some(StreamElement::Record(rec)) = w.chan_pop(ch) else {
                                    unreachable!("front was a record")
                                };
                                self.buffer_reroute(w, inst, to, rec);
                                continue; // re-examine the new front
                            }
                            Class::Hold => {
                                saw_unprocessable = true;
                                if self.cfg.scheduling {
                                    // Intra-channel: bypass unprocessable
                                    // records within the bounded buffer,
                                    // never crossing control elements.
                                    if let Some(sel) = self.intra_scan(w, inst, ch) {
                                        return sel;
                                    }
                                    break; // inter-channel: try next channel
                                } else {
                                    // Active-channel discipline: suspend.
                                    return Selection::Suspend;
                                }
                            }
                        }
                    }
                    _ => {
                        w.insts[inst.0 as usize].active_ch = idx;
                        let elem = w.chan_pop(ch).expect("non-empty");
                        return Selection::Control(ch, elem);
                    }
                }
            }
        }
        if saw_unprocessable {
            Selection::Suspend
        } else {
            Selection::Idle
        }
    }

    /// Scan past the unprocessable head of `ch` for the first processable
    /// record within the scheduling buffer; stop at any control element.
    fn intra_scan(&mut self, w: &mut World, inst: InstId, ch: ChannelId) -> Option<Selection> {
        let depth = self
            .cfg
            .sched_buffer
            .min(w.chans[ch.0 as usize].queue.len());
        for pos in 1..depth {
            let class = {
                let el = w.chan_peek(ch, pos).expect("pos < queue depth");
                match el {
                    StreamElement::Record(r) => {
                        let from = w.chans[ch.0 as usize].from;
                        Some(self.classify(w, inst, from, r))
                    }
                    // Watermarks, checkpoint barriers and scale signals are
                    // scheduling fences (paper §III-B).
                    _ => None,
                }
            };
            match class {
                None => return None,
                Some(Class::Process) => {
                    let Some(StreamElement::Record(rec)) = w.chan_remove_at(ch, pos) else {
                        unreachable!("checked record")
                    };
                    let service = w.service_of(inst, &rec);
                    return Some(Selection::Run {
                        records: vec![rec],
                        service,
                    });
                }
                Some(Class::Reroute(to)) => {
                    let Some(StreamElement::Record(rec)) = w.chan_remove_at(ch, pos) else {
                        unreachable!("checked record")
                    };
                    self.buffer_reroute(w, inst, to, rec);
                    return self.intra_scan(w, inst, ch); // positions shifted
                }
                Some(Class::Hold) => continue,
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    fn maybe_finish_subscale(&mut self, w: &mut World, si: usize) {
        let finished = {
            let s = &self.subs[si];
            s.phase == Phase::Launched && s.installed.len() >= s.spec.kgs.len()
        };
        if !finished {
            return;
        }
        {
            let s = &mut self.subs[si];
            s.phase = Phase::Done;
            if let Some(c) = self.active_cnt.get_mut(&s.spec.from) {
                *c = c.saturating_sub(1);
            }
            if let Some(c) = self.active_cnt.get_mut(&s.spec.to) {
                *c = c.saturating_sub(1);
            }
        }
        self.launch_ready(w);
        self.check_done(w);
    }

    fn check_done(&mut self, w: &mut World) {
        if self.done || !self.started {
            return;
        }
        let subs_done = self.subs.iter().all(|s| s.phase == Phase::Done);
        let confirms_done = self
            .subs
            .iter()
            .all(|s| s.confirms_pending.values().all(|&c| c == 0));
        let buffers_empty =
            self.rbuf.values().all(|b| b.is_empty()) && self.inbox.values().all(|q| q.is_empty());
        if subs_done && confirms_done && buffers_empty && !w.scale.in_progress {
            self.done = true;
            // Wake everything once so suspended instances re-evaluate under
            // the engine's default selection.
            let ids: Vec<InstId> = self
                .op
                .map(|op| w.ops[op.0 as usize].instances.clone())
                .unwrap_or_default();
            for i in ids {
                w.wake(i);
            }
        }
    }
}

/// Shim so `flex_select` can hand `build_run` an admission view of the
/// classifier without double-borrowing `self`.
struct TakeAdmit<'a>(&'a mut FlexScaler);

impl ScalePlugin for TakeAdmit<'_> {
    fn name(&self) -> &'static str {
        self.0.cfg.name
    }
    fn on_scale_start(&mut self, _w: &mut World, _p: &ScalePlan) {}
    fn on_signal(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _s: ScaleSignal) {}
    fn on_chunk(&mut self, _w: &mut World, _i: InstId, _u: StateUnit, _s: SubscaleId, _f: InstId) {}
    fn admit(&mut self, w: &mut World, inst: InstId, ch: ChannelId, rec: &Record) -> bool {
        let from = w.chans[ch.0 as usize].from;
        self.0.classify(w, inst, from, rec) == Class::Process
    }
}

impl ScalePlugin for FlexScaler {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn active(&self) -> bool {
        self.started && !self.done
    }

    fn on_scale_start(&mut self, w: &mut World, plan: &ScalePlan) {
        debug_assert!(
            !(self.cfg.decouple && self.cfg.injection == Injection::Source),
            "decoupled signals require predecessor injection"
        );
        self.op = Some(plan.op);
        self.started = true;
        self.done = false;
        self.preds = w.predecessors(plan.op).iter().copied().collect();
        self.pred_edge_count.clear();
        for e in w.keyed_in_edges(plan.op) {
            let from_op = w.edges[e.0 as usize].from;
            for &p in &w.ops[from_op.0 as usize].instances {
                *self.pred_edge_count.entry(p).or_insert(0) += 1;
            }
        }
        let specs = divide_subscales(&plan.moves, self.cfg.subscale_count);
        self.subs = specs
            .into_iter()
            .map(|spec| Sub {
                spec,
                phase: Phase::Pending,
                triggered: false,
                mig_queue: VecDeque::new(),
                installed: HashSet::new(),
                confirms_pending: HashMap::new(),
                confirmed: HashSet::new(),
                align_arrived: HashSet::new(),
                aligned: false,
            })
            .collect();
        self.kg2sub.clear();
        for (i, s) in self.subs.iter().enumerate() {
            for kg in &s.spec.kgs {
                self.kg2sub.insert(kg.0, i);
            }
        }
        self.pending = (0..self.subs.len()).collect();
        self.active_cnt.clear();
        if self.subs.is_empty() {
            self.done = true;
            return;
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let t = self.cfg.reroute_timeout;
            w.schedule_plugin(t, TAG_FLUSH);
        }
        self.launch_ready(w);
    }

    fn on_control(&mut self, w: &mut World, tag: u64) {
        if tag == TAG_FLUSH {
            if self.done {
                self.timer_armed = false;
                return;
            }
            self.flush_all(w);
            let t = self.cfg.reroute_timeout;
            w.schedule_plugin(t, TAG_FLUSH);
        }
    }

    fn on_priority_signal(&mut self, w: &mut World, inst: InstId, sig: ScaleSignal) {
        if sig.kind == SignalKind::Trigger {
            let si = sig.subscale.0 as usize;
            if si < self.subs.len() && !self.subs[si].triggered && inst == self.subs[si].spec.from {
                self.subs[si].triggered = true;
                self.start_migration(w, si);
            }
        }
    }

    fn on_signal(&mut self, w: &mut World, inst: InstId, ch: ChannelId, sig: ScaleSignal) {
        let si = sig.subscale.0 as usize;
        match sig.kind {
            SignalKind::Confirm => {
                // Arrived in-order at the *old* instance: all Ep records
                // from this predecessor are already consumed. Flush the
                // re-route buffer, then re-route the confirm itself.
                if si < self.subs.len() && inst == self.subs[si].spec.from {
                    let to = self.subs[si].spec.to;
                    self.flush_rbuf(w, inst, to);
                    w.send_priority(
                        to,
                        PriorityMsg::ReroutedConfirm {
                            from: inst,
                            signal: sig,
                        },
                    );
                }
            }
            SignalKind::Coupled => self.on_coupled(w, inst, ch, sig),
            SignalKind::Trigger | SignalKind::ConfirmRerouted => {
                // Triggers normally travel out-of-band; tolerate in-band.
                self.on_priority_signal(w, inst, sig);
            }
        }
    }

    fn on_rerouted_records(
        &mut self,
        w: &mut World,
        inst: InstId,
        _from: InstId,
        records: Vec<Record>,
    ) {
        for rec in records {
            let kg = w.kg_of(rec.key);
            *self.inbox_kg.entry((inst, kg.0)).or_insert(0) += 1;
            self.inbox.entry(inst).or_default().push_back(rec);
        }
        w.wake(inst);
    }

    fn on_rerouted_confirm(
        &mut self,
        w: &mut World,
        inst: InstId,
        _from: InstId,
        sig: ScaleSignal,
    ) {
        let si = sig.subscale.0 as usize;
        if si >= self.subs.len() {
            return;
        }
        let pred = sig.from_pred;
        {
            let s = &mut self.subs[si];
            let c = s.confirms_pending.entry(pred).or_insert(0);
            *c = c.saturating_sub(1);
            if *c == 0 {
                s.confirmed.insert(pred);
            }
        }
        w.wake(inst);
        self.check_done(w);
    }

    fn on_chunk(
        &mut self,
        w: &mut World,
        inst: InstId,
        unit: StateUnit,
        subscale: SubscaleId,
        _from: InstId,
    ) {
        let si = subscale.0 as usize;
        let kg = unit.kg;
        w.install_unit(inst, unit, true);
        if si < self.subs.len() {
            let fully = w.insts[inst.0 as usize].state.holds_group(kg);
            if fully {
                self.subs[si].installed.insert(kg.0);
                if self.cfg.fluid {
                    self.pump_migration(w, si);
                }
                self.maybe_finish_subscale(w, si);
            }
        }
        self.check_done(w);
    }

    fn on_orphan_record(&mut self, w: &mut World, inst: InstId, rec: &Record) -> bool {
        // A quantum admitted this record before its key-group was extracted
        // (triggers bypass in-flight work). Re-route it like any other Ep
        // record.
        let kg = w.kg_of(rec.key);
        if let Some(si) = self.sub_of_kg(kg) {
            if inst == self.subs[si].spec.from {
                let to = self.subs[si].spec.to;
                self.buffer_reroute(w, inst, to, rec.clone());
                return true;
            }
        }
        false
    }

    fn selects(&self, w: &World, inst: InstId) -> bool {
        self.started && !self.done && self.op == Some(w.insts[inst.0 as usize].op)
    }

    fn select(&mut self, w: &mut World, inst: InstId) -> Selection {
        self.flex_select(w, inst)
    }

    fn admit(&mut self, w: &mut World, inst: InstId, ch: ChannelId, rec: &Record) -> bool {
        if !self.active() {
            return true;
        }
        let from = w.chans[ch.0 as usize].from;
        self.classify(w, inst, from, rec) == Class::Process
    }
}

impl FlexScaler {
    fn on_coupled(&mut self, w: &mut World, inst: InstId, ch: ChannelId, sig: ScaleSignal) {
        let si = sig.subscale.0 as usize;
        if si >= self.subs.len() {
            return;
        }
        let op = self.op.expect("signal during scale");
        let my_op = w.insts[inst.0 as usize].op;
        if my_op == op {
            // At the scaling operator.
            if inst != self.subs[si].spec.from {
                return; // new instances / uninvolved siblings just consume it
            }
            // Alignment with input blocking (paper Fig. 1a / Fig. 7a).
            w.block_channel(ch);
            let expected = {
                let i = &w.insts[inst.0 as usize];
                i.in_channels
                    .iter()
                    .filter(|&&c| self.preds.contains(&w.chans[c.0 as usize].from))
                    .count()
            };
            let arrived = {
                let s = &mut self.subs[si];
                s.align_arrived.insert(ch);
                s.align_arrived.len()
            };
            if arrived >= expected && !self.subs[si].aligned {
                self.subs[si].aligned = true;
                // Unblock only channels no other still-aligning subscale at
                // this instance is holding (overlapping subscales — the
                // naive-division interference of Fig. 7a — share channels).
                let to_unblock: Vec<ChannelId> = self.subs[si]
                    .align_arrived
                    .iter()
                    .copied()
                    .filter(|c| {
                        !self.subs.iter().any(|o| {
                            o.phase == Phase::Launched
                                && !o.aligned
                                && o.spec.from == inst
                                && o.align_arrived.contains(c)
                        })
                    })
                    .collect();
                for c in to_unblock {
                    w.unblock_channel(c);
                }
                self.start_migration(w, si);
            }
        } else {
            // Intermediate operator: align, update routing if predecessor,
            // then forward.
            let key = (inst, sig.subscale.0);
            let set = self.fwd_align.entry(key).or_default();
            set.insert(ch);
            w.block_channel(ch);
            let expected = w.insts[inst.0 as usize].in_channels.len();
            let arrived = self.fwd_align.get(&key).map(|s| s.len()).unwrap_or(0);
            if arrived >= expected {
                let chans: Vec<ChannelId> = self
                    .fwd_align
                    .remove(&key)
                    .map(|s| s.into_iter().collect())
                    .unwrap_or_default();
                if self.preds.contains(&inst) {
                    // The barrier itself is the routing confirmation in
                    // coupled mode; no separate confirm bookkeeping.
                    let spec = self.subs[si].spec.clone();
                    w.reroute_groups(op, inst, &spec.kgs, spec.to);
                }
                for out in w.insts[inst.0 as usize].out_channels.clone() {
                    w.send(out, StreamElement::Scale(sig));
                }
                for c in chans {
                    w.unblock_channel(c);
                }
            }
        }
    }
}

fn w_kg(key: u64, cfg: &streamflow::EngineConfig) -> u16 {
    streamflow::ids::key_group_of(key, cfg.max_key_groups).0
}
