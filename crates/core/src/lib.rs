//! `drrs-core` — the paper's contribution: **DRRS**, an on-the-fly scaling
//! mechanism for stateful stream processing with three innovations
//! (ICDE 2025, "Towards Fine-Grained Scalability for Stateful Stream
//! Processing Systems"):
//!
//! 1. **Decoupling & Re-routing** (§III-A): the conventional dual-purpose
//!    scaling barrier is split into a priority *trigger* barrier (starts
//!    migration immediately, bypassing all in-flight data) and an in-order
//!    *confirm* barrier (routing confirmation), with re-routing of
//!    already-migrated state's records replacing explicit input-blocking
//!    alignment.
//! 2. **Record Scheduling** (§III-B): engine-level inter-channel switching
//!    and intra-channel bypass keep instances processing during migration
//!    instead of suspending, while preserving execution semantics.
//! 3. **Subscale Division** (§III-C): the migration is partitioned into
//!    independent subscales that migrate concurrently without interference,
//!    scheduled greedily under a per-instance concurrency threshold.
//!
//! The paper's system architecture (§IV, Fig. 8) maps onto this crate as
//! follows:
//!
//! | Paper component | Here |
//! |---|---|
//! | Scale Coordinator (A) / Topology Updater (A0) | the engine's control plane ([`streamflow::World::schedule_scale`], deploy events) |
//! | Subscale Handler (A1) | [`plugin::FlexScaler`] launch path |
//! | Scale Executor (B) / Scale Input Handler (B1) | [`plugin::FlexScaler`]'s `select` (replaces the native input handler during scaling) |
//! | Barrier Handler (B2) | `on_signal` / `on_priority_signal` |
//! | Suspend Manager (B3) | classification + engine suspension accounting |
//! | Re-route Manager (B4) | the re-route buffers with capacity/timeout flushing |
//! | Scale Planner (C0/C1) | [`planner`] (uniform repartition lives in the engine; division + greedy scheduling here) |
//!
//! The same [`plugin::FlexScaler`] also expresses the paper's ablation
//! variants (DR / Schedule / Subscale, Fig. 14) and the barrier-based
//! baselines (generalized OTFS, Megaphone) purely through
//! [`config::MechanismConfig`] — mirroring the paper's single-fork
//! methodology for fair comparison.

pub mod config;
pub mod planner;
pub mod plugin;

pub use config::{Injection, MechanismConfig};
pub use planner::{divide_subscales, greedy_pick, SubscaleSpec};
pub use plugin::FlexScaler;

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;
    use streamflow::world::tests_support::tiny_job;
    use streamflow::world::Sim;
    use streamflow::EngineConfig;

    fn run_scale(cfg: MechanismConfig, rate: f64) -> Sim {
        let (mut w, agg) = tiny_job(EngineConfig::test(), rate, 512, 2);
        w.schedule_scale(secs(2), agg, 4);
        let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
        sim.run_until(secs(10));
        sim
    }

    fn assert_scale_completed(sim: &Sim, name: &str) {
        assert!(
            !sim.world.scale.in_progress,
            "{name}: migration did not complete"
        );
        assert!(
            sim.world.scale.metrics.migration_done.is_some(),
            "{name}: no completion time"
        );
        assert_eq!(
            sim.world.semantics.violations(),
            0,
            "{name}: execution order violated: {:?}",
            sim.world.semantics.samples()
        );
        // Every moved group landed at its destination.
        let plan = sim.world.scale.plan.as_ref().expect("plan");
        for m in &plan.moves {
            assert!(
                sim.world.insts[m.to.0 as usize].state.holds_group(m.kg),
                "{name}: {} not at {}",
                m.kg,
                m.to
            );
            assert!(
                !sim.world.insts[m.from.0 as usize].state.holds_group(m.kg),
                "{name}: {} still at {}",
                m.kg,
                m.from
            );
        }
    }

    #[test]
    fn drrs_full_scale_completes_and_preserves_order() {
        let sim = run_scale(MechanismConfig::drrs(), 4_000.0);
        assert_scale_completed(&sim, "DRRS");
        assert!(sim.world.metrics.sink_records > 10_000);
    }

    #[test]
    fn dr_only_completes() {
        let sim = run_scale(MechanismConfig::dr_only(), 4_000.0);
        assert_scale_completed(&sim, "DR");
    }

    #[test]
    fn schedule_only_completes() {
        let sim = run_scale(MechanismConfig::schedule_only(), 4_000.0);
        assert_scale_completed(&sim, "Schedule");
    }

    #[test]
    fn subscale_only_completes() {
        let sim = run_scale(MechanismConfig::subscale_only(), 4_000.0);
        assert_scale_completed(&sim, "Subscale");
    }

    #[test]
    fn otfs_fluid_completes() {
        let sim = run_scale(MechanismConfig::otfs_fluid(), 4_000.0);
        assert_scale_completed(&sim, "OTFS");
    }

    #[test]
    fn otfs_all_at_once_completes() {
        let sim = run_scale(MechanismConfig::otfs_all_at_once(), 4_000.0);
        assert_scale_completed(&sim, "OTFS-AAO");
    }

    #[test]
    fn megaphone_completes() {
        let sim = run_scale(MechanismConfig::megaphone(1), 4_000.0);
        assert_scale_completed(&sim, "Megaphone");
    }

    #[test]
    fn state_counts_are_conserved_across_scaling() {
        // Compare the final per-key counts of a scaled run with a
        // no-scale run at the same rate and horizon: count/sum aggregates
        // must be near-identical (timing perturbs only the tail backlog).
        let horizon = secs(8);
        let (w1, agg1) = tiny_job(EngineConfig::test(), 2_000.0, 256, 2);
        let mut base = Sim::new(w1, Box::new(streamflow::NoScale));
        base.run_until(horizon);

        let (mut w2, agg2) = tiny_job(EngineConfig::test(), 2_000.0, 256, 2);
        w2.schedule_scale(secs(2), agg2, 4);
        let mut scaled = Sim::new(w2, Box::new(FlexScaler::drrs()));
        scaled.run_until(horizon);
        assert!(!scaled.world.scale.in_progress);

        let collect = |sim: &Sim, op: streamflow::OpId| {
            let mut all = std::collections::HashMap::new();
            for &i in &sim.world.ops[op.0 as usize].instances {
                for (k, c) in sim.world.insts[i.0 as usize].state.snapshot_counts() {
                    *all.entry(k).or_insert(0u64) += c;
                }
            }
            all
        };
        let a = collect(&base, agg1);
        let b = collect(&scaled, agg2);
        assert_eq!(a.len(), b.len(), "key universe differs");
        let total_a: u64 = a.values().sum();
        let total_b: u64 = b.values().sum();
        let diff = total_a.abs_diff(total_b) as f64 / total_a as f64;
        assert!(
            diff < 0.1,
            "count divergence {diff} (a={total_a}, b={total_b})"
        );
    }

    #[test]
    fn drrs_suspends_less_than_otfs() {
        let suspension = |cfg: MechanismConfig| {
            // Overdrive the operator so migration happens under load.
            let (mut w, agg) = tiny_job(EngineConfig::test(), 8_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
            sim.run_until(secs(12));
            let total: u64 = sim.world.ops[agg.0 as usize]
                .instances
                .iter()
                .map(|&i| sim.world.insts[i.0 as usize].suspension_as_of(sim.world.now()))
                .sum();
            (total, sim.world.scale.in_progress)
        };
        let (drrs, drrs_active) = suspension(MechanismConfig::drrs());
        let (otfs, _) = suspension(MechanismConfig::otfs_fluid());
        assert!(!drrs_active, "DRRS scale must finish");
        assert!(
            drrs < otfs,
            "DRRS suspension ({drrs} µs) should undercut OTFS ({otfs} µs)"
        );
    }

    #[test]
    fn drrs_propagation_delay_beats_otfs() {
        let lp = |cfg: MechanismConfig| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
            sim.run_until(secs(10));
            assert!(
                !sim.world.scale.in_progress,
                "{} unfinished",
                sim.plugin.name()
            );
            sim.world.scale.metrics.cumulative_propagation_delay() as f64
                / sim.world.scale.metrics.injected.len().max(1) as f64
        };
        let drrs = lp(MechanismConfig::drrs());
        let otfs = lp(MechanismConfig::otfs_fluid());
        assert!(
            drrs < otfs,
            "per-signal propagation: DRRS {drrs} µs vs OTFS {otfs} µs"
        );
    }

    #[test]
    fn record_scheduling_reduces_suspension_within_drrs() {
        // Isolate Record Scheduling: same decoupled signals and subscales,
        // scheduling on vs off. Fig. 6's claim — fewer suspensions.
        let run_with = |scheduling: bool| {
            // Slow the migration path down so state is genuinely in
            // transit while records arrive (the test profile's instant
            // transfers would leave nothing to suspend on).
            let mut ecfg = EngineConfig::test();
            ecfg.ser_bytes_per_us = 2.0;
            let (mut w, agg) = tiny_job(ecfg, 10_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let cfg = MechanismConfig {
                scheduling,
                ..MechanismConfig::drrs()
            };
            let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
            sim.run_until(secs(12));
            assert!(!sim.world.scale.in_progress);
            assert_eq!(sim.world.semantics.violations(), 0);
            sim.world.ops[agg.0 as usize]
                .instances
                .iter()
                .map(|&i| sim.world.insts[i.0 as usize].suspension_as_of(sim.world.now()))
                .sum::<u64>()
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(
            with < without,
            "scheduling on: {with} µs, off: {without} µs"
        );
    }

    #[test]
    fn ef_records_wait_for_implicit_alignment() {
        // Strict mode (no fluid confirmation): even with state present, Ef
        // records must wait for every re-routed confirm. We can't observe
        // intermediate states directly from here, but a correct
        // implementation yields zero violations under heavy in-flight
        // traffic — an incorrect one (processing Ef before Ep drained)
        // reliably reorders at this load.
        let (mut w, agg) = tiny_job(EngineConfig::test(), 45_000.0, 256, 2);
        w.schedule_scale(secs(2), agg, 4);
        let cfg = MechanismConfig {
            scheduling: false,
            ..MechanismConfig::drrs()
        };
        let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
        sim.run_until(secs(15));
        assert!(!sim.world.scale.in_progress);
        assert_eq!(
            sim.world.semantics.violations(),
            0,
            "implicit alignment violated: {:?}",
            sim.world.semantics.samples()
        );
    }

    #[test]
    fn drrs_correct_under_overload_during_scale() {
        // The hardest case: deep queues at the flip (Ep records at old
        // instances, redirect of a non-empty backlog, re-route + confirm
        // interleaving) — all per-key order must survive.
        let (mut w, agg) = tiny_job(EngineConfig::test(), 60_000.0, 512, 2);
        w.schedule_scale(secs(2), agg, 4);
        let mut sim = Sim::new(w, Box::new(FlexScaler::drrs()));
        sim.run_until(secs(20));
        assert!(
            !sim.world.scale.in_progress,
            "scale never finished under overload"
        );
        assert_eq!(
            sim.world.semantics.violations(),
            0,
            "overload reordering: {:?}",
            sim.world.semantics.samples()
        );
    }

    #[test]
    fn subscales_respect_concurrency_threshold() {
        // With concurrency 1 and many subscales, launches serialize: the
        // spread between first and last injection must be substantial
        // relative to a fully parallel launch.
        let spread = |limit: usize| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let cfg = MechanismConfig {
                subscale_count: 8,
                concurrency_limit: limit,
                ..MechanismConfig::drrs()
            };
            let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
            sim.run_until(secs(15));
            assert!(!sim.world.scale.in_progress);
            let inj: Vec<u64> = sim.world.scale.metrics.injected.values().copied().collect();
            let lo = inj.iter().min().copied().unwrap_or(0);
            let hi = inj.iter().max().copied().unwrap_or(0);
            hi - lo
        };
        let serialized = spread(1);
        let parallel = spread(64);
        assert!(
            serialized > parallel,
            "serialized spread {serialized} µs vs parallel {parallel} µs"
        );
    }

    #[test]
    fn megaphone_dependency_overhead_exceeds_drrs() {
        let ld = |cfg: MechanismConfig| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let mut sim = Sim::new(w, Box::new(FlexScaler::new(cfg)));
            sim.run_until(secs(20));
            assert!(
                !sim.world.scale.in_progress,
                "{} unfinished",
                sim.plugin.name()
            );
            sim.world.scale.metrics.avg_dependency_overhead()
        };
        let drrs = ld(MechanismConfig::drrs());
        let mega = ld(MechanismConfig::megaphone(1));
        assert!(
            mega > drrs,
            "dependency overhead: Megaphone {mega} µs vs DRRS {drrs} µs"
        );
    }
}
