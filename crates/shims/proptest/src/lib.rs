//! A dependency-free, proptest-compatible property-testing shim.
//!
//! The build container has no access to crates.io, so the real `proptest`
//! cannot be vendored. This shim implements the subset of its API the
//! repo's property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), `any::<T>()`, integer/float range
//! strategies, tuple strategies, `collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (derived from the test path, so runs are deterministic),
//! and failing cases are reported but **not shrunk**. For a simulator
//! whose inputs are small scalars and short vectors, the unshrunk
//! counterexample is almost always readable as-is.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64 — small, fast, and plenty for test gen)
// ---------------------------------------------------------------------

/// The shim's internal random source. Public because the [`proptest!`]
/// macro expansion instantiates it; not part of the emulated API.
pub struct ShimRng(u64);

impl ShimRng {
    /// Seed deterministically from the fully qualified test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then mixed: stable across runs and rustc
        // versions, unique per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(h | 1)
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A value generator. The emulated subset of proptest's `Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut ShimRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut ShimRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// An unconstrained value of `T`, like proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut ShimRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ShimRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut ShimRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ShimRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut ShimRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ )),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut ShimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{ShimRng, Strategy};
    use std::ops::Range;

    /// Size specification for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ShimRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => {{
        let (l, r) = (&$l, &$r);
        if !(*l == *r) {
            return Err(format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($l), stringify!($r), l, r));
        }
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        if !(*l == *r) {
            return Err(format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($l), stringify!($r), format!($($fmt)+), l, r));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => {{
        let (l, r) = (&$l, &$r);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($l),
                stringify!($r),
                l
            ));
        }
    }};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the emulated API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::ShimRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let result: ::std::result::Result<(), ::std::string::String> = (move || {
                        $body;
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{} with inputs {}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            stringify!($($arg in $strat),+),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::ShimRng::for_test("bounds");
        for _ in 0..10_000 {
            let v = (3u16..=9).generate(&mut rng);
            assert!((3..=9).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::ShimRng::for_test("vec");
        for _ in 0..1_000 {
            let v = collection::vec((any::<u64>(), 1u64..10), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&(_, c)| (1..10).contains(&c)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::ShimRng::for_test("same");
        let mut b = crate::ShimRng::for_test("same");
        for _ in 0..100 {
            assert_eq!(
                (0u64..1_000).generate(&mut a),
                (0u64..1_000).generate(&mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_cases(x in 1u32..100, y in 1u32..100) {
            prop_assert!(x >= 1 && y >= 1);
            prop_assert_ne!(x + y, 0);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
