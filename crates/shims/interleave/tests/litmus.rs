//! Litmus tests for the schedule explorer itself: each classic
//! concurrency bug shape must be found, and each correct counterpart
//! must survive full exploration.

use std::sync::Arc;

use interleave::sync::{AtomicU64, Mutex, Ordering, UnsafeCell};
use interleave::{thread, Checker, ViolationKind};

#[test]
fn message_passing_with_release_acquire_is_clean() {
    let report = Checker::new().run(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // Acquire of the Release store: the data write is visible.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.schedules > 1);
    assert!(report.dfs_complete, "tiny litmus must be fully explored");
}

#[test]
fn message_passing_with_relaxed_publish_is_caught() {
    // The same shape with the flag published Relaxed: an Acquire load of
    // a Relaxed store synchronizes nothing, so the data load may observe
    // the stale 0 — the explorer must find that schedule.
    let report = Checker::new().run(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
        }
        t.join().unwrap();
    });
    let v = report.violation.expect("stale read must be found");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("stale read"), "{}", v.message);
}

#[test]
fn unsynchronized_cell_write_is_a_data_race() {
    let report = Checker::new().run(|| {
        let cell = Arc::new(CellBox(UnsafeCell::new(0u64)));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.0.with_mut(|p| {
                // SAFETY: test intentionally races; the model intercepts
                // the access before the write executes.
                unsafe { *p = 1 }
            });
        });
        cell.0.with(|p| {
            // SAFETY: as above — the checker flags the race first.
            let _ = unsafe { *p };
        });
        t.join().unwrap();
    });
    let v = report.violation.expect("cell race must be found");
    assert_eq!(v.kind, ViolationKind::DataRace);
}

#[test]
fn mutex_protected_counter_is_clean_and_complete() {
    let report = Checker::new().run(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().expect("model mutex never poisons") += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().expect("model mutex never poisons"), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.dfs_complete);
}

#[test]
fn abba_lock_order_deadlocks() {
    let report = Checker::new().run(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("model mutex never poisons");
            let _gb = b2.lock().expect("model mutex never poisons");
        });
        let _gb = b.lock().expect("model mutex never poisons");
        let _ga = a.lock().expect("model mutex never poisons");
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let v = report.violation.expect("ABBA deadlock must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock);
}

#[test]
fn relaxed_rmw_counter_never_loses_updates() {
    // fetch_add reads the newest store regardless of ordering (RMW
    // atomicity), so even a Relaxed counter sums correctly.
    let report = Checker::new().run(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// `UnsafeCell` is `!Sync`; the tests share it deliberately, mirroring
/// how `spsc::Inner` wraps its slot array.
struct CellBox(UnsafeCell<u64>);
// SAFETY: the tests only access the cell through the model's race
// checker, which serializes or reports every conflicting access.
unsafe impl Sync for CellBox {}
// SAFETY: u64 is Send; the wrapper adds no thread affinity.
unsafe impl Send for CellBox {}
