//! The schedule-exploring runtime: virtual threads, choice points, and
//! the approximate C11 memory model.
//!
//! # Execution model
//!
//! Each *execution* runs the user closure once with every concurrency
//! decision resolved by the explorer. Model threads are real OS threads,
//! but exactly one runs at a time: a thread reaching a visible operation
//! (atomic access, cell access, mutex/condvar op, spawn/join/yield)
//! parks in [`Rt::with`], a **scheduling decision** picks which thread
//! performs its pending operation next, and the chosen thread executes
//! its operation atomically under the runtime lock. Because execution is
//! fully serialized, the explored code never exhibits a *machine-level*
//! data race — races are detected at the model level (vector clocks on
//! [`crate::sync::UnsafeCell`] accesses) and reported as violations
//! instead of being undefined behavior.
//!
//! # Exploration
//!
//! Every decision with more than one option is a *choice point*: which
//! thread runs, and which store a non-SeqCst load observes. A schedule is
//! the sequence of choices. Two strategies run back to back:
//!
//! * **DFS with a bounded preemption budget** — option 0 is always "keep
//!   running the current thread"; switching to another runnable thread
//!   while the current one could continue costs one unit of preemption
//!   budget. Forced switches (current thread blocked, yielded, or
//!   finished) are free. Backtracking enumerates the tree breadth up to
//!   [`Checker::dfs_schedules`] executions.
//! * **Random schedules** — every choice drawn from a [`DetRng`] seeded
//!   per execution, unbounded preemptions. Catches interleavings beyond
//!   the preemption bound.
//!
//! Executions must be deterministic given their choice sequence — user
//! closures must not branch on wall-clock time or OS randomness.
//!
//! # Memory model approximation
//!
//! Each atomic location keeps its full modification order as a store
//! buffer. A load may observe any store not ruled out by coherence
//! (per-thread monotone observation index) or happens-before (the newest
//! store whose timestamp is `leq` the loader's clock is the floor — older
//! stores are gone for this thread). Acquire loads of Release stores join
//! the store's release clock into the loader's clock; Relaxed loads and
//! Relaxed stores move no clocks, which is exactly what makes
//! weakened-ordering mutants observable as cell races. SeqCst is
//! approximated as AcqRel plus "reads the newest store" — the model does
//! **not** build a full SC order, so it can miss exotic IRIW-style SC
//! violations; see the `simcore::sync` module docs for the catch/can't
//! catch table.

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, Once};

use crate::rng::DetRng;
use crate::vclock::{VClock, MAX_THREADS};

// ---------------------------------------------------------------------
// Public report types
// ---------------------------------------------------------------------

/// What kind of contract the explorer saw broken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Unsynchronized conflicting accesses to an [`crate::sync::UnsafeCell`].
    DataRace,
    /// Every unfinished thread is blocked.
    Deadlock,
    /// A model thread panicked (failed assertion in the checked code).
    Panic,
    /// An execution exceeded the per-schedule step limit (livelock).
    StepLimit,
}

/// A broken schedule: what went wrong plus the tail of the operation
/// trace that led there.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Category of the failure.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// The last operations executed (`thread: op(arg)`), oldest first.
    pub trace: Vec<String>,
}

/// Outcome of a [`Checker::run`]: how much was explored and whether any
/// schedule broke a contract.
#[derive(Debug)]
pub struct Report {
    /// Executions performed (DFS + random).
    pub schedules: u64,
    /// Distinct choice sequences among them.
    pub distinct: u64,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
    /// Whether DFS exhausted the whole tree within its budget.
    pub dfs_complete: bool,
}

// ---------------------------------------------------------------------
// Checker configuration / driver
// ---------------------------------------------------------------------

/// Configures and drives schedule exploration over a model closure.
#[derive(Clone, Debug)]
pub struct Checker {
    preemption_bound: usize,
    dfs_schedules: u64,
    random_schedules: u64,
    seed: u64,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    /// Default budgets: 2 preemptions, 4096 DFS executions, 1024 random
    /// schedules, 20k steps per execution.
    pub fn new() -> Self {
        Self {
            preemption_bound: 2,
            dfs_schedules: 4096,
            random_schedules: 1024,
            seed: 0x5eed_1e55_c0de,
            max_steps: 20_000,
        }
    }

    /// Maximum involuntary context switches per DFS schedule.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = n;
        self
    }

    /// Cap on DFS executions (the tree may be larger; see
    /// [`Report::dfs_complete`]).
    pub fn dfs_schedules(mut self, n: u64) -> Self {
        self.dfs_schedules = n;
        self
    }

    /// Number of additional fully random schedules.
    pub fn random_schedules(mut self, n: u64) -> Self {
        self.random_schedules = n;
        self
    }

    /// Seed for the random-schedule phase.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Explore `f`. Stops at the first violation. `f` runs once per
    /// schedule and must be deterministic given the explorer's choices.
    pub fn run<F: Fn()>(&self, f: F) -> Report {
        install_panic_hook();
        let mut report = Report {
            schedules: 0,
            distinct: 0,
            violation: None,
            dfs_complete: false,
        };
        let mut distinct: HashSet<u64> = HashSet::new();

        // Phase 1: DFS over the choice tree.
        let mut prefix: Vec<PathEntry> = Vec::new();
        loop {
            if report.schedules >= self.dfs_schedules {
                break;
            }
            let out = self.run_once(&f, Mode::Dfs, std::mem::take(&mut prefix));
            report.schedules += 1;
            distinct.insert(out.hash);
            if out.violation.is_some() {
                report.violation = out.violation;
                report.distinct = distinct.len() as u64;
                return report;
            }
            prefix = out.path;
            if !advance(&mut prefix) {
                report.dfs_complete = true;
                break;
            }
        }

        // Phase 2: seeded random schedules.
        for i in 0..self.random_schedules {
            let rng = DetRng::new(self.seed.wrapping_add(i));
            let out = self.run_once(&f, Mode::Random(rng), Vec::new());
            report.schedules += 1;
            distinct.insert(out.hash);
            if out.violation.is_some() {
                report.violation = out.violation;
                break;
            }
        }
        report.distinct = distinct.len() as u64;
        report
    }

    fn run_once<F: Fn()>(&self, f: &F, mode: Mode, prefix: Vec<PathEntry>) -> ExecOutcome {
        let rt = Arc::new(Rt {
            ex: OsMutex::new(Exec::new(
                mode,
                prefix,
                self.preemption_bound,
                self.max_steps,
            )),
            cv: OsCondvar::new(),
            os_handles: OsMutex::new(Vec::new()),
        });
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), 0)));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        match result {
            Ok(()) => {
                // Drain any threads the closure spawned but did not join.
                rt.drain(0);
            }
            Err(payload) => {
                if payload.downcast_ref::<Aborted>().is_none() {
                    // A genuine panic on the driver thread (e.g. a failed
                    // assertion in the model body).
                    let mut ex = rt.lock();
                    let msg = panic_message(&payload);
                    ex.record_failure(ViolationKind::Panic, msg);
                    rt.cv.notify_all();
                }
            }
        }
        {
            let mut ex = rt.lock();
            ex.threads[0].run = Run::Finished;
            ex.done = true;
            rt.cv.notify_all();
        }
        // Every spawned OS thread exits once `done`/`failed` is visible.
        let handles = std::mem::take(&mut *rt.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        let ex = rt.lock();
        ExecOutcome {
            path: ex.path.clone(),
            hash: ex.trace_hash,
            violation: ex.failed.clone(),
        }
    }
}

/// Explore `f` with the default [`Checker`] and panic on any violation —
/// the `#[test]`-friendly entry point.
pub fn model<F: Fn()>(f: F) {
    let report = Checker::new().run(f);
    if let Some(v) = report.violation {
        panic!(
            "interleave: {:?} after {} schedules: {}\ntrace:\n  {}",
            v.kind,
            report.schedules,
            v.message,
            v.trace.join("\n  ")
        );
    }
}

/// DFS backtrack: advance `path` to the next unexplored prefix. Returns
/// `false` when the whole tree has been visited.
fn advance(path: &mut Vec<PathEntry>) -> bool {
    while let Some(e) = path.last_mut() {
        if e.chosen + 1 < e.total {
            e.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

struct ExecOutcome {
    path: Vec<PathEntry>,
    hash: u64,
    violation: Option<Violation>,
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

/// One recorded decision: which option was taken out of how many.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PathEntry {
    chosen: usize,
    total: usize,
}

enum Mode {
    Dfs,
    Random(DetRng),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockOn {
    Mutex(usize),
    Condvar(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Run {
    Ready,
    Blocked(BlockOn),
    Finished,
}

pub(crate) struct Th {
    pub(crate) run: Run,
    pub(crate) clock: VClock,
    /// Per-location coherence floor: index of the newest store this
    /// thread has observed at each atomic location.
    pub(crate) seen: Vec<usize>,
    /// Clock at finish time; joined into whoever joins this thread.
    pub(crate) final_clock: VClock,
}

/// One atomic store in a location's modification order.
pub(crate) struct Store {
    pub(crate) val: u64,
    /// The storing thread's clock at store time (for the hb floor).
    pub(crate) ts: VClock,
    /// Set iff the store had release semantics; acquire loads join it.
    pub(crate) release: Option<VClock>,
}

pub(crate) struct Location {
    pub(crate) stores: Vec<Store>,
}

/// Vector-clock pair for race detection on an `UnsafeCell`:
/// `writes[t]`/`reads[t]` hold thread `t`'s own clock component at its
/// last write/read.
pub(crate) struct CellClocks {
    pub(crate) writes: VClock,
    pub(crate) reads: VClock,
}

pub(crate) struct MutexSt {
    pub(crate) owner: Option<usize>,
    /// Release clock of the last unlock; joined by the next lock.
    pub(crate) clock: VClock,
}

pub(crate) struct CvSt {
    /// Parked waiters with the mutex each must re-acquire on wakeup.
    pub(crate) waiters: Vec<(usize, usize)>,
}

pub(crate) struct Exec {
    mode: Mode,
    path: Vec<PathEntry>,
    step: usize,
    trace_hash: u64,
    preemption_bound: usize,
    preemptions: usize,
    max_steps: usize,
    steps: usize,
    pub(crate) cur: usize,
    pub(crate) threads: Vec<Th>,
    pub(crate) locations: Vec<Location>,
    pub(crate) cells: Vec<CellClocks>,
    pub(crate) mutexes: Vec<MutexSt>,
    pub(crate) condvars: Vec<CvSt>,
    pub(crate) failed: Option<Violation>,
    pub(crate) done: bool,
    trace: Vec<(usize, &'static str, u64)>,
    pub(crate) scratch: Vec<usize>,
}

impl Exec {
    fn new(mode: Mode, prefix: Vec<PathEntry>, preemption_bound: usize, max_steps: usize) -> Self {
        Self {
            mode,
            path: prefix,
            step: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325,
            preemption_bound,
            preemptions: 0,
            max_steps,
            steps: 0,
            cur: 0,
            threads: vec![Th {
                run: Run::Ready,
                clock: VClock::zero(),
                seen: Vec::new(),
                final_clock: VClock::zero(),
            }],
            locations: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            failed: None,
            done: false,
            trace: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Resolve a choice point with `total` options (replay, DFS-default,
    /// or random). Trivial points (one option) are not recorded.
    pub(crate) fn choose(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let chosen = if self.step < self.path.len() {
            let e = self.path[self.step];
            assert_eq!(
                e.total, total,
                "interleave: replay diverged — the model closure is not \
                 deterministic given the explorer's choices"
            );
            e.chosen
        } else {
            let c = match &mut self.mode {
                Mode::Dfs => 0,
                Mode::Random(rng) => rng.below(total),
            };
            self.path.push(PathEntry { chosen: c, total });
            c
        };
        self.step += 1;
        // FNV-1a over (chosen, total): the schedule identity.
        for b in [chosen as u64, total as u64] {
            self.trace_hash ^= b;
            self.trace_hash = self.trace_hash.wrapping_mul(0x100_0000_01b3);
        }
        chosen
    }

    pub(crate) fn note(&mut self, tid: usize, what: &'static str, arg: u64) {
        if self.trace.len() >= 96 {
            self.trace.remove(0);
        }
        self.trace.push((tid, what, arg));
    }

    pub(crate) fn record_failure(&mut self, kind: ViolationKind, message: String) {
        if self.failed.is_some() {
            return;
        }
        let trace = self
            .trace
            .iter()
            .map(|(tid, what, arg)| format!("t{tid}: {what}({arg})"))
            .collect();
        self.failed = Some(Violation {
            kind,
            message,
            trace,
        });
    }

    pub(crate) fn ready_ids(&mut self, exclude: Option<usize>) -> usize {
        self.scratch.clear();
        for (i, t) in self.threads.iter().enumerate() {
            if t.run == Run::Ready && Some(i) != exclude {
                self.scratch.push(i);
            }
        }
        self.scratch.len()
    }
}

/// Result of one attempt at a visible operation.
pub(crate) enum Step<R> {
    Done(R),
    Block(BlockOn),
    /// Contract broken (e.g. a cell race): record and tear down.
    Fail(ViolationKind, String),
}

// ---------------------------------------------------------------------
// Runtime: the single-token scheduler
// ---------------------------------------------------------------------

pub(crate) struct Rt {
    pub(crate) ex: OsMutex<Exec>,
    pub(crate) cv: OsCondvar,
    pub(crate) os_handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Unwind payload used to tear an execution down after a violation; the
/// panic hook swallows it on model threads.
pub(crate) struct Aborted;

pub(crate) fn abort_execution() -> ! {
    panic::panic_any(Aborted)
}

thread_local! {
    pub(crate) static CURRENT: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The `(runtime, virtual thread id)` of the calling thread, if it is a
/// model thread.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is currently part of a model execution.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn install_panic_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Model threads unwind on purpose (teardown or recorded
            // violations); keep their output quiet.
            let on_model_thread = CURRENT.with(|c| c.borrow().is_some());
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

impl Rt {
    pub(crate) fn lock(&self) -> OsGuard<'_, Exec> {
        // Poisoning is expected: violations unwind while holding the
        // lock; the state stays coherent because `failed` is set first.
        self.ex.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run one visible operation for virtual thread `me`.
    ///
    /// `me` first waits to be granted the single execution token, then
    /// `perform` runs atomically under the runtime lock, and finally —
    /// at the *completion* of the op — `me` makes the scheduling
    /// decision (continue, or preempt to another runnable thread).
    /// Deciding at completion rather than entry matters: it keeps the
    /// decision count a pure function of the choice sequence, whereas an
    /// entry-time decision would depend on whether this OS thread
    /// reached the op before or after a token handoff (replay would
    /// diverge). `perform` may return [`Step::Block`] to park the thread
    /// — it is retried after a wakeup — or [`Step::Fail`] to report a
    /// violation.
    pub(crate) fn with<R>(
        self: &Arc<Self>,
        me: usize,
        mut perform: impl FnMut(&mut Exec, usize) -> Step<R>,
    ) -> R {
        let mut ex = self.lock();
        self.check_alive(&ex);
        ex = self.wait_turn(ex, me);
        loop {
            match perform(&mut ex, me) {
                Step::Done(r) => {
                    self.decide(&mut ex, me, false);
                    return r;
                }
                Step::Block(b) => {
                    ex.threads[me].run = Run::Blocked(b);
                    self.decide(&mut ex, me, true);
                    ex = self.wait_turn(ex, me);
                }
                Step::Fail(kind, msg) => {
                    ex.record_failure(kind, msg);
                    drop(ex);
                    self.cv.notify_all();
                    abort_execution();
                }
            }
        }
    }

    /// Voluntarily hand the token to another runnable thread (free — not
    /// a preemption; the canonical way out of a spin loop). No-op when
    /// `me` does not hold the token (someone else is already running) or
    /// when nothing else can run; either way `me`'s next op parks until
    /// it is rescheduled.
    pub(crate) fn yield_now(self: &Arc<Self>, me: usize) {
        let mut ex = self.lock();
        self.check_alive(&ex);
        if ex.cur != me {
            return;
        }
        let n = ex.ready_ids(Some(me));
        if n == 0 {
            return;
        }
        ex.steps += 1;
        let idx = ex.choose(n);
        ex.cur = ex.scratch[idx];
        drop(ex);
        self.cv.notify_all();
    }

    /// Scheduling decision before an operation of `me`. With
    /// `forced = false`, option 0 is "continue `me`" and switching costs
    /// preemption budget; with `forced = true`, `me` cannot continue and
    /// a switch is mandatory (deadlock if nobody is runnable).
    fn decide(&self, ex: &mut Exec, me: usize, forced: bool) {
        ex.steps += 1;
        if ex.steps > ex.max_steps {
            ex.record_failure(
                ViolationKind::StepLimit,
                format!("execution exceeded {} steps (livelock?)", ex.max_steps),
            );
            self.cv.notify_all();
            abort_execution();
        }
        if !forced {
            let others = ex.ready_ids(Some(me));
            let budget_left = ex.preemptions < ex.preemption_bound;
            if others == 0 || !budget_left {
                ex.cur = me;
                return;
            }
            // options: [me, other_0, other_1, ...]
            let idx = ex.choose(others + 1);
            if idx == 0 {
                ex.cur = me;
                return;
            }
            ex.preemptions += 1;
            ex.cur = ex.scratch[idx - 1];
            self.cv.notify_all();
            return;
        }
        let n = ex.ready_ids(Some(me));
        if n == 0 {
            let states: Vec<String> = ex
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("t{i}:{:?}", t.run))
                .collect();
            ex.record_failure(
                ViolationKind::Deadlock,
                format!("no runnable thread — {}", states.join(" ")),
            );
            self.cv.notify_all();
            abort_execution();
        }
        let idx = ex.choose(n);
        ex.cur = ex.scratch[idx];
        self.cv.notify_all();
    }

    /// Park until the token points at `me` (and `me` is runnable again).
    fn wait_turn<'a>(&'a self, mut ex: OsGuard<'a, Exec>, me: usize) -> OsGuard<'a, Exec> {
        loop {
            if ex.failed.is_some() || ex.done {
                drop(ex);
                abort_execution();
            }
            if ex.cur == me && ex.threads[me].run == Run::Ready {
                return ex;
            }
            ex = self.cv.wait(ex).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn check_alive(&self, ex: &Exec) {
        if ex.failed.is_some() || ex.done {
            abort_execution();
        }
    }

    /// Called by the driver after the closure returns: keep redelegating
    /// the token to spawned threads until they all finish (or deadlock).
    fn drain(self: &Arc<Self>, me: usize) {
        let mut ex = self.lock();
        loop {
            if ex.failed.is_some() {
                return;
            }
            let unfinished = ex
                .threads
                .iter()
                .enumerate()
                .any(|(i, t)| i != me && t.run != Run::Finished);
            if !unfinished {
                return;
            }
            if ex.cur == me {
                let n = ex.ready_ids(Some(me));
                if n == 0 {
                    let states: Vec<String> = ex
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(i, t)| format!("t{i}:{:?}", t.run))
                        .collect();
                    ex.record_failure(
                        ViolationKind::Deadlock,
                        format!(
                            "driver finished but spawned threads are blocked — {}",
                            states.join(" ")
                        ),
                    );
                    self.cv.notify_all();
                    return;
                }
                let idx = ex.choose(n);
                ex.cur = ex.scratch[idx];
                self.cv.notify_all();
            }
            ex = self.cv.wait(ex).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// ---------------------------------------------------------------------
// Registration helpers used by the sync facade types
// ---------------------------------------------------------------------

impl Rt {
    pub(crate) fn alloc_location(self: &Arc<Self>, init: u64, creator: usize) -> usize {
        let mut ex = self.lock();
        let ts = ex.threads[creator].clock;
        let id = ex.locations.len();
        ex.locations.push(Location {
            stores: vec![Store {
                val: init,
                ts,
                // The initial value is published by construction: any
                // thread that can reach the atomic got it via a
                // clock-joining edge (spawn), so model it as released.
                release: Some(ts),
            }],
        });
        id
    }

    pub(crate) fn alloc_cell(self: &Arc<Self>, creator: usize) -> usize {
        let mut ex = self.lock();
        let mut writes = VClock::zero();
        writes.0[creator] = ex.threads[creator].clock.0[creator];
        let id = ex.cells.len();
        ex.cells.push(CellClocks {
            writes,
            reads: VClock::zero(),
        });
        id
    }

    pub(crate) fn alloc_mutex(self: &Arc<Self>) -> usize {
        let mut ex = self.lock();
        let id = ex.mutexes.len();
        ex.mutexes.push(MutexSt {
            owner: None,
            clock: VClock::zero(),
        });
        id
    }

    pub(crate) fn alloc_condvar(self: &Arc<Self>) -> usize {
        let mut ex = self.lock();
        let id = ex.condvars.len();
        ex.condvars.push(CvSt {
            waiters: Vec::new(),
        });
        id
    }
}

// ---------------------------------------------------------------------
// Memory-model operations (called under `Rt::with`)
// ---------------------------------------------------------------------

pub(crate) fn acquiring(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) fn releasing(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Model an atomic load: pick an observable store (choice point when
/// more than one), apply acquire synchronization, return its value.
pub(crate) fn atomic_load(ex: &mut Exec, me: usize, loc: usize, ord: Ordering) -> u64 {
    ex.threads[me].clock.tick(me);
    let clock = ex.threads[me].clock;
    let n = ex.locations[loc].stores.len();
    debug_assert!(n > 0);
    // Happens-before floor: newest store whose timestamp this thread's
    // clock dominates. Anything older is no longer observable.
    let mut floor = 0;
    for i in (0..n).rev() {
        if ex.locations[loc].stores[i].ts.leq(&clock) {
            floor = i;
            break;
        }
    }
    if ex.threads[me].seen.len() <= loc {
        ex.threads[me].seen.resize(loc + 1, 0);
    }
    floor = floor.max(ex.threads[me].seen[loc]);
    let idx = if ord == Ordering::SeqCst || floor == n - 1 {
        n - 1
    } else {
        // Choice among observable stores, newest first: option 0 is the
        // coherent latest value, stale values are explored on backtrack.
        let j = ex.choose(n - floor);
        n - 1 - j
    };
    ex.threads[me].seen[loc] = idx;
    let val = ex.locations[loc].stores[idx].val;
    if acquiring(ord) {
        if let Some(rc) = ex.locations[loc].stores[idx].release {
            ex.threads[me].clock.join(&rc);
        }
    }
    ex.note(me, "load", val);
    val
}

/// Model an atomic store: append to the modification order, publishing
/// the thread clock when the ordering releases.
pub(crate) fn atomic_store(ex: &mut Exec, me: usize, loc: usize, val: u64, ord: Ordering) {
    ex.threads[me].clock.tick(me);
    let ts = ex.threads[me].clock;
    let release = releasing(ord).then_some(ts);
    let idx = ex.locations[loc].stores.len();
    ex.locations[loc].stores.push(Store { val, ts, release });
    if ex.threads[me].seen.len() <= loc {
        ex.threads[me].seen.resize(loc + 1, 0);
    }
    ex.threads[me].seen[loc] = idx;
    ex.note(me, "store", val);
}

/// Model a read-modify-write: always reads the newest store (RMW
/// atomicity), applies `f`, appends the result. Returns the old value.
pub(crate) fn atomic_rmw(
    ex: &mut Exec,
    me: usize,
    loc: usize,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    ex.threads[me].clock.tick(me);
    let idx = ex.locations[loc].stores.len() - 1;
    let old = ex.locations[loc].stores[idx].val;
    if acquiring(ord) {
        if let Some(rc) = ex.locations[loc].stores[idx].release {
            ex.threads[me].clock.join(&rc);
        }
    }
    let ts = ex.threads[me].clock;
    let release = releasing(ord).then_some(ts);
    ex.locations[loc].stores.push(Store {
        val: f(old),
        ts,
        release,
    });
    if ex.threads[me].seen.len() <= loc {
        ex.threads[me].seen.resize(loc + 1, 0);
    }
    ex.threads[me].seen[loc] = idx + 1;
    ex.note(me, "rmw", old);
    old
}

/// Race-check a cell access. `write = true` for `with_mut`. Returns an
/// error message when the access races with a previous one.
pub(crate) fn cell_access(
    ex: &mut Exec,
    me: usize,
    cell: usize,
    write: bool,
) -> Result<(), String> {
    ex.threads[me].clock.tick(me);
    let clock = ex.threads[me].clock;
    let c = &mut ex.cells[cell];
    for u in 0..MAX_THREADS {
        if u == me {
            continue;
        }
        if c.writes.0[u] > clock.0[u] {
            return Err(format!(
                "data race on cell #{cell}: t{me} {} not ordered after t{u}'s write",
                if write { "write" } else { "read" }
            ));
        }
        if write && c.reads.0[u] > clock.0[u] {
            return Err(format!(
                "data race on cell #{cell}: t{me} write not ordered after t{u}'s read"
            ));
        }
    }
    if write {
        c.writes.0[me] = clock.0[me];
        ex.note(me, "cell_write", cell as u64);
    } else {
        c.reads.0[me] = clock.0[me];
        ex.note(me, "cell_read", cell as u64);
    }
    Ok(())
}
