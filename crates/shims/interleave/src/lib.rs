//! `interleave` — an offline, dependency-free, loom-style deterministic
//! schedule explorer.
//!
//! The build container has no crates.io access, so `loom`, `miri` and
//! ThreadSanitizer are unavailable — yet the repo's correctness rests on
//! hand-rolled unsafe concurrency (`simcore::spsc`, `EpochBarrier`, the
//! epoch protocol in `engine::parallel`). This shim makes those
//! primitives *model-checkable* in the same spirit as the offline
//! `criterion`/`proptest` shims: API-compatible types, no behavioral
//! surprises in real builds, and a checker that actually explores
//! interleavings in test builds.
//!
//! # Use
//!
//! Code under test imports its atomics/cells/locks from a facade (the
//! repo's is [`simcore::sync`]) that re-exports `std` in real builds and
//! this crate's [`sync`] module under `cfg(feature =
//! "interleave-check")`. Tests then wrap a closure in a [`Checker`]:
//!
//! ```
//! use interleave::{thread, Checker};
//! use interleave::sync::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let report = Checker::new().run(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let b = Arc::clone(&a);
//!     let t = thread::spawn(move || b.store(1, Ordering::Release));
//!     let _ = a.load(Ordering::Acquire);
//!     t.join().unwrap();
//! });
//! assert!(report.violation.is_none());
//! assert!(report.schedules > 1);
//! ```
//!
//! The closure runs once per explored schedule; panics inside it, data
//! races on [`sync::UnsafeCell`], deadlocks and livelocks are reported
//! as [`Violation`]s with an operation trace. See the [`rt`] module docs
//! for the exploration strategies and the memory-model approximation,
//! and `simcore::sync` for what the model can and cannot catch.
//!
//! [`simcore::sync`]: ../simcore/sync/index.html

#![deny(clippy::undocumented_unsafe_blocks)]

mod rt;
mod vclock;

pub mod rng;
pub mod sync;
pub mod thread;

pub use rng::DetRng;
pub use rt::{model, Checker, Report, Violation, ViolationKind};

/// Spin-loop hint: in the model this must hand the schedule to another
/// thread (a modeled spin would livelock the explored execution); in
/// fallback mode it is a plain `std::hint::spin_loop`.
pub mod hint {
    /// See the module docs.
    pub fn spin_loop() {
        if crate::rt::in_model() {
            crate::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}
