//! Deterministic random source for random-schedule exploration.
//!
//! The shim cannot depend on `simcore` (simcore depends on *us* under
//! `interleave-check`), so this is a self-contained SplitMix64 — the same
//! idiom as `simcore::DetRng` and the proptest shim's `ShimRng`: seeded,
//! stable across runs and rustc versions, and plenty for schedule
//! sampling.

/// Seedable deterministic RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct DetRng(u64);

impl DetRng {
    /// Create a generator from a seed. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = DetRng::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::new(7);
        for n in 1..64 {
            for _ in 0..32 {
                assert!(r.below(n) < n);
            }
        }
    }
}
