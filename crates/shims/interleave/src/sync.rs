//! Model-aware drop-ins for `std::sync::atomic` types, `UnsafeCell`,
//! `Mutex` and `Condvar`.
//!
//! Every type here has two personalities decided at construction time:
//! created **inside** a model execution (a [`crate::Checker::run`]
//! closure), it registers with the runtime and every operation becomes an
//! explored schedule point; created **outside**, it falls back to the
//! plain `std` primitive and behaves exactly like it. The fallback is
//! what lets a whole crate compile against these types under
//! `cfg(feature = "interleave-check")` while only the code under a
//! checker actually pays for (and benefits from) exploration.
//!
//! # Teardown tolerance
//!
//! When a violation aborts an execution, threads unwind through user
//! destructors (`Drop for spsc::Inner` does atomic loads; mutex guards
//! unlock). Operations called while the execution is already dead return
//! best-effort results instead of panicking if the calling thread is
//! unwinding — a second panic inside a `Drop` would abort the process —
//! and otherwise start this thread's teardown unwind.

use std::sync::Arc;

pub use std::sync::atomic::Ordering;
pub use std::sync::LockResult;

use crate::rt::{
    self, atomic_load, atomic_rmw, atomic_store, cell_access, current, BlockOn, Run, Step,
    ViolationKind,
};

// ---------------------------------------------------------------------
// Shared model-handle plumbing
// ---------------------------------------------------------------------

/// `(runtime, id)` of a model-registered object.
type Handle = (Arc<rt::Rt>, usize);

/// Resolve the current virtual thread for an op on a model object; `None`
/// means the execution is already dead and the op should degrade instead
/// of exploring.
fn op_thread(h: &Handle) -> Option<usize> {
    match current() {
        Some((rt, me)) if Arc::ptr_eq(&rt, &h.0) => {
            let ex = h.0.lock();
            if ex.failed.is_some() || ex.done {
                drop(ex);
                if std::thread::panicking() {
                    None
                } else {
                    rt::abort_execution()
                }
            } else {
                Some(me)
            }
        }
        // A model object touched from outside its execution: the only
        // legitimate way is teardown (driver-side drops after the run).
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-aware drop-in for the std atomic of the same name.
        pub struct $name {
            real: $std,
            model: Option<Handle>,
        }

        impl $name {
            /// Create the atomic; registers a model location when built
            /// inside an execution.
            pub fn new(v: $prim) -> Self {
                let model = current().map(|(rt, me)| {
                    let loc = rt.alloc_location(v as u64, me);
                    (rt, loc)
                });
                Self {
                    real: <$std>::new(v),
                    model,
                }
            }

            /// Atomic load with the model's visibility rules (a relaxed
            /// load may observe stale stores under exploration).
            pub fn load(&self, ord: Ordering) -> $prim {
                match &self.model {
                    None => self.real.load(ord),
                    Some(h) => match op_thread(h) {
                        None => self.latest(h) as $prim,
                        Some(me) => h.0.with(me, |ex, me| {
                            Step::Done(atomic_load(ex, me, h.1, ord) as $prim)
                        }),
                    },
                }
            }

            /// Atomic store; a Release store publishes this thread's
            /// clock for matching Acquire loads.
            pub fn store(&self, v: $prim, ord: Ordering) {
                match &self.model {
                    None => self.real.store(v, ord),
                    Some(h) => match op_thread(h) {
                        None => {}
                        Some(me) => h.0.with(me, |ex, me| {
                            atomic_store(ex, me, h.1, v as u64, ord);
                            Step::Done(())
                        }),
                    },
                }
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                match &self.model {
                    None => self.real.fetch_add(v, ord),
                    Some(h) => match op_thread(h) {
                        None => self.latest(h) as $prim,
                        Some(me) => h.0.with(me, |ex, me| {
                            Step::Done(atomic_rmw(ex, me, h.1, ord, |x| {
                                (x as $prim).wrapping_add(v) as u64
                            }) as $prim)
                        }),
                    },
                }
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                match &self.model {
                    None => self.real.fetch_sub(v, ord),
                    Some(h) => match op_thread(h) {
                        None => self.latest(h) as $prim,
                        Some(me) => h.0.with(me, |ex, me| {
                            Step::Done(atomic_rmw(ex, me, h.1, ord, |x| {
                                (x as $prim).wrapping_sub(v) as u64
                            }) as $prim)
                        }),
                    },
                }
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match &self.model {
                    None => self.real.swap(v, ord),
                    Some(h) => match op_thread(h) {
                        None => self.latest(h) as $prim,
                        Some(me) => h.0.with(me, |ex, me| {
                            Step::Done(atomic_rmw(ex, me, h.1, ord, |_| v as u64) as $prim)
                        }),
                    },
                }
            }

            /// Compare-and-exchange; the model treats success and failure
            /// orderings like the std semantics (acquire on read, release
            /// on successful write).
            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match &self.model {
                    None => self.real.compare_exchange(cur, new, success, failure),
                    Some(h) => match op_thread(h) {
                        None => Err(self.latest(h) as $prim),
                        Some(me) => h.0.with(me, |ex, me| {
                            let old = atomic_load(ex, me, h.1, Ordering::SeqCst) as $prim;
                            if old == cur {
                                atomic_store(ex, me, h.1, new as u64, success);
                                Step::Done(Ok(old))
                            } else {
                                let _ = failure;
                                Step::Done(Err(old))
                            }
                        }),
                    },
                }
            }

            /// Weak CAS — in the model it never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                cur: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(cur, new, success, failure)
            }

            /// Newest value in the modification order (teardown path).
            fn latest(&self, h: &Handle) -> u64 {
                let ex = h.0.lock();
                ex.locations[h.1].stores.last().map(|s| s.val).unwrap_or(0)
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

// ---------------------------------------------------------------------
// UnsafeCell with race detection
// ---------------------------------------------------------------------

/// Race-checked `UnsafeCell`: all access goes through [`Self::with`] /
/// [`Self::with_mut`], which under a model verify (via vector clocks)
/// that the access is ordered after every conflicting access by another
/// thread. Outside a model both compile to the raw pointer access.
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    model: Option<Handle>,
}

impl<T> UnsafeCell<T> {
    /// Wrap a value; registers race-tracking clocks when built inside an
    /// execution.
    pub fn new(v: T) -> Self {
        let model = current().map(|(rt, me)| {
            let id = rt.alloc_cell(me);
            (rt, id)
        });
        Self {
            data: std::cell::UnsafeCell::new(v),
            model,
        }
    }

    /// Shared (read) access to the cell's raw pointer.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some(h) = &self.model {
            if let Some(me) = op_thread(h) {
                h.0.with(me, |ex, me| match cell_access(ex, me, h.1, false) {
                    Ok(()) => Step::Done(()),
                    Err(msg) => Step::Fail(ViolationKind::DataRace, msg),
                });
            }
        }
        f(self.data.get())
    }

    /// Exclusive (write) access to the cell's raw pointer.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some(h) = &self.model {
            if let Some(me) = op_thread(h) {
                h.0.with(me, |ex, me| match cell_access(ex, me, h.1, true) {
                    Ok(()) => Step::Done(()),
                    Err(msg) => Step::Fail(ViolationKind::DataRace, msg),
                });
            }
        }
        f(self.data.get())
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

enum MutexImp<T> {
    Real(std::sync::Mutex<T>),
    Model {
        h: Handle,
        data: std::cell::UnsafeCell<T>,
    },
}

/// Model-aware drop-in for `std::sync::Mutex` (the subset the repo uses:
/// `lock`, guard `Deref`/`DerefMut`, condvar interop).
pub struct Mutex<T>(MutexImp<T>);

// SAFETY: the Real variant is std's Sync Mutex; the Model variant's
// `data` is only reachable through a guard, and the model runtime grants
// mutual exclusion (a single owner thread) before any guard exists, so
// aliasing rules match std's Mutex.
unsafe impl<T: Send> Sync for Mutex<T> {}
// SAFETY: sending the mutex moves the protected value between threads,
// which `T: Send` permits; the model handle is an Arc + index, both Send.
unsafe impl<T: Send> Send for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocking on drop is a model schedule point.
pub struct MutexGuard<'a, T> {
    /// `None` only transiently, while `Condvar::wait` owns the pieces.
    imp: Option<GuardImp<'a, T>>,
}

enum GuardImp<'a, T> {
    Real(std::sync::MutexGuard<'a, T>),
    Model(&'a Mutex<T>),
}

impl<T> Mutex<T> {
    /// Create the mutex; registers with the model when built inside an
    /// execution.
    pub fn new(v: T) -> Self {
        match current() {
            Some((rt, _)) => {
                let id = rt.alloc_mutex();
                Mutex(MutexImp::Model {
                    h: (rt, id),
                    data: std::cell::UnsafeCell::new(v),
                })
            }
            None => Mutex(MutexImp::Real(std::sync::Mutex::new(v))),
        }
    }

    /// Acquire the lock, blocking (in model time) while another virtual
    /// thread owns it. Never returns a poison error in the model.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.0 {
            MutexImp::Real(m) => match m.lock() {
                Ok(g) => Ok(MutexGuard {
                    imp: Some(GuardImp::Real(g)),
                }),
                Err(p) => Ok(MutexGuard {
                    imp: Some(GuardImp::Real(p.into_inner())),
                }),
            },
            MutexImp::Model { h, .. } => {
                if let Some(me) = op_thread(h) {
                    let id = h.1;
                    h.0.with(me, |ex, me| {
                        if ex.mutexes[id].owner.is_none() {
                            ex.mutexes[id].owner = Some(me);
                            ex.threads[me].clock.tick(me);
                            let mc = ex.mutexes[id].clock;
                            ex.threads[me].clock.join(&mc);
                            ex.note(me, "lock", id as u64);
                            Step::Done(())
                        } else {
                            Step::Block(BlockOn::Mutex(id))
                        }
                    });
                }
                Ok(MutexGuard {
                    imp: Some(GuardImp::Model(self)),
                })
            }
        }
    }
}

fn model_unlock<T>(m: &Mutex<T>) {
    let MutexImp::Model { h, .. } = &m.0 else {
        return;
    };
    if let Some(me) = op_thread(h) {
        let id = h.1;
        h.0.with(me, |ex, me| {
            ex.threads[me].clock.tick(me);
            let tc = ex.threads[me].clock;
            ex.mutexes[id].clock.join(&tc);
            ex.mutexes[id].owner = None;
            for t in ex.threads.iter_mut() {
                if t.run == Run::Blocked(BlockOn::Mutex(id)) {
                    t.run = Run::Ready;
                }
            }
            ex.note(me, "unlock", id as u64);
            Step::Done(())
        });
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(GuardImp::Model(m)) = self.imp.take() {
            model_unlock(m);
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.imp.as_ref().expect("guard in use") {
            GuardImp::Real(g) => g,
            GuardImp::Model(m) => {
                let MutexImp::Model { data, .. } = &m.0 else {
                    unreachable!("model guard over real mutex")
                };
                // SAFETY: this guard exists only while the model grants
                // this thread sole ownership of the mutex, so no other
                // reference to `data` can be live.
                unsafe { &*data.get() }
            }
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.imp.as_mut().expect("guard in use") {
            GuardImp::Real(g) => g,
            GuardImp::Model(m) => {
                let MutexImp::Model { data, .. } = &m.0 else {
                    unreachable!("model guard over real mutex")
                };
                // SAFETY: as in `deref` — model-granted exclusive
                // ownership for the guard's lifetime.
                unsafe { &mut *data.get() }
            }
        }
    }
}

enum CvImp {
    Real(std::sync::Condvar),
    Model(Handle),
}

/// Model-aware drop-in for `std::sync::Condvar` (`wait`, `notify_one`,
/// `notify_all`; no spurious wakeups are modeled).
pub struct Condvar(CvImp);

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create the condvar; registers with the model when built inside an
    /// execution.
    pub fn new() -> Self {
        match current() {
            Some((rt, _)) => {
                let id = rt.alloc_condvar();
                Condvar(CvImp::Model((rt, id)))
            }
            None => Condvar(CvImp::Real(std::sync::Condvar::new())),
        }
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let imp = guard.imp.take().expect("guard in use");
        match (&self.0, imp) {
            (CvImp::Real(cv), GuardImp::Real(g)) => match cv.wait(g) {
                Ok(g) => Ok(MutexGuard {
                    imp: Some(GuardImp::Real(g)),
                }),
                Err(p) => Ok(MutexGuard {
                    imp: Some(GuardImp::Real(p.into_inner())),
                }),
            },
            (CvImp::Model(h), GuardImp::Model(m)) => {
                let MutexImp::Model { h: mh, .. } = &m.0 else {
                    unreachable!("model guard over real mutex")
                };
                let (cv_id, mx_id) = (h.1, mh.1);
                if let Some(me) = op_thread(h) {
                    // Two stages inside one blocking op: release the
                    // mutex and enlist, then — after a notify makes us
                    // runnable — re-acquire the mutex.
                    let mut enlisted = false;
                    h.0.with(me, |ex, me| {
                        if !enlisted {
                            enlisted = true;
                            ex.threads[me].clock.tick(me);
                            let tc = ex.threads[me].clock;
                            ex.mutexes[mx_id].clock.join(&tc);
                            ex.mutexes[mx_id].owner = None;
                            for t in ex.threads.iter_mut() {
                                if t.run == Run::Blocked(BlockOn::Mutex(mx_id)) {
                                    t.run = Run::Ready;
                                }
                            }
                            ex.condvars[cv_id].waiters.push((me, mx_id));
                            ex.note(me, "cv_wait", cv_id as u64);
                            Step::Block(BlockOn::Condvar(cv_id))
                        } else if ex.mutexes[mx_id].owner.is_none() {
                            ex.mutexes[mx_id].owner = Some(me);
                            ex.threads[me].clock.tick(me);
                            let mc = ex.mutexes[mx_id].clock;
                            ex.threads[me].clock.join(&mc);
                            ex.note(me, "cv_wake", cv_id as u64);
                            Step::Done(())
                        } else {
                            Step::Block(BlockOn::Mutex(mx_id))
                        }
                    });
                }
                Ok(MutexGuard {
                    imp: Some(GuardImp::Model(m)),
                })
            }
            _ => panic!("interleave: condvar/mutex model-real mismatch"),
        }
    }

    /// Wake every waiter (each then re-acquires its mutex in model time).
    pub fn notify_all(&self) {
        self.notify(usize::MAX);
    }

    /// Wake the longest-waiting waiter, if any.
    pub fn notify_one(&self) {
        self.notify(1);
    }

    fn notify(&self, limit: usize) {
        match &self.0 {
            CvImp::Real(cv) => {
                if limit == 1 {
                    cv.notify_one()
                } else {
                    cv.notify_all()
                }
            }
            CvImp::Model(h) => {
                if let Some(me) = op_thread(h) {
                    let cv_id = h.1;
                    h.0.with(me, |ex, me| {
                        ex.threads[me].clock.tick(me);
                        let n = ex.condvars[cv_id].waiters.len().min(limit);
                        for _ in 0..n {
                            let (w, mx) = ex.condvars[cv_id].waiters.remove(0);
                            ex.threads[w].run = if ex.mutexes[mx].owner.is_none() {
                                Run::Ready
                            } else {
                                Run::Blocked(BlockOn::Mutex(mx))
                            };
                        }
                        ex.note(me, "notify", cv_id as u64);
                        Step::Done(())
                    });
                }
            }
        }
    }
}
