//! Virtual threads: spawn/join/yield inside a model execution.
//!
//! Model threads are real OS threads, but the runtime's single execution
//! token serializes them completely — see the [`crate::rt`] module docs.
//! `spawn` must be called from inside a [`crate::Checker::run`] closure;
//! there is deliberately no fallback to `std::thread::spawn`, because
//! code under test reaches threads only from its test harness, which is
//! always inside the model.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as OsMutex};

use crate::rt::{self, current, BlockOn, Run, Step, ViolationKind};
use crate::vclock::MAX_THREADS;

/// Handle to a spawned virtual thread; `join` blocks (in model time)
/// until it finishes and returns its result, mirroring
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    rt: Arc<rt::Rt>,
    tid: usize,
    slot: Arc<OsMutex<Option<T>>>,
}

/// Spawn a virtual thread running `f`. Panics when called outside a
/// model execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, me) = current().expect("interleave::thread::spawn outside a model execution");
    // Register the child: it starts Ready, with the parent's clock
    // (spawn is a release/acquire edge from parent to child).
    let tid = rt.with(me, |ex, me| {
        assert!(
            ex.threads.len() < MAX_THREADS,
            "interleave models at most {MAX_THREADS} threads per execution"
        );
        ex.threads[me].clock.tick(me);
        let clock = ex.threads[me].clock;
        let tid = ex.threads.len();
        ex.threads.push(rt::Th {
            run: Run::Ready,
            clock,
            seen: Vec::new(),
            final_clock: clock,
        });
        ex.note(me, "spawn", tid as u64);
        Step::Done(tid)
    });
    let slot: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let rt2 = Arc::clone(&rt);
    let os = std::thread::spawn(move || {
        rt::CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), tid)));
        // The closure parks itself at its first visible operation; any
        // pure prefix it runs early has no model-visible effects.
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        match result {
            Ok(v) => {
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                finish(&rt2, tid);
            }
            Err(payload) => {
                if payload.downcast_ref::<rt::Aborted>().is_none() {
                    let msg = rt::panic_message(&payload);
                    let mut ex = rt2.lock();
                    ex.record_failure(ViolationKind::Panic, msg);
                    drop(ex);
                    rt2.cv.notify_all();
                }
            }
        }
        rt::CURRENT.with(|c| *c.borrow_mut() = None);
    });
    rt.os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);
    JoinHandle { rt, tid, slot }
}

/// Mark `tid` finished, wake its joiners, and hand the token off.
fn finish(rt: &Arc<rt::Rt>, tid: usize) {
    let mut ex = rt.lock();
    loop {
        if ex.failed.is_some() || ex.done {
            return;
        }
        if ex.cur == tid {
            break;
        }
        ex = rt.cv.wait(ex).unwrap_or_else(|e| e.into_inner());
    }
    ex.threads[tid].clock.tick(tid);
    let fc = ex.threads[tid].clock;
    ex.threads[tid].final_clock = fc;
    ex.threads[tid].run = Run::Finished;
    for t in ex.threads.iter_mut() {
        if t.run == Run::Blocked(BlockOn::Join(tid)) {
            t.run = Run::Ready;
        }
    }
    ex.note(tid, "finish", tid as u64);
    // Forced hand-off. The driver is always alive (Ready in an op/drain
    // or Blocked on a join we may just have released), so an empty Ready
    // set here means every other thread is stuck: a deadlock.
    let n = ex.ready_ids(None);
    if n == 0 {
        let states: Vec<String> = ex
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("t{i}:{:?}", t.run))
            .collect();
        ex.record_failure(
            ViolationKind::Deadlock,
            format!(
                "thread finished into a blocked cohort — {}",
                states.join(" ")
            ),
        );
    } else {
        let idx = ex.choose(n);
        ex.cur = ex.scratch[idx];
    }
    drop(ex);
    rt.cv.notify_all();
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the thread to finish; joining is an
    /// acquire of everything the thread did.
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) = current().expect("interleave join outside a model execution");
        assert!(
            Arc::ptr_eq(&rt, &self.rt),
            "join of a handle from another execution"
        );
        let tid = self.tid;
        rt.with(me, |ex, me| {
            if ex.threads[tid].run == Run::Finished {
                let fc = ex.threads[tid].final_clock;
                ex.threads[me].clock.tick(me);
                ex.threads[me].clock.join(&fc);
                ex.note(me, "join", tid as u64);
                Step::Done(())
            } else {
                Step::Block(BlockOn::Join(tid))
            }
        });
        match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("interleave: joined thread produced no value")),
        }
    }
}

/// Hand the token to another runnable thread, if any — the model's
/// equivalent of `std::thread::yield_now`, and the required escape hatch
/// in spin/retry loops (a spinning thread that never yields would trip
/// the step limit).
pub fn yield_now() {
    if let Some((rt, me)) = current() {
        rt.yield_now(me);
    } else {
        std::thread::yield_now();
    }
}
