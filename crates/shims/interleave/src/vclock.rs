//! Fixed-width vector clocks for the happens-before partial order.
//!
//! The checker models at most [`MAX_THREADS`] virtual threads per
//! execution, so clocks are plain fixed arrays — no allocation on the
//! model's per-operation path, and componentwise `join`/`leq` compile to
//! a handful of unrolled compares.

/// Maximum virtual threads per explored execution (driver included).
/// Model tests are deliberately tiny (2–5 threads); the scheduler
/// asserts on spawn if this is exceeded.
pub const MAX_THREADS: usize = 8;

/// A vector clock: `c[t]` counts thread `t`'s operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub [u64; MAX_THREADS]);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn zero() -> Self {
        Self([0; MAX_THREADS])
    }

    /// Componentwise maximum: after `a.join(b)`, `a` dominates both.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (componentwise ≤).
    pub fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Advance this thread's own component by one operation.
    pub fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_dominates_and_leq_orders() {
        let mut a = VClock::zero();
        let mut b = VClock::zero();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a;
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.0[0], 2);
        assert_eq!(j.0[1], 1);
    }
}
