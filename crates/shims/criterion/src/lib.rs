//! A dependency-free, criterion-compatible micro-benchmark shim.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the real `criterion` cannot be vendored. This shim implements the small
//! API surface `benches/micro.rs` uses — `Criterion::benchmark_group`,
//! `bench_function`, `iter` / `iter_with_setup`, `Throughput`, `black_box`
//! and the `criterion_group!` / `criterion_main!` macros — on top of plain
//! `std::time::Instant` wall-clock timing.
//!
//! Methodology: each benchmark is warmed up (`WARMUP_ITERS` or 3 s cap),
//! then timed for `sample_size` batches. The median batch time is reported,
//! which is robust to scheduler noise in CI containers. Results print as
//! `group/name  time: ... (throughput)` so logs remain greppable.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, same contract as criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Accumulated measured time for the current batch.
    elapsed: Duration,
    /// Iterations to run per measurement batch.
    iters: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` excluding per-iteration `setup` cost.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of measurement batches (criterion default is 100; heavy
    /// end-to-end benches lower it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate: run single iterations until ~50 ms elapse to pick a
        // batch size that keeps each sample above timer resolution.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(50) && calib_iters < 10_000 {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 1,
            };
            f(&mut b);
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        // Target ~20 ms per measured batch, capped for slow benches.
        let iters = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let best = samples[0];

        let label = format!("{}/{}", self.name, name);
        let mut line = format!(
            "{label:<44} time: {} (best {})",
            fmt_time(median),
            fmt_time(best)
        );
        if let Some(t) = self.throughput {
            match t {
                Throughput::Elements(n) => {
                    let rate = n as f64 / median;
                    line.push_str(&format!("  thrpt: {} elem/s", fmt_rate(rate)));
                }
                Throughput::Bytes(n) => {
                    let rate = n as f64 / median;
                    line.push_str(&format!("  thrpt: {} B/s", fmt_rate(rate)));
                }
            }
        }
        println!("{line}");
        self.parent.results.push(BenchResult {
            name: label,
            median_secs: median,
        });
        self
    }

    /// End the group (printing is incremental; nothing else to flush).
    pub fn finish(&mut self) {}
}

/// One finished measurement (used by harnesses that inspect results).
pub struct BenchResult {
    /// `group/name`.
    pub name: String,
    /// Median per-iteration time in seconds.
    pub median_secs: f64,
}

/// Top-level benchmark driver, criterion-compatible.
#[derive(Default)]
pub struct Criterion {
    /// All results measured so far.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
            throughput: None,
            sample_size: 20,
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.3} s ")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Collect benchmark functions into a named group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running every group, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| {
            b.iter(|| (0..10u64).sum::<u64>());
        });
        g.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64; 8], |v| v.iter().sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn harness_measures_and_records() {
        let mut c = Criterion::default();
        trivial(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.median_secs > 0.0));
        assert!(c.results[0].name.starts_with("shim/"));
    }
}
