//! The Twitch viewer-engagement workload (paper §V-A).
//!
//! The paper uses a one-fifth subset of the Rappaz et al. live-streaming
//! dataset — ~4 M events compressed into a 1,000-second window — through a
//! seven-operator pipeline computing per-channel loyalty scores. The
//! dataset itself is not redistributable, so [`TwitchGen`] synthesizes a
//! trace with the same macro characteristics: Zipf-skewed channel
//! popularity, a heavy-tailed user activity distribution, diurnal-style
//! rate waves, and cumulative state reaching ≈500 MB at the 300-second
//! scale point.
//!
//! Pipeline (7 operators): `source → parse → sessionize(user) →
//! engagement(user) → loyalty(channel) → smooth → sink`, with the loyalty
//! aggregation as the scaling operator.

use simcore::time::SimTime;
use simcore::{DetRng, Zipf};
use streamflow::graph::{EdgeKind, JobBuilder};
use streamflow::instance::SourceGen;
use streamflow::operator::{KeyedAgg, KeyedTouch, ReKeyByValue, Relay};
use streamflow::{EngineConfig, OpId, World};

/// Synthetic Twitch-like trace generator.
pub struct TwitchGen {
    base_tps: f64,
    users: Zipf,
    channels: Zipf,
    rng: DetRng,
    total: u64,
    limit: u64,
    batch: u32,
}

impl TwitchGen {
    /// `events` total events over `duration_s` seconds (per source
    /// instance), matching the paper's 4 M-events / 1000 s compression.
    pub fn new(events: u64, duration_s: u64, seed: u64, batch: u32) -> Self {
        Self {
            base_tps: events as f64 / duration_s as f64,
            users: Zipf::new(100_000, 1.1),
            channels: Zipf::new(5_000, 1.0),
            rng: DetRng::seed(seed),
            total: 0,
            limit: events,
            batch,
        }
    }
}

impl SourceGen for TwitchGen {
    fn rate(&self, t: SimTime) -> f64 {
        // Diurnal-style wave: ±30% around the base rate, 200 s period.
        let phase = (t as f64 / 200_000_000.0) * std::f64::consts::TAU;
        self.base_tps * (1.0 + 0.3 * phase.sin())
    }
    fn next(&mut self, _t: SimTime) -> (u64, i64) {
        self.total += 1;
        let user = self.users.sample(&mut self.rng) as u64;
        let channel = self.channels.sample(&mut self.rng) as i64;
        (user, channel)
    }
    fn limit(&self) -> Option<u64> {
        Some(self.limit)
    }
    fn batch(&self) -> u32 {
        self.batch
    }
}

/// Parameters for the Twitch pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TwitchParams {
    /// Total events across sources (paper: ~4 M).
    pub events: u64,
    /// Trace duration the events are compressed into (paper: 1000 s).
    pub duration_s: u64,
    /// Loyalty-stage parallelism before scaling (paper: 8).
    pub parallelism: usize,
    /// Batch multiplicity.
    pub batch: u32,
}

impl Default for TwitchParams {
    fn default() -> Self {
        Self {
            events: 4_000_000,
            duration_s: 1_000,
            parallelism: 8,
            batch: 2,
        }
    }
}

/// Engine configuration for the Twitch runs.
pub fn twitch_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        max_key_groups: 128,
        seed,
        ..EngineConfig::default()
    }
}

/// Build the seven-operator Twitch pipeline. Returns the world and the
/// scaling operator (the loyalty aggregation, keyed by channel).
pub fn twitch(cfg: EngineConfig, p: &TwitchParams) -> (World, OpId) {
    let mut b = JobBuilder::new(cfg);
    let sources = 2;
    let per_src = p.events / sources as u64;
    let (dur, batch) = (p.duration_s, p.batch);
    let src = b.source(
        "events",
        sources,
        Box::new(move |i| Box::new(TwitchGen::new(per_src, dur, 0x7017C4 + i as u64, batch))),
    );
    let parse = b.operator("parse", 2, Box::new(|| Box::new(Relay { service: 20 })));
    // Per-user session state (small keys, many of them).
    let sessionize = b.operator(
        "sessionize",
        4,
        Box::new(|| {
            Box::new(KeyedTouch {
                service: 60,
                bytes_per_key: 256,
                bytes_per_record: 0,
            })
        }),
    );
    // Engagement scoring re-keys user → channel (the value field).
    let engagement = b.operator(
        "engagement",
        4,
        Box::new(|| Box::new(ReKeyByValue { service: 40 })),
    );
    // Loyalty aggregation: the scaling operator. State accumulates with the
    // stream (paper: ≈500 MB when scaling begins at 300 s):
    // 4K tps × 300 s × ~420 B ≈ 500 MB.
    let loyalty = b.operator(
        "loyalty",
        p.parallelism,
        Box::new(|| {
            Box::new(KeyedAgg {
                // The hottest channel draws ≈11% of traffic (Zipf 1.0), so
                // the instance owning it runs at ≈0.9 utilization at 8
                // instances and 4K tps — the bottleneck the paper scales.
                service: 1_000,
                bytes_per_key: 4_096,
                bytes_per_record: 410,
                emit_every: 1,
            })
        }),
    );
    let smooth = b.operator("smooth", 2, Box::new(|| Box::new(Relay { service: 15 })));
    let sink = b.sink("sink", 1);
    b.connect(src, parse, EdgeKind::Rebalance);
    b.connect(parse, sessionize, EdgeKind::Keyed);
    b.connect(sessionize, engagement, EdgeKind::Rebalance);
    b.connect(engagement, loyalty, EdgeKind::Keyed);
    b.connect(loyalty, smooth, EdgeKind::Rebalance);
    b.connect(smooth, sink, EdgeKind::Rebalance);
    let w = b.build();
    (w, loyalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;
    use streamflow::world::Sim;
    use streamflow::NoScale;

    #[test]
    fn pipeline_has_seven_operators() {
        let (w, loyalty) = twitch(twitch_engine_config(1), &TwitchParams::default());
        assert_eq!(w.ops.len(), 7);
        assert_eq!(w.ops[loyalty.0 as usize].name, "loyalty");
    }

    #[test]
    fn state_reaches_paper_scale_point() {
        let (w, loyalty) = twitch(twitch_engine_config(2), &TwitchParams::default());
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(300));
        let bytes = sim.world.op_state_bytes(loyalty);
        assert!(
            (300_000_000..800_000_000).contains(&bytes),
            "loyalty state at 300 s: {bytes} bytes"
        );
    }

    #[test]
    fn trace_is_skewed_toward_hot_channels() {
        let mut g = TwitchGen::new(100_000, 100, 3, 1);
        let mut hot = 0u64;
        for _ in 0..10_000 {
            let (_, ch) = g.next(0);
            if ch < 10 {
                hot += 1;
            }
        }
        // Zipf(1.0) over 5000 channels: top-10 get ~30% of traffic.
        assert!(hot > 1_500, "top-10 channels drew only {hot}/10000");
    }

    #[test]
    fn generator_respects_event_limit() {
        let (w, _) = twitch(
            twitch_engine_config(4),
            &TwitchParams {
                events: 50_000,
                duration_s: 10,
                parallelism: 2,
                batch: 1,
            },
        );
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(30));
        let emitted: u64 = sim
            .world
            .insts
            .iter()
            .filter_map(|i| i.source.as_ref())
            .map(|s| s.generated)
            .sum();
        assert!(emitted <= 50_000 + 100, "generated {emitted}");
        assert!(emitted >= 49_000, "generated {emitted}");
    }

    #[test]
    fn records_flow_through_all_stages() {
        let (w, _) = twitch(
            twitch_engine_config(5),
            &TwitchParams {
                events: 100_000,
                duration_s: 50,
                parallelism: 4,
                batch: 1,
            },
        );
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(20));
        assert!(sim.world.metrics.sink_records > 10_000);
        assert_eq!(sim.world.semantics.violations(), 0);
    }
}
