//! The custom 3-operator sensitivity workload (paper §V-A, §V-D):
//! `generator → keyed aggregator → sink`, with adjustable input rate,
//! total state size and Zipf workload skewness — "given that the major
//! overhead of on-the-fly scaling occurs only in the scaling operator and
//! its predecessors".
//!
//! The sensitivity analysis (Fig. 15) runs this on the cluster
//! configuration: 256 key-groups, 25→30 instances (migrating 229
//! key-groups), rates 5K–20K tps, state 5–30 GB, skew 0.0–1.5.

use simcore::time::SimTime;
use simcore::{DetRng, Zipf};
use streamflow::graph::{EdgeKind, JobBuilder};
use streamflow::instance::SourceGen;
use streamflow::operator::KeyedAgg;
use streamflow::{EngineConfig, OpId, World};

/// Zipf-keyed constant-rate generator.
pub struct CustomGen {
    tps: f64,
    keys: Zipf,
    rng: DetRng,
    batch: u32,
}

impl CustomGen {
    /// `tps` records/second over `universe` keys with Zipf `skew`.
    pub fn new(tps: f64, universe: usize, skew: f64, seed: u64, batch: u32) -> Self {
        Self {
            tps,
            keys: Zipf::new(universe, skew),
            rng: DetRng::seed(seed),
            batch,
        }
    }
}

impl SourceGen for CustomGen {
    fn rate(&self, _t: SimTime) -> f64 {
        self.tps
    }
    fn next(&mut self, _t: SimTime) -> (u64, i64) {
        (self.keys.sample(&mut self.rng) as u64, 1)
    }
    fn batch(&self) -> u32 {
        self.batch
    }
}

/// Parameters for the custom workload.
#[derive(Clone, Debug, PartialEq)]
pub struct CustomParams {
    /// Input rate, records/second (paper sweep: 5K–20K).
    pub tps: f64,
    /// Total nominal state size across the key universe, bytes
    /// (paper sweep: 5–30 GB).
    pub total_state_bytes: u64,
    /// Zipf skewness (paper sweep: 0.0, 0.5, 1.0, 1.5).
    pub skew: f64,
    /// Key universe size.
    pub universe: usize,
    /// Aggregator parallelism before scaling (paper: 25).
    pub parallelism: usize,
    /// Per-record service time at the aggregator.
    pub service: SimTime,
    /// Batch multiplicity.
    pub batch: u32,
}

impl Default for CustomParams {
    fn default() -> Self {
        Self {
            tps: 10_000.0,
            total_state_bytes: 10_000_000_000,
            skew: 0.0,
            universe: 200_000,
            parallelism: 25,
            service: 800,
            batch: 8,
        }
    }
}

/// Engine configuration for the Swarm-cluster experiments: 256 key-groups.
pub fn cluster_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        max_key_groups: 256,
        seed,
        ..EngineConfig::default()
    }
}

/// Build the custom job. State grows to `total_state_bytes` once the key
/// universe has been touched (bytes_per_key = total / universe).
pub fn custom(cfg: EngineConfig, p: &CustomParams) -> (World, OpId) {
    let mut b = JobBuilder::new(cfg);
    let sources = 2;
    let per_src = p.tps / sources as f64;
    let (universe, skew, batch) = (p.universe, p.skew, p.batch);
    let src = b.source(
        "gen",
        sources,
        Box::new(move |i| {
            Box::new(CustomGen::new(
                per_src,
                universe,
                skew,
                0xC057 + i as u64,
                batch,
            ))
        }),
    );
    let bytes_per_key = p.total_state_bytes / p.universe as u64;
    let service = p.service;
    let agg = b.operator(
        "agg",
        p.parallelism,
        Box::new(move || {
            Box::new(KeyedAgg {
                service,
                bytes_per_key,
                bytes_per_record: 0,
                emit_every: 1,
            })
        }),
    );
    let sink = b.sink("sink", 2);
    b.connect(src, agg, EdgeKind::Keyed);
    b.connect(agg, sink, EdgeKind::Rebalance);
    let w = b.build();
    (w, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;
    use streamflow::world::Sim;
    use streamflow::NoScale;

    #[test]
    fn skew_concentrates_load() {
        let mut uniform = CustomGen::new(100.0, 1000, 0.0, 1, 1);
        let mut skewed = CustomGen::new(100.0, 1000, 1.5, 1, 1);
        let head = |g: &mut CustomGen| {
            let mut n = 0;
            for _ in 0..10_000 {
                if g.next(0).0 < 10 {
                    n += 1;
                }
            }
            n
        };
        let hu = head(&mut uniform);
        let hs = head(&mut skewed);
        assert!(hs > hu * 5, "uniform head {hu}, skewed head {hs}");
    }

    #[test]
    fn state_grows_toward_target() {
        let p = CustomParams {
            tps: 20_000.0,
            total_state_bytes: 1_000_000_000,
            universe: 10_000,
            parallelism: 4,
            skew: 0.0,
            service: 100,
            batch: 4,
        };
        let (w, agg) = custom(cluster_engine_config(1), &p);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(30));
        let bytes = sim.world.op_state_bytes(agg);
        // Most of the 10K-key universe is touched after 600K records.
        assert!(bytes > 700_000_000, "state only {bytes} bytes");
        assert!(bytes <= 1_000_000_000);
    }

    #[test]
    fn paper_cluster_plan_moves_229_groups() {
        let p = CustomParams {
            parallelism: 25,
            tps: 1_000.0,
            batch: 1,
            ..Default::default()
        };
        let (mut w, agg) = custom(cluster_engine_config(2), &p);
        w.schedule_scale(secs(1), agg, 30);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(2));
        let plan = sim.world.scale.plan.as_ref().expect("plan");
        assert_eq!(plan.moves.len(), 229);
    }
}
