//! `workloads` — the three workload families from the paper's evaluation
//! (§V-A):
//!
//! * [`nexmark`] — NEXMark Q7 (sliding-window max, 20K tps, ≈800 MB state)
//!   and Q8 (windowed person⋈auction join, 1K tps, ≈3 GB state),
//! * [`twitch`] — a seven-operator viewer-engagement pipeline over a
//!   synthetic trace with the Rappaz-dataset macro-shape (~4 M events in
//!   1000 s, ≈500 MB of state at the scale point),
//! * [`custom`] — the configurable 3-operator sensitivity workload
//!   (rate × state size × Zipf skewness) used for Fig. 15.
//!
//! Each builder returns `(World, OpId)` where the `OpId` is the operator
//! the experiments rescale.

pub mod custom;
pub mod nexmark;
pub mod twitch;

pub use custom::{cluster_engine_config, custom, CustomParams};
pub use nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
pub use twitch::{twitch, twitch_engine_config, TwitchParams};
