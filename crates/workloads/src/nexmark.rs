//! NEXMark workloads: Queries 7 and 8 (the two queries the paper and its
//! related work evaluate, §V-A), with the paper's modification of using
//! sliding instead of tumbling windows for stable scaling behaviour.
//!
//! * **Q7** — highest bid per sliding window, keyed by auction: 20K tps,
//!   10 s window / 500 ms slide, ≈800 MB of window state across 128
//!   key-groups at 8 instances.
//! * **Q8** — new persons joining auctions within a window, keyed by
//!   person/seller: 1K tps, 40 s window / 5 s slide, ≈3 GB of state.

use simcore::time::{ms, secs, SimTime};
use simcore::{DetRng, Zipf};
use streamflow::graph::{EdgeKind, JobBuilder};
use streamflow::instance::SourceGen;
use streamflow::operator::{WindowAgg, WindowJoin};
use streamflow::window::Agg;
use streamflow::{EngineConfig, OpId, World};

/// Bid generator for Q7: bids over a pool of hot auctions.
pub struct BidGen {
    tps: f64,
    auctions: Zipf,
    rng: DetRng,
    batch: u32,
    price_base: i64,
}

impl BidGen {
    /// `tps` bids/second per source instance over `n_auctions` auctions,
    /// mildly skewed (real auction traffic concentrates on hot items).
    pub fn new(tps: f64, n_auctions: usize, seed: u64, batch: u32) -> Self {
        Self {
            tps,
            auctions: Zipf::new(n_auctions, 0.2),
            rng: DetRng::seed(seed),
            batch,
            price_base: 100,
        }
    }
}

impl SourceGen for BidGen {
    fn rate(&self, _t: SimTime) -> f64 {
        self.tps
    }
    fn next(&mut self, t: SimTime) -> (u64, i64) {
        let auction = self.auctions.sample(&mut self.rng) as u64;
        // Prices trend upward within an auction's lifetime.
        let price = self.price_base + (t / 1_000_000) as i64 + self.rng.below(50) as i64;
        (auction, price)
    }
    fn batch(&self) -> u32 {
        self.batch
    }
}

/// Person/auction event generator for Q8. Persons carry `value >= 0`,
/// auctions (by the same person key) `value < 0`.
pub struct PersonAuctionGen {
    tps: f64,
    persons: Zipf,
    rng: DetRng,
    auction_ratio: f64,
    batch: u32,
}

impl PersonAuctionGen {
    /// `tps` events/second, ~`auction_ratio` of which are auctions.
    pub fn new(tps: f64, n_persons: usize, auction_ratio: f64, seed: u64, batch: u32) -> Self {
        Self {
            tps,
            persons: Zipf::new(n_persons, 0.2),
            rng: DetRng::seed(seed),
            auction_ratio,
            batch,
        }
    }
}

impl SourceGen for PersonAuctionGen {
    fn rate(&self, _t: SimTime) -> f64 {
        self.tps
    }
    fn next(&mut self, _t: SimTime) -> (u64, i64) {
        let p = self.persons.sample(&mut self.rng) as u64;
        if self.rng.chance(self.auction_ratio) {
            (p, -1) // auction by person p
        } else {
            (p, 1) // person event
        }
    }
    fn batch(&self) -> u32 {
        self.batch
    }
}

/// Engine configuration matching the paper's single-machine deployment:
/// 128 key-groups, 1 Gbps, Flink-like buffers.
pub fn nexmark_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        max_key_groups: 128,
        seed,
        ..EngineConfig::default()
    }
}

/// Parameters for [`q7`].
#[derive(Clone, Debug, PartialEq)]
pub struct Q7Params {
    /// Total bids/second across source instances (paper: 20K).
    pub tps: f64,
    /// Window aggregator parallelism before scaling (paper: 8).
    pub parallelism: usize,
    /// Window size (paper: 10 s).
    pub window: SimTime,
    /// Slide (paper: 500 ms).
    pub slide: SimTime,
    /// Batch multiplicity for simulation efficiency.
    pub batch: u32,
}

impl Default for Q7Params {
    fn default() -> Self {
        Self {
            tps: 20_000.0,
            parallelism: 8,
            window: secs(10),
            slide: ms(500),
            batch: 4,
        }
    }
}

/// Build the Q7 job. Returns the world and the scaling operator (the
/// sliding-window maximum).
pub fn q7(cfg: EngineConfig, p: &Q7Params) -> (World, OpId) {
    let mut b = JobBuilder::new(cfg);
    let sources = 2;
    let per_src = p.tps / sources as f64;
    let batch = p.batch;
    let src = b.source(
        "bids",
        sources,
        Box::new(move |i| Box::new(BidGen::new(per_src, 4_000, 0x0B1D + i as u64, batch))),
    );
    // ~800 MB at steady state: tps * window_s * bytes_per_record.
    // 20K tps × 10 s = 200K buffered records → 4 KB each.
    let (window, slide) = (p.window, p.slide);
    let agg = b.operator(
        "window-max",
        p.parallelism,
        Box::new(move || Box::new(WindowAgg::new(window, slide, Agg::Max, 330, 4_000))),
    );
    let sink = b.sink("sink", 1);
    b.connect(src, agg, EdgeKind::Keyed);
    b.connect(agg, sink, EdgeKind::Rebalance);
    let w = b.build();
    (w, agg)
}

/// Parameters for [`q8`].
#[derive(Clone, Debug, PartialEq)]
pub struct Q8Params {
    /// Total events/second (paper: 1K).
    pub tps: f64,
    /// Join parallelism before scaling (paper: 8).
    pub parallelism: usize,
    /// Window size (paper: 40 s).
    pub window: SimTime,
    /// Batch multiplicity.
    pub batch: u32,
}

impl Default for Q8Params {
    fn default() -> Self {
        Self {
            tps: 1_000.0,
            parallelism: 8,
            window: secs(40),
            batch: 1,
        }
    }
}

/// Build the Q8 job. Returns the world and the scaling operator (the
/// windowed person⋈auction join).
pub fn q8(cfg: EngineConfig, p: &Q8Params) -> (World, OpId) {
    let mut b = JobBuilder::new(cfg);
    let per_src = p.tps / 2.0;
    let batch = p.batch;
    let persons = b.source(
        "persons",
        1,
        Box::new(move |i| {
            Box::new(PersonAuctionGen::new(
                per_src,
                20_000,
                0.0,
                0x0E01 + i as u64,
                batch,
            ))
        }),
    );
    let auctions = b.source(
        "auctions",
        1,
        Box::new(move |i| {
            Box::new(PersonAuctionGen::new(
                per_src,
                20_000,
                1.0,
                0x0E11 + i as u64,
                batch,
            ))
        }),
    );
    // ~3 GB: 1K tps × 40 s = 40K buffered elements → 75 KB each.
    let window = p.window;
    let join = b.operator(
        "window-join",
        p.parallelism,
        Box::new(move || {
            Box::new(WindowJoin {
                // ≈0.75 utilization at 8 instances and 1K tps — the paper's
                // Q8 containers (1 core, 3 GB of window state) ran hot.
                size: window,
                service: 6_000,
                bytes_per_record: 75_000,
            })
        }),
    );
    let sink = b.sink("sink", 1);
    b.connect(persons, join, EdgeKind::Keyed);
    b.connect(auctions, join, EdgeKind::Keyed);
    b.connect(join, sink, EdgeKind::Rebalance);
    let w = b.build();
    (w, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamflow::world::Sim;
    use streamflow::NoScale;

    #[test]
    fn q7_reaches_target_state_size() {
        let (w, agg) = q7(nexmark_engine_config(1), &Q7Params::default());
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(25));
        let bytes = sim.world.op_state_bytes(agg);
        // Steady state ≈ 800 MB (window full after 10 s; eviction bounds it).
        assert!(
            (500_000_000..1_200_000_000).contains(&bytes),
            "Q7 state {bytes} bytes"
        );
        assert!(sim.world.metrics.sink_records > 0, "windows fired");
    }

    #[test]
    fn q7_latency_is_stable_without_scaling() {
        let (w, _) = q7(nexmark_engine_config(2), &Q7Params::default());
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(30));
        // The paper's own No-Scale baseline averages ~1.3 s (Fig. 2): the
        // pre-scale system runs close to the bottleneck by design.
        let (_, mean) = sim.world.metrics.latency_stats_ms(secs(15), secs(30));
        assert!(mean < 2_000.0, "baseline Q7 latency {mean} ms");
    }

    #[test]
    fn q8_accumulates_large_state_and_joins() {
        let (w, join) = q8(nexmark_engine_config(3), &Q8Params::default());
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(60));
        let bytes = sim.world.op_state_bytes(join);
        assert!(
            (1_500_000_000..4_500_000_000).contains(&bytes),
            "Q8 state {bytes} bytes"
        );
        // Joins produce output.
        assert!(sim.world.metrics.sink_records > 0);
    }

    #[test]
    fn bid_gen_is_deterministic() {
        let mut a = BidGen::new(100.0, 100, 7, 1);
        let mut b = BidGen::new(100.0, 100, 7, 1);
        for t in 0..50 {
            assert_eq!(a.next(t), b.next(t));
        }
    }

    #[test]
    fn person_auction_gen_mixes_sides() {
        let mut g = PersonAuctionGen::new(100.0, 100, 0.5, 9, 1);
        let mut persons = 0;
        let mut auctions = 0;
        for _ in 0..1000 {
            let (_, v) = g.next(0);
            if v >= 0 {
                persons += 1;
            } else {
                auctions += 1;
            }
        }
        assert!(persons > 300 && auctions > 300, "{persons}/{auctions}");
    }
}
