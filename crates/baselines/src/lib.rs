//! `baselines` — every comparison mechanism from the paper's evaluation:
//!
//! * [`otfs_fluid`] / [`otfs_all_at_once`] — the generalized on-the-fly
//!   scaling framework (§II-B, Fig. 1): source-injected coupled barriers
//!   with alignment, fluid or all-at-once migration.
//! * [`megaphone`] — Megaphone (VLDB '19) as ported in §V-A: predecessor
//!   injection, coupled barriers, timestamp-driven naive division
//!   (sequential batches), fluid migration, 200-record buffer.
//! * [`meces::MecesPlugin`] — Meces (ATC '22): single synchronization,
//!   fetch-on-demand with hierarchical sub-key-groups, back-and-forth
//!   migration pathology included.
//! * [`unbound::UnboundPlugin`] — the correctness-free "Unbound" probe from
//!   the paper's Fig. 2 overhead-decomposition experiment.
//! * [`stop_restart::StopRestartPlugin`] — mainstream Stop-Checkpoint-Restart.
//!
//! The barrier-based baselines (OTFS, Megaphone) are expressed as
//! configurations of `drrs_core`'s [`FlexScaler`] — the same single-fork
//! methodology the paper uses for fair comparison.

pub mod meces;
pub mod stop_restart;
pub mod unbound;

pub use meces::MecesPlugin;
pub use stop_restart::StopRestartPlugin;
pub use unbound::UnboundPlugin;

use drrs_core::{FlexScaler, MechanismConfig};

/// Generalized OTFS with fluid migration (the paper's Fig. 2 baseline).
pub fn otfs_fluid() -> FlexScaler {
    FlexScaler::new(MechanismConfig::otfs_fluid())
}

/// Generalized OTFS with all-at-once migration.
pub fn otfs_all_at_once() -> FlexScaler {
    FlexScaler::new(MechanismConfig::otfs_all_at_once())
}

/// Megaphone with `batch_kgs` key-groups per sequential batch (1 = the
/// paper's key-group-granular configuration).
pub fn megaphone(batch_kgs: usize) -> FlexScaler {
    FlexScaler::new(MechanismConfig::megaphone(batch_kgs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;
    use streamflow::world::tests_support::tiny_job;
    use streamflow::world::Sim;
    use streamflow::EngineConfig;

    #[test]
    fn meces_completes_and_violates_order() {
        let mut cfg = EngineConfig::test();
        cfg.sub_group_fanout = 4; // hierarchical state organization
        let (mut w, agg) = tiny_job(cfg, 6_000.0, 512, 2);
        w.schedule_scale(secs(2), agg, 4);
        let mut sim = Sim::new(w, Box::new(MecesPlugin::new()));
        sim.run_until(secs(20));
        // All units settle at their destinations eventually.
        assert!(!sim.world.scale.in_progress, "Meces migration unfinished");
        let plan = sim.world.scale.plan.as_ref().expect("plan").clone();
        for m in &plan.moves {
            assert!(
                sim.world.insts[m.to.0 as usize].state.holds_group(m.kg),
                "{} not settled at {}",
                m.kg,
                m.to
            );
        }
        // Fetch conflicts: at least one unit moved more than once.
        let (avg, max) = sim.world.scale.metrics.migration_churn();
        assert!(avg >= 1.0);
        assert!(max >= 1, "churn: avg {avg}, max {max}");
    }

    #[test]
    fn meces_lowest_propagation_delay() {
        let run = |plugin: Box<dyn streamflow::ScalePlugin>| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 512, 2);
            w.schedule_scale(secs(2), agg, 4);
            let mut sim = Sim::new(w, plugin);
            sim.run_until(secs(15));
            sim.world.scale.metrics.cumulative_propagation_delay()
        };
        let meces = run(Box::<MecesPlugin>::default());
        let otfs = run(Box::new(otfs_fluid()));
        assert!(
            meces < otfs,
            "Meces Lp {meces} µs should undercut OTFS {otfs} µs"
        );
    }

    #[test]
    fn unbound_never_suspends_and_breaks_order() {
        // Overload (2 instances × 50 µs/record cap 40K/s, driven at 60K/s)
        // so the old instances hold standing queues when routing flips:
        // that is the window in which reordering manifests.
        let (mut w, agg) = tiny_job(EngineConfig::test(), 60_000.0, 512, 2);
        w.schedule_scale(secs(2), agg, 4);
        let mut sim = Sim::new(w, Box::new(UnboundPlugin::new()));
        sim.run_until(secs(10));
        let suspension: u64 = sim.world.ops[agg.0 as usize]
            .instances
            .iter()
            .map(|&i| sim.world.insts[i.0 as usize].suspension_as_of(sim.world.now()))
            .sum();
        assert_eq!(suspension, 0, "Unbound must eliminate Ls entirely");
        // Correctness is sacrificed: records of migrated keys processed at
        // both old and new instances out of order.
        assert!(
            sim.world.semantics.violations() > 0,
            "Unbound should violate execution order"
        );
    }

    #[test]
    fn unbound_conserves_total_counts() {
        // Universal keys split state across instances, but commutative
        // aggregates still conserve the total.
        let (mut w, agg) = tiny_job(EngineConfig::test(), 2_000.0, 128, 2);
        w.schedule_scale(secs(2), agg, 3);
        let mut sim = Sim::new(w, Box::new(UnboundPlugin::new()));
        sim.run_until(secs(6));
        let total: u64 = sim.world.ops[agg.0 as usize]
            .instances
            .iter()
            .map(|&i| {
                sim.world.insts[i.0 as usize]
                    .state
                    .snapshot_counts()
                    .values()
                    .sum::<u64>()
            })
            .sum();
        // Sink saw the same number of data records as were counted.
        assert!(total > 0);
        assert_eq!(total, sim.world.metrics.sink_records);
    }

    #[test]
    fn stop_restart_halts_then_completes() {
        let (mut w, agg) = tiny_job(EngineConfig::test(), 2_000.0, 256, 2);
        w.schedule_scale(secs(2), agg, 3);
        let mut sim = Sim::new(w, Box::new(StopRestartPlugin::new()));
        // During the halt no records reach the sink.
        sim.run_until(secs(3));
        let mid = sim.world.metrics.sink_records;
        sim.run_until(secs(4));
        assert_eq!(
            mid, sim.world.metrics.sink_records,
            "halted system delivered records"
        );
        sim.run_until(secs(20));
        assert!(!sim.world.scale.in_progress);
        assert!(sim.world.metrics.sink_records > mid, "system never resumed");
        assert_eq!(sim.world.semantics.violations(), 0);
        // Restart causes a visible latency cliff.
        let (peak, _) = sim.world.metrics.latency_stats_ms(secs(2), secs(15));
        assert!(
            peak > 5_000.0,
            "expected multi-second restart spike, saw {peak} ms"
        );
    }
}
