//! Meces (USENIX ATC '22): latency-efficient rescaling via prioritized state
//! migration, re-implemented as in the paper's §V-A port:
//!
//! * **single synchronization** — routing tables flip immediately at scale
//!   start (lowest propagation delay of all mechanisms),
//! * **fetch-on-demand** — an instance that needs absent state issues a
//!   priority fetch to the current holder; in-flight records at the *old*
//!   instance fetch state *back*, producing the back-and-forth migration
//!   pathology the paper quantifies (§V-B: on Q7 one sub-key-group moved
//!   6.25× on average, up to 46×),
//! * **hierarchical state organization** — sub-key-group granularity
//!   (configure `EngineConfig::sub_group_fanout > 1`),
//! * **background migration** — units not demanded are migrated gradually
//!   so scaling eventually completes,
//! * **no scheduling buffer** (per the paper: the buffer makes Meces fetch
//!   more aggressively and regress).
//!
//! Fetch-on-demand does not preserve execution semantics (paper §II-B): the
//! old and new instances may interleave a key's records out of emission
//! order. The semantics checker counts these violations.

use std::collections::{HashMap, HashSet};

use simcore::time::{ms, SimTime};
use streamflow::events::PriorityMsg;
use streamflow::ids::{ChannelId, InstId, KeyGroup, OpId, SubscaleId};
use streamflow::record::{Record, RecordKind, ScaleSignal, StreamElement};
use streamflow::scaling::{ScalePlan, ScalePlugin, Selection};
use streamflow::state::StateUnit;
use streamflow::world::World;

const TAG_BG: u64 = 11;
/// High bit marks a deferred-fetch timer; the low bits encode the request.
const TAG_FETCH: u64 = 1 << 63;

fn encode_fetch(kg: u16, sub: u8, requester: InstId) -> u64 {
    TAG_FETCH | ((kg as u64) << 40) | ((sub as u64) << 32) | requester.0 as u64
}

fn decode_fetch(tag: u64) -> (KeyGroup, u8, InstId) {
    (
        KeyGroup(((tag >> 40) & 0xFFFF) as u16),
        ((tag >> 32) & 0xFF) as u8,
        InstId((tag & 0xFFFF_FFFF) as u32),
    )
}

/// The Meces mechanism.
pub struct MecesPlugin {
    /// Period of the background migration pump.
    pub background_interval: SimTime,
    /// Units migrated per background pump.
    pub background_batch: usize,
    op: Option<OpId>,
    started: bool,
    done: bool,
    /// Final planned owner per unit.
    dest: HashMap<(u16, u8), InstId>,
    /// Outstanding fetch requests: (requester, unit).
    requested: HashSet<(InstId, (u16, u8))>,
    /// Records orphaned mid-quantum, replayed when their unit returns.
    orphans: HashMap<InstId, Vec<Record>>,
    /// When each unit last arrived at its current holder. A freshly arrived
    /// unit is held for [`Self::fetch_holdoff`] before a competing fetch may
    /// take it away, giving the holder time to drain its pending records —
    /// without this the hot units ping-pong forever without progress.
    arrived_at: HashMap<(u16, u8), SimTime>,
    /// How many times each unit has been fetched *back* by a non-final
    /// holder (the back-and-forth counter).
    fetch_back: HashMap<(u16, u8), u32>,
    timer_armed: bool,
    /// Minimum residence time before a unit can be fetched away again.
    pub fetch_holdoff: SimTime,
    /// After this many fetch-backs of a unit, the old instance stops
    /// pulling state and *forwards* its records to the new owner instead —
    /// Meces' record-forwarding path, which is where its execution-order
    /// guarantee breaks (paper §II-B).
    pub max_fetch_back: u32,
}

impl Default for MecesPlugin {
    fn default() -> Self {
        Self::new()
    }
}

impl MecesPlugin {
    /// Meces with the paper's configuration.
    pub fn new() -> Self {
        Self {
            background_interval: ms(40),
            background_batch: 1,
            op: None,
            started: false,
            done: false,
            dest: HashMap::new(),
            requested: HashSet::new(),
            orphans: HashMap::new(),
            arrived_at: HashMap::new(),
            fetch_back: HashMap::new(),
            timer_armed: false,
            fetch_holdoff: ms(100),
            max_fetch_back: 6,
        }
    }

    /// Units (kg, sub) of a key under the world's hierarchy config.
    fn unit_of(w: &World, inst: InstId, key: u64) -> (KeyGroup, u8) {
        let kg = w.kg_of(key);
        let sub = w.insts[inst.0 as usize].state.sub_of(key);
        (kg, sub)
    }

    fn issue_fetch(&mut self, w: &mut World, requester: InstId, kg: KeyGroup, sub: u8) {
        let unit = (kg.0, sub);
        if self.requested.contains(&(requester, unit)) {
            return;
        }
        let Some(&(holder, in_transit)) = w.scale.unit_loc.get(&unit) else {
            return;
        };
        if in_transit.is_some() || holder == requester {
            return; // already on the move (or arriving here): wait
        }
        if self.dest.get(&unit) != Some(&requester) {
            // A non-final holder pulling state back: back-and-forth.
            *self.fetch_back.entry(unit).or_insert(0) += 1;
        }
        self.requested.insert((requester, unit));
        w.send_priority(holder, PriorityMsg::Fetch { kg, sub, requester });
    }

    /// May `inst` still pull this unit back, or must it forward records?
    fn may_fetch_back(&self, inst: InstId, unit: (u16, u8)) -> bool {
        self.dest.get(&unit) == Some(&inst)
            || self.fetch_back.get(&unit).copied().unwrap_or(0) < self.max_fetch_back
    }

    fn replay_orphans(&mut self, w: &mut World, inst: InstId) {
        let Some(buf) = self.orphans.get_mut(&inst) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let pending = std::mem::take(buf);
        let mut still = Vec::new();
        for rec in pending {
            let (kg, sub) = Self::unit_of(w, inst, rec.key);
            if w.insts[inst.0 as usize].state.holds(kg, sub) {
                w.apply_record_basic(inst, rec);
            } else {
                still.push(rec);
            }
        }
        for rec in &still {
            let (kg, sub) = Self::unit_of(w, inst, rec.key);
            self.issue_fetch(w, inst, kg, sub);
        }
        self.orphans.insert(inst, still);
    }

    fn background_pump(&mut self, w: &mut World) {
        let mut moved = 0;
        #[allow(clippy::type_complexity)]
        let mut entries: Vec<((u16, u8), (InstId, Option<InstId>))> =
            w.scale.unit_loc.iter().map(|(&u, &l)| (u, l)).collect();
        // Canonical order: map iteration order must never pick which units
        // migrate this pump (same seed ⇒ same run, the repo's determinism
        // invariant).
        entries.sort_unstable_by_key(|&(u, _)| u);
        for (unit, (holder, transit)) in entries {
            if moved >= self.background_batch {
                break;
            }
            if transit.is_some() {
                continue;
            }
            let Some(&dest) = self.dest.get(&unit) else {
                continue;
            };
            if holder == dest {
                continue;
            }
            if w.migrate_unit(holder, dest, KeyGroup(unit.0), unit.1, SubscaleId(0)) {
                moved += 1;
            }
        }
    }

    fn serve_fetch(
        &mut self,
        w: &mut World,
        inst: InstId,
        kg: KeyGroup,
        sub: u8,
        requester: InstId,
    ) {
        // Serve the fetch if we still hold the unit; otherwise the requester
        // re-fetches when it observes the next install. A unit that only
        // just arrived is held briefly so the holder can make progress.
        if !w.insts[inst.0 as usize].state.holds(kg, sub) {
            return;
        }
        let now = w.now();
        let arrived = self.arrived_at.get(&(kg.0, sub)).copied().unwrap_or(0);
        let release_at = arrived + self.fetch_holdoff;
        if now < release_at {
            w.schedule_plugin(release_at - now, encode_fetch(kg.0, sub, requester));
            return;
        }
        w.migrate_unit(inst, requester, kg, sub, SubscaleId(0));
    }

    fn check_done(&mut self, w: &mut World) {
        if self.done || !self.started {
            return;
        }
        let settled = self.dest.iter().all(|(u, &d)| {
            w.scale
                .unit_loc
                .get(u)
                .map(|&(h, t)| h == d && t.is_none())
                .unwrap_or(false)
        });
        let orphans_empty = self.orphans.values().all(|v| v.is_empty());
        if settled && orphans_empty {
            self.done = true;
        }
    }
}

impl ScalePlugin for MecesPlugin {
    fn name(&self) -> &'static str {
        "Meces"
    }

    fn active(&self) -> bool {
        self.started && !self.done
    }

    fn on_scale_start(&mut self, w: &mut World, plan: &ScalePlan) {
        self.op = Some(plan.op);
        self.started = true;
        self.done = false;
        let now = w.now();
        // Single synchronization: flip every predecessor's routing at once.
        let kgs: Vec<KeyGroup> = plan.moves.iter().map(|m| m.kg).collect();
        for pred in w.predecessors(plan.op).to_vec() {
            for m in &plan.moves {
                w.reroute_groups(plan.op, pred, &[m.kg], m.to);
            }
        }
        let _ = kgs;
        w.scale.metrics.injected.insert(SubscaleId(0), now);
        let fanout = w.cfg.sub_group_fanout.max(1);
        for m in &plan.moves {
            for s in 0..fanout {
                self.dest.insert((m.kg.0, s), m.to);
                w.scale.metrics.unit_injected.insert((m.kg.0, s), now);
            }
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let t = self.background_interval;
            w.schedule_plugin(t, TAG_BG);
        }
    }

    fn on_signal(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _s: ScaleSignal) {}

    fn on_control(&mut self, w: &mut World, tag: u64) {
        if tag & TAG_FETCH != 0 {
            // A deferred fetch matured: serve it if we still hold the unit.
            let (kg, sub, requester) = decode_fetch(tag);
            if let Some(&(holder, transit)) = w.scale.unit_loc.get(&(kg.0, sub)) {
                if transit.is_none() && holder != requester {
                    self.serve_fetch(w, holder, kg, sub, requester);
                }
            }
            return;
        }
        if tag != TAG_BG {
            return;
        }
        if self.done {
            self.timer_armed = false;
            return;
        }
        self.background_pump(w);
        self.check_done(w);
        if !self.done {
            let t = self.background_interval;
            w.schedule_plugin(t, TAG_BG);
        } else {
            self.timer_armed = false;
        }
    }

    fn on_fetch(&mut self, w: &mut World, inst: InstId, kg: KeyGroup, sub: u8, requester: InstId) {
        self.serve_fetch(w, inst, kg, sub, requester);
    }

    fn on_chunk(
        &mut self,
        w: &mut World,
        inst: InstId,
        unit: StateUnit,
        _ss: SubscaleId,
        _from: InstId,
    ) {
        let key = (unit.kg.0, unit.sub);
        self.arrived_at.insert(key, w.now());
        w.install_unit(inst, unit, true);
        self.requested.retain(|&(_, u)| u != key);
        self.replay_orphans(w, inst);
        // Wake every scaling-operator instance: suspended peers may now
        // re-issue fetches for units that were in transit.
        if let Some(op) = self.op {
            for i in w.ops[op.0 as usize].instances.clone() {
                w.wake(i);
            }
        }
        self.check_done(w);
    }

    fn admit(&mut self, w: &mut World, inst: InstId, _ch: ChannelId, rec: &Record) -> bool {
        if !self.active() || rec.kind == RecordKind::Marker {
            return true;
        }
        if self.op != Some(w.insts[inst.0 as usize].op) {
            return true;
        }
        let (kg, sub) = Self::unit_of(w, inst, rec.key);
        if w.insts[inst.0 as usize].state.holds(kg, sub) {
            return true;
        }
        if self.dest.contains_key(&(kg.0, sub)) {
            // Fetch-on-demand, then suspend until it lands.
            self.issue_fetch(w, inst, kg, sub);
            false
        } else {
            true // not part of the scale: must be a non-moving group
        }
    }

    fn selects(&self, w: &World, inst: InstId) -> bool {
        self.active() && self.op == Some(w.insts[inst.0 as usize].op)
    }

    /// Active-channel selection (no scheduling buffer, per the paper), with
    /// Meces' record-forwarding path for units that exhausted their
    /// fetch-back budget.
    // See FlexScaler::select: the peek borrow must not span the body.
    #[allow(clippy::while_let_loop)]
    fn select(&mut self, w: &mut World, inst: InstId) -> Selection {
        let (n, start) = {
            let i = &w.insts[inst.0 as usize];
            (i.in_channels.len(), i.active_ch)
        };
        if n == 0 {
            return Selection::Idle;
        }
        for k in 0..n {
            let idx = (start + k) % n;
            let ch = w.insts[inst.0 as usize].in_channels[idx];
            if w.insts[inst.0 as usize].blocked_channels.contains(&ch) {
                continue;
            }
            loop {
                // Copy the classification fields out of the peek so the
                // arena borrow ends before `w` is mutated below.
                let head = w
                    .chan_front(ch)
                    .map(|e| e.as_record().map(|r| (r.kind, r.key)));
                let Some(head) = head else {
                    break;
                };
                match head {
                    Some((kind, key)) => {
                        w.insts[inst.0 as usize].active_ch = idx;
                        if kind == RecordKind::Marker {
                            let mut shim = MecesAdmit(self);
                            return w.build_run(&mut shim, inst, ch);
                        }
                        let (kg, sub) = Self::unit_of(w, inst, key);
                        if w.insts[inst.0 as usize].state.holds(kg, sub) {
                            let mut shim = MecesAdmit(self);
                            return w.build_run(&mut shim, inst, ch);
                        }
                        if self.dest.contains_key(&(kg.0, sub)) {
                            if self.may_fetch_back(inst, (kg.0, sub)) {
                                self.issue_fetch(w, inst, kg, sub);
                                return Selection::Suspend;
                            }
                            // Forward to the owner (order no longer
                            // guaranteed — the Meces semantics gap).
                            let dest = self.dest[&(kg.0, sub)];
                            let Some(StreamElement::Record(rec)) = w.chan_pop(ch) else {
                                unreachable!("front was a record")
                            };
                            w.send_priority(
                                dest,
                                PriorityMsg::ReroutedRecords {
                                    from: inst,
                                    records: vec![rec],
                                },
                            );
                            continue;
                        }
                        return Selection::Suspend;
                    }
                    None => {
                        w.insts[inst.0 as usize].active_ch = idx;
                        let elem = w.chan_pop(ch).expect("non-empty");
                        return Selection::Control(ch, elem);
                    }
                }
            }
        }
        Selection::Idle
    }

    fn on_rerouted_records(
        &mut self,
        w: &mut World,
        inst: InstId,
        _from: InstId,
        records: Vec<Record>,
    ) {
        for rec in records {
            let (kg, sub) = Self::unit_of(w, inst, rec.key);
            if w.insts[inst.0 as usize].state.holds(kg, sub) {
                // Applied out-of-band relative to the instance's own queue:
                // this is where per-key order can break.
                w.apply_record_basic(inst, rec);
            } else {
                self.issue_fetch(w, inst, kg, sub);
                self.orphans.entry(inst).or_default().push(rec);
            }
        }
        w.wake(inst);
    }

    fn on_orphan_record(&mut self, w: &mut World, inst: InstId, rec: &Record) -> bool {
        // The unit left between admission and application.
        let (kg, sub) = Self::unit_of(w, inst, rec.key);
        if self.may_fetch_back(inst, (kg.0, sub)) {
            // Buffer and fetch the state back — the back-and-forth path.
            self.orphans.entry(inst).or_default().push(rec.clone());
            self.issue_fetch(w, inst, kg, sub);
        } else if let Some(&dest) = self.dest.get(&(kg.0, sub)) {
            w.send_priority(
                dest,
                PriorityMsg::ReroutedRecords {
                    from: inst,
                    records: vec![rec.clone()],
                },
            );
        }
        true
    }
}

/// Admission shim for quantum building: process only locally held units.
struct MecesAdmit<'a>(#[allow(dead_code)] &'a mut MecesPlugin);

impl ScalePlugin for MecesAdmit<'_> {
    fn name(&self) -> &'static str {
        "Meces"
    }
    fn on_scale_start(&mut self, _w: &mut World, _p: &ScalePlan) {}
    fn on_signal(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _s: ScaleSignal) {}
    fn on_chunk(&mut self, _w: &mut World, _i: InstId, _u: StateUnit, _s: SubscaleId, _f: InstId) {}
    fn admit(&mut self, w: &mut World, inst: InstId, _ch: ChannelId, rec: &Record) -> bool {
        let (kg, sub) = MecesPlugin::unit_of(w, inst, rec.key);
        w.insts[inst.0 as usize].state.holds(kg, sub)
    }
}
