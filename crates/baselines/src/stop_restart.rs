//! Stop-Checkpoint-Restart: the mainstream-SPE scaling mechanism the paper
//! argues against (§I, §II-A). The whole job halts, a global checkpoint of
//! all state is taken, the job restarts under the new configuration from
//! that checkpoint, and the Kafka backlog is replayed — a latency cliff
//! proportional to total state size.

use simcore::time::SimTime;
use streamflow::ids::{ChannelId, InstId, OpId, SubscaleId};
use streamflow::record::{Record, ScaleSignal};
use streamflow::scaling::{ScalePlan, ScalePlugin};
use streamflow::state::StateUnit;
use streamflow::world::World;

const TAG_RESUME: u64 = 21;

/// The Stop-Checkpoint-Restart mechanism.
pub struct StopRestartPlugin {
    /// Fixed restart overhead on top of checkpoint write + restore
    /// (JVM/container restart, task re-scheduling).
    pub restart_overhead: SimTime,
    op: Option<OpId>,
    plan: Option<ScalePlan>,
    started: bool,
    done: bool,
}

impl Default for StopRestartPlugin {
    fn default() -> Self {
        Self::new()
    }
}

impl StopRestartPlugin {
    /// With a 5-second fixed restart overhead.
    pub fn new() -> Self {
        Self {
            restart_overhead: 5_000_000,
            op: None,
            plan: None,
            started: false,
            done: false,
        }
    }
}

impl ScalePlugin for StopRestartPlugin {
    fn name(&self) -> &'static str {
        "Stop-Restart"
    }

    fn active(&self) -> bool {
        self.started && !self.done
    }

    fn on_scale_start(&mut self, w: &mut World, plan: &ScalePlan) {
        self.op = Some(plan.op);
        self.plan = Some(plan.clone());
        self.started = true;
        self.done = false;
        let now = w.now();
        w.scale.metrics.injected.insert(SubscaleId(0), now);
        let fanout = w.cfg.sub_group_fanout.max(1);
        for m in &plan.moves {
            for s in 0..fanout {
                w.scale.metrics.unit_injected.insert((m.kg.0, s), now);
            }
        }
        // Global halt, then checkpoint *all* operators' state (the paper's
        // point: even non-scaling operators pay), write + restore.
        w.halt_all();
        let total_bytes: u64 = w.insts.iter().map(|i| i.state.total_bytes()).sum();
        let ckpt = (total_bytes as f64 / w.cfg.ser_bytes_per_us).ceil() as SimTime;
        let restore = ckpt; // read + deserialize symmetric
        let dur = ckpt + restore + self.restart_overhead;
        w.schedule_plugin(dur, TAG_RESUME);
    }

    fn on_control(&mut self, w: &mut World, tag: u64) {
        if tag != TAG_RESUME || self.done {
            return;
        }
        let plan = self.plan.clone().expect("resume after start");
        // Restore = direct installation at the new owners (state comes from
        // the checkpoint store, not the old instances' memory).
        for pred in w.predecessors(plan.op).to_vec() {
            for m in &plan.moves {
                w.reroute_groups(plan.op, pred, &[m.kg], m.to);
            }
        }
        for m in &plan.moves {
            let units = w.insts[m.from.0 as usize].state.extract_group(m.kg);
            for u in units {
                w.install_unit(m.to, u, true);
            }
        }
        self.done = true;
        w.resume_all();
    }

    fn on_signal(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _s: ScaleSignal) {}
    fn on_chunk(
        &mut self,
        w: &mut World,
        inst: InstId,
        unit: StateUnit,
        _ss: SubscaleId,
        _f: InstId,
    ) {
        w.install_unit(inst, unit, true);
    }
    fn admit(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _r: &Record) -> bool {
        true
    }
}
