//! Unbound (paper §II-B): the "extreme" correctness-free scaling solution
//! used to validate the overhead hypothesis `L = Lp + Ls + Ld + Lo`.
//!
//! Unbound updates routing tables and triggers state migration
//! independently (no signals → no `Lp`), and converts record keys into
//! "universal keys" so any local state can process any record (no
//! suspensions → no `Ls`, and `Ld` never manifests as latency). Its output
//! is **not** equivalent to a non-scaled execution — the semantics checker
//! is expected to flag violations, which `fig02` reports.

use streamflow::ids::{ChannelId, InstId, OpId, SubscaleId};
use streamflow::record::{Record, ScaleSignal};
use streamflow::scaling::{ScalePlan, ScalePlugin};
use streamflow::state::StateUnit;
use streamflow::world::World;

/// The Unbound pseudo-mechanism.
#[derive(Default)]
pub struct UnboundPlugin {
    op: Option<OpId>,
    started: bool,
}

impl UnboundPlugin {
    /// Create the mechanism.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ScalePlugin for UnboundPlugin {
    fn name(&self) -> &'static str {
        "Unbound"
    }

    fn active(&self) -> bool {
        false // never interferes with input selection
    }

    fn on_scale_start(&mut self, w: &mut World, plan: &ScalePlan) {
        self.op = Some(plan.op);
        self.started = true;
        let now = w.now();
        w.scale.metrics.injected.insert(SubscaleId(0), now);
        let fanout = w.cfg.sub_group_fanout.max(1);
        // Independent routing update + migration trigger, no signals.
        for pred in w.predecessors(plan.op).to_vec() {
            for m in &plan.moves {
                w.reroute_groups(plan.op, pred, &[m.kg], m.to);
            }
        }
        for m in &plan.moves {
            for s in 0..fanout {
                w.scale.metrics.unit_injected.insert((m.kg.0, s), now);
            }
            w.migrate_group(m.from, m.to, m.kg, SubscaleId(0));
        }
    }

    fn on_signal(&mut self, _w: &mut World, _i: InstId, _c: ChannelId, _s: ScaleSignal) {}

    fn on_chunk(
        &mut self,
        w: &mut World,
        inst: InstId,
        unit: StateUnit,
        _ss: SubscaleId,
        _from: InstId,
    ) {
        // Merge into whatever local state exists: the instance may already
        // have created a universal-key group for these keys.
        let kg = unit.kg;
        if w.insts[inst.0 as usize].state.holds(kg, unit.sub) {
            // Fold entries into the existing group (commutative merge).
            let bytes = unit.state.nominal_bytes;
            let some_key = unit.state.entries.keys().next().copied();
            for (k, v) in unit.state.entries {
                let slot = w.insts[inst.0 as usize]
                    .state
                    .entry_or(kg, k, || zero_like(&v));
                merge_value(slot, &v);
            }
            if let Some(k) = some_key {
                w.insts[inst.0 as usize]
                    .state
                    .add_bytes(kg, k, bytes as i64);
            }
            w.wake(inst);
        } else {
            w.install_unit(inst, unit, true);
        }
    }

    fn admit(&mut self, w: &mut World, inst: InstId, _ch: ChannelId, rec: &Record) -> bool {
        // Universal keys: fabricate local state if it is missing.
        if self.started && self.op == Some(w.insts[inst.0 as usize].op) {
            let kg = w.kg_of(rec.key);
            if !w.insts[inst.0 as usize].state.holds_group(kg) {
                w.insts[inst.0 as usize].state.ensure_group(kg);
            }
        }
        true
    }

    fn on_orphan_record(&mut self, w: &mut World, inst: InstId, rec: &Record) -> bool {
        // Mid-quantum extraction: process against fresh universal state.
        let kg = w.kg_of(rec.key);
        w.insts[inst.0 as usize].state.ensure_group(kg);
        w.apply_record_basic(inst, rec.clone());
        true
    }
}

fn zero_like(v: &streamflow::state::StateValue) -> streamflow::state::StateValue {
    use streamflow::state::StateValue as SV;
    match v {
        SV::Count(_) => SV::Count(0),
        SV::Sum { .. } => SV::Sum { count: 0, sum: 0 },
        SV::Panes(_) => SV::Panes(Default::default()),
        SV::Lists(..) => SV::Lists(Vec::new(), Vec::new()),
    }
}

fn merge_value(acc: &mut streamflow::state::StateValue, v: &streamflow::state::StateValue) {
    use streamflow::state::StateValue as SV;
    match (acc, v) {
        (SV::Count(a), SV::Count(b)) => *a += b,
        (SV::Sum { count, sum }, SV::Sum { count: c2, sum: s2 }) => {
            *count += c2;
            *sum += s2;
        }
        (SV::Lists(a1, b1), SV::Lists(a2, b2)) => {
            a1.extend_from_slice(a2);
            b1.extend_from_slice(b2);
        }
        // Window panes would need pane-wise merging; Unbound is only run on
        // aggregation workloads in the paper's Fig. 2 methodology.
        _ => {}
    }
}
