//! Measurement containers used by the experiment harnesses: timestamped
//! series (latency over time, throughput per second), histograms, and
//! summary statistics (mean / peak / percentiles / stddev across runs).

use crate::time::{SimTime, MICROS_PER_SEC};

/// A `(time, value)` series, e.g. end-to-end latency samples at sink arrival
/// times, or cumulative suspension over time.
#[derive(Default, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Times need not be strictly increasing (multiple
    /// sinks may record at the same instant) but should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Samples with `lo <= t < hi`.
    pub fn window(&self, lo: SimTime, hi: SimTime) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .filter(move |&(t, _)| t >= lo && t < hi)
    }

    /// Maximum value in `[lo, hi)`, or `None` if no samples fall there.
    pub fn peak(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        self.window(lo, hi).map(|(_, v)| v).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Mean value in `[lo, hi)`, or `None` if no samples fall there.
    pub fn mean(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        let mut n = 0u64;
        let mut sum = 0.0;
        for (_, v) in self.window(lo, hi) {
            n += 1;
            sum += v;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Bucket the series into per-second averages (used to render the
    /// latency-over-time and throughput-over-time figures as text).
    pub fn per_second_mean(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64, u64)> = Vec::new();
        for &(t, v) in &self.points {
            let s = t / MICROS_PER_SEC;
            match out.last_mut() {
                Some((sec, sum, n)) if *sec == s => {
                    *sum += v;
                    *n += 1;
                }
                _ => out.push((s, v, 1)),
            }
        }
        out.into_iter()
            .map(|(s, sum, n)| (s, sum / n as f64))
            .collect()
    }

    /// The earliest time `t0 >= from` such that every sample in
    /// `[t0, t0 + hold)` is `<= limit`; used by the paper's scaling-period
    /// detector ("latency keeps within 110% of pre-scaling level for 100 s").
    ///
    /// Returns `None` if the series never stabilizes within its extent.
    pub fn stabilize_time(&self, from: SimTime, limit: f64, hold: SimTime) -> Option<SimTime> {
        let pts: Vec<(SimTime, f64)> = self
            .points
            .iter()
            .copied()
            .filter(|&(t, _)| t >= from)
            .collect();
        if pts.is_empty() {
            return None;
        }
        let end = pts.last().expect("non-empty").0;
        let mut candidate: Option<SimTime> = None;
        for &(t, v) in &pts {
            if v > limit {
                candidate = None;
            } else if candidate.is_none() {
                candidate = Some(t);
            }
            if let Some(c) = candidate {
                if t >= c + hold {
                    return Some(c);
                }
            }
        }
        // A trailing quiet stretch that reaches the end of the data also
        // counts if it is long enough.
        candidate.filter(|&c| end >= c + hold)
    }
}

/// Simple sample-set summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summarize a slice of samples. Empty input yields all zeros.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Self {
            n: xs.len() as u64,
            mean,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std: var.sqrt(),
        }
    }
}

/// A fixed-width log-linear histogram for latency distributions.
#[derive(Clone)]
pub struct Histogram {
    /// Bucket upper bounds (µs).
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Buckets: 1µs..~17min in ~x1.5 steps.
    pub fn new() -> Self {
        let mut bounds = vec![1u64];
        while *bounds.last().expect("seeded") < 1_000_000_000 {
            let last = *bounds.last().expect("seeded");
            bounds.push((last * 3 / 2).max(last + 1));
        }
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Record one observation (µs).
    pub fn record(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        let i = i.min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (returns a bucket upper bound), `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return Some(self.bounds[i]);
            }
        }
        self.bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROS_PER_SEC as SEC;

    #[test]
    fn series_window_peak_mean() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(20, 5.0);
        s.push(30, 3.0);
        assert_eq!(s.peak(0, 25), Some(5.0));
        assert_eq!(s.peak(25, 100), Some(3.0));
        assert_eq!(s.mean(0, 100), Some(3.0));
        assert_eq!(s.mean(100, 200), None);
    }

    #[test]
    fn per_second_buckets() {
        let mut s = TimeSeries::new();
        s.push(0, 2.0);
        s.push(SEC / 2, 4.0);
        s.push(SEC + 1, 10.0);
        let b = s.per_second_mean();
        assert_eq!(b, vec![(0, 3.0), (1, 10.0)]);
    }

    #[test]
    fn stabilize_detects_quiet_stretch() {
        let mut s = TimeSeries::new();
        // Noisy until t=100s, quiet afterwards until 260s.
        for i in 0..100 {
            s.push(i * SEC, 100.0);
        }
        for i in 100..260 {
            s.push(i * SEC, 1.0);
        }
        let t = s.stabilize_time(0, 10.0, 100 * SEC);
        assert_eq!(t, Some(100 * SEC));
    }

    #[test]
    fn stabilize_rejects_short_quiet() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(i * SEC, 100.0);
        }
        for i in 10..20 {
            s.push(i * SEC, 1.0);
        }
        assert_eq!(s.stabilize_time(0, 10.0, 100 * SEC), None);
    }

    #[test]
    fn stabilize_resets_on_spike() {
        let mut s = TimeSeries::new();
        for i in 0..50 {
            s.push(i * SEC, 1.0);
        }
        s.push(50 * SEC, 100.0); // spike resets the candidate
        for i in 51..200 {
            s.push(i * SEC, 1.0);
        }
        assert_eq!(s.stabilize_time(0, 10.0, 100 * SEC), Some(51 * SEC));
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5).expect("data");
        let q99 = h.quantile(0.99).expect("data");
        assert!((400..=800).contains(&q50), "q50={q50}");
        assert!(q99 >= 900, "q99={q99}");
        assert!(h.quantile(0.0).is_some());
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }
}
