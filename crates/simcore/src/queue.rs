//! The future-event list.
//!
//! A binary-heap based event queue with a monotonic clock and a stable
//! tie-break: events scheduled for the same instant pop in the order they
//! were scheduled. That stability is essential for determinism — two runs
//! with the same seed must interleave identically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
///
/// `E` is the simulation's event type; the queue never inspects it.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with pre-allocated heap storage. Sized from
    /// the world's entity counts at build time, this keeps the future-event
    /// list from re-allocating during the simulation's warm-up ramp.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (0 before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule `event` at an absolute time. Times in the past are clamped to
    /// "now" — the simulator never travels backwards.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_is_monotonic_and_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        assert_eq!(q.pop(), Some((100, "later")));
        // Scheduling "in the past" clamps to now.
        q.schedule_at(50, "past");
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn relative_schedule_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.pop();
        q.schedule(5, 2);
        assert_eq!(q.pop(), Some((15, 2)));
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.pop();
        q.pop();
        assert_eq!(q.processed(), 2);
        assert!(q.is_empty());
    }
}
