//! The future-event list.
//!
//! [`FutureEventList`] is the simulator's scheduler subsystem: it owns the
//! monotonic clock, the schedule-order sequence numbers and the past-clamp
//! semantics, and delegates the priority-queue mechanics to one of two
//! pluggable backends selected by [`SchedulerBackend`]:
//!
//! * **`BinaryHeap`** — the classic O(log n) heap, kept as the reference
//!   implementation and the A/B baseline,
//! * **`Calendar`** — a hierarchical calendar queue
//!   ([`CalendarQueue`](crate::calendar::CalendarQueue)) with O(1) amortized
//!   schedule/pop for the short-horizon events that dominate this simulator.
//!
//! Both backends honour the same contract and two lists fed the same
//! `schedule`/`schedule_at` sequence pop the same `(time, event)` sequence:
//!
//! 1. events pop in non-decreasing timestamp order,
//! 2. events scheduled for the same instant pop in the order they were
//!    scheduled (FIFO by sequence number) — that stability is essential for
//!    determinism: two runs with the same seed must interleave identically,
//! 3. scheduling in the past clamps to "now" — the clock never goes
//!    backwards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// A timestamped event with its schedule-order sequence number. Ordered by
/// `(at, seq)` so same-instant events keep FIFO order. Shared by both
/// scheduler backends; [`FutureEventList`] mints these (the `seq` values
/// must be unique per list).
///
/// Equality and ordering deliberately compare the `(at, seq)` key only and
/// **ignore the payload**: `seq` is unique per list, so the key identifies
/// the entry, and `E` need not be `Eq`/`Ord`. Don't use `==` to compare
/// payloads.
pub struct Scheduled<E> {
    /// Absolute firing time.
    pub at: SimTime,
    /// Schedule-order sequence number (unique per list).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which priority-queue implementation backs a [`FutureEventList`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerBackend {
    /// `std::collections::BinaryHeap` — O(log n) schedule/pop. The
    /// reference backend every rewrite is digest-verified against.
    BinaryHeap,
    /// Hierarchical calendar queue — O(1) amortized schedule/pop for
    /// short-horizon events, with an overflow tier for far-future timers.
    /// The default.
    #[default]
    Calendar,
}

impl SchedulerBackend {
    /// Parse a backend name as used by CLI flags (`heap` / `calendar`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" | "binary-heap" | "binaryheap" => Some(Self::BinaryHeap),
            "calendar" | "calendar-queue" | "cq" => Some(Self::Calendar),
            _ => None,
        }
    }

    /// The flag-style name (`heap` / `calendar`).
    pub fn name(self) -> &'static str {
        match self {
            Self::BinaryHeap => "heap",
            Self::Calendar => "calendar",
        }
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Reverse<Scheduled<E>>>),
    Calendar(CalendarQueue<E>),
}

/// A deterministic future-event list with a pluggable backend.
///
/// `E` is the simulation's event type; the list never inspects it. The
/// clock (`now`), the FIFO tie-break sequence and the past-clamp live here,
/// shared by every backend — a backend only ever sees fully-formed
/// `(at, seq, event)` triples and must return them in `(at, seq)` order.
pub struct FutureEventList<E> {
    backend: Backend<E>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

/// The historical name of the future-event list, kept as an alias so call
/// sites and docs that grew up with `EventQueue` keep reading naturally.
pub type EventQueue<E> = FutureEventList<E>;

impl<E> Default for FutureEventList<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FutureEventList<E> {
    /// Create an empty list with the clock at zero, on the default backend.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty list with pre-allocated storage, on the default
    /// backend. Sized from the world's entity counts at build time, this
    /// keeps the future-event list from re-allocating during the
    /// simulation's warm-up ramp.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_backend(SchedulerBackend::default(), cap)
    }

    /// Create an empty list on an explicit backend with pre-allocated
    /// storage for about `cap` pending events.
    pub fn with_backend(kind: SchedulerBackend, cap: usize) -> Self {
        let backend = match kind {
            SchedulerBackend::BinaryHeap => Backend::Heap(BinaryHeap::with_capacity(cap)),
            SchedulerBackend::Calendar => Backend::Calendar(CalendarQueue::with_capacity(cap)),
        };
        Self {
            backend,
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Which backend this list runs on.
    pub fn backend(&self) -> SchedulerBackend {
        match &self.backend {
            Backend::Heap(_) => SchedulerBackend::BinaryHeap,
            Backend::Calendar(_) => SchedulerBackend::Calendar,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (0 before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule `event` at an absolute time. Times in the past are clamped to
    /// "now" — the simulator never travels backwards.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(Scheduled { at, seq, event })),
            Backend::Calendar(c) => c.push(Scheduled { at, seq, event }),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_most(SimTime::MAX)
    }

    /// Pop the next event only if it is due at or before `t`, advancing
    /// the clock to its timestamp. Events beyond `t` stay queued. This is
    /// the dispatch loop's horizon check fused with the pop, so the
    /// calendar backend positions its scan cursor once per event instead
    /// of once for the peek and again for the pop.
    pub fn pop_at_most(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        let s = match &mut self.backend {
            Backend::Heap(h) => {
                if h.peek().is_none_or(|Reverse(s)| s.at > t) {
                    return None;
                }
                h.pop().map(|Reverse(s)| s).expect("peeked")
            }
            Backend::Calendar(c) => c.pop_at_most(t)?,
        };
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Timestamp of the next pending event without popping it.
    ///
    /// Takes `&mut self` because the calendar backend advances its bucket
    /// scan cursor while peeking (the work is then reused by the next
    /// `pop`); the logical state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(s)| s.at),
            Backend::Calendar(c) => c.peek_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [SchedulerBackend; 2] =
        [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar];

    fn with_each(f: impl Fn(FutureEventList<&'static str>)) {
        for b in BACKENDS {
            f(FutureEventList::with_backend(b, 0));
        }
    }

    #[test]
    fn pops_in_time_order() {
        with_each(|mut q| {
            q.schedule(30, "c");
            q.schedule(10, "a");
            q.schedule(20, "b");
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_in_schedule_order() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            for i in 0..100 {
                q.schedule(5, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((5, i)), "backend {b:?}");
            }
        }
    }

    #[test]
    fn clock_is_monotonic_and_past_is_clamped() {
        with_each(|mut q| {
            q.schedule(100, "later");
            assert_eq!(q.pop(), Some((100, "later")));
            // Scheduling "in the past" clamps to now.
            q.schedule_at(50, "past");
            assert_eq!(q.pop(), Some((100, "past")));
            assert_eq!(q.now(), 100);
        });
    }

    #[test]
    fn relative_schedule_uses_current_clock() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(10, 1);
            q.pop();
            q.schedule(5, 2);
            assert_eq!(q.pop(), Some((15, 2)));
        }
    }

    #[test]
    fn counts_processed() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(1, ());
            q.schedule(2, ());
            q.pop();
            q.pop();
            assert_eq!(q.processed(), 2);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_at_most_respects_horizon() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(10, "a");
            q.schedule(30, "b");
            assert_eq!(q.pop_at_most(5), None);
            assert_eq!(q.pop_at_most(10), Some((10, "a")));
            assert_eq!(q.pop_at_most(29), None);
            assert_eq!(q.len(), 1, "unpopped event must stay queued");
            assert_eq!(q.pop_at_most(SimTime::MAX), Some((30, "b")));
        }
    }

    #[test]
    fn default_backend_is_calendar() {
        let q: FutureEventList<()> = FutureEventList::new();
        assert_eq!(q.backend(), SchedulerBackend::Calendar);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in BACKENDS {
            assert_eq!(SchedulerBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SchedulerBackend::parse("nope"), None);
    }

    #[test]
    fn peek_matches_pop_interleaved() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            for i in 0..200u64 {
                q.schedule((i * 37) % 101, i);
            }
            while let Some(t) = q.peek_time() {
                // Scheduling after a peek, behind the peeked time but at or
                // after now, must not be lost or reordered — the next peek
                // must see it.
                if q.processed() == 50 {
                    q.schedule_at(q.now(), 10_000);
                    let t2 = q.peek_time().expect("just scheduled");
                    assert!(t2 <= t, "backend {b:?}");
                    let (at, _) = q.pop().expect("peeked");
                    assert_eq!(at, t2, "backend {b:?}");
                    continue;
                }
                let (at, _) = q.pop().expect("peeked");
                assert_eq!(at, t, "backend {b:?}");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn backends_pop_identical_sequences() {
        let mut heap = FutureEventList::with_backend(SchedulerBackend::BinaryHeap, 0);
        let mut cal = FutureEventList::with_backend(SchedulerBackend::Calendar, 0);
        // A mixed schedule: short-horizon bursts, massed ties, far-future
        // timers, and interleaved pops (which clamp later schedules).
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5_000u64 {
            match step() % 5 {
                0 => {
                    let d = step() % 50;
                    heap.schedule(d, i);
                    cal.schedule(d, i);
                }
                1 => {
                    heap.schedule(7, i);
                    cal.schedule(7, i);
                }
                2 => {
                    let at = step() % 1_000_000;
                    heap.schedule_at(at, i);
                    cal.schedule_at(at, i);
                }
                3 => {
                    let d = 500_000 + step() % 3_000_000;
                    heap.schedule(d, i);
                    cal.schedule(d, i);
                }
                _ => {
                    assert_eq!(heap.pop(), cal.pop(), "diverged at op {i}");
                }
            }
        }
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
    }
}
