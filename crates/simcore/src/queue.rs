//! The future-event list.
//!
//! [`FutureEventList`] is the simulator's scheduler subsystem: it owns the
//! monotonic clock, the schedule-order sequence numbers and the past-clamp
//! semantics, and delegates the priority-queue mechanics to one of two
//! pluggable backends selected by [`SchedulerBackend`]:
//!
//! * **`BinaryHeap`** — the classic O(log n) heap, kept as the reference
//!   implementation and the A/B baseline,
//! * **`Calendar`** — a hierarchical calendar queue
//!   ([`CalendarQueue`](crate::calendar::CalendarQueue)) with O(1) amortized
//!   schedule/pop for the short-horizon events that dominate this simulator.
//!
//! Both backends honour the same contract and two lists fed the same
//! `schedule`/`schedule_at` sequence pop the same `(time, event)` sequence:
//!
//! 1. events pop in non-decreasing timestamp order,
//! 2. events scheduled for the same instant pop in the order they were
//!    scheduled (FIFO by sequence number) — that stability is essential for
//!    determinism: two runs with the same seed must interleave identically,
//! 3. scheduling in the past clamps to "now" — the clock never goes
//!    backwards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::region::RegionScheduler;
use crate::time::SimTime;

/// A timestamped event with its schedule-order sequence number. Ordered by
/// `(at, seq)` so same-instant events keep FIFO order. Shared by both
/// scheduler backends; [`FutureEventList`] mints these (the `seq` values
/// must be unique per list).
///
/// Equality and ordering deliberately compare the `(at, seq)` key only and
/// **ignore the payload**: `seq` is unique per list, so the key identifies
/// the entry, and `E` need not be `Eq`/`Ord`. Don't use `==` to compare
/// payloads.
pub struct Scheduled<E> {
    /// Absolute firing time.
    pub at: SimTime,
    /// Schedule-order sequence number (unique per list).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which priority-queue implementation backs a [`FutureEventList`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerBackend {
    /// `std::collections::BinaryHeap` — O(log n) schedule/pop. The
    /// reference backend every rewrite is digest-verified against.
    BinaryHeap,
    /// Hierarchical calendar queue — O(1) amortized schedule/pop for
    /// short-horizon events, with an overflow tier for far-future timers.
    /// The default.
    #[default]
    Calendar,
}

impl SchedulerBackend {
    /// Parse a backend name as used by CLI flags (`heap` / `calendar`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" | "binary-heap" | "binaryheap" => Some(Self::BinaryHeap),
            "calendar" | "calendar-queue" | "cq" => Some(Self::Calendar),
            _ => None,
        }
    }

    /// The flag-style name (`heap` / `calendar`).
    pub fn name(self) -> &'static str {
        match self {
            Self::BinaryHeap => "heap",
            Self::Calendar => "calendar",
        }
    }
}

/// One priority-queue instance behind a [`FutureEventList`] — the raw
/// mechanics with none of the list's shell state (clock, sequence minting,
/// past-clamp, processed counter). Extracted so the region scheduler
/// ([`RegionScheduler`](crate::region::RegionScheduler)) can own one queue
/// *per region* while a single shell keeps minting globally-unique
/// `(at, seq)` keys across all of them.
pub(crate) enum BackendQueue<E> {
    Heap(BinaryHeap<Reverse<Scheduled<E>>>),
    Calendar(CalendarQueue<E>),
}

impl<E> BackendQueue<E> {
    pub(crate) fn new(kind: SchedulerBackend, cap: usize) -> Self {
        match kind {
            SchedulerBackend::BinaryHeap => Self::Heap(BinaryHeap::with_capacity(cap)),
            SchedulerBackend::Calendar => Self::Calendar(CalendarQueue::with_capacity(cap)),
        }
    }

    pub(crate) fn kind(&self) -> SchedulerBackend {
        match self {
            Self::Heap(_) => SchedulerBackend::BinaryHeap,
            Self::Calendar(_) => SchedulerBackend::Calendar,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            Self::Heap(h) => h.len(),
            Self::Calendar(c) => c.len(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, s: Scheduled<E>) {
        match self {
            Self::Heap(h) => h.push(Reverse(s)),
            Self::Calendar(c) => c.push(s),
        }
    }

    /// Pop the earliest entry if due at or before `t`.
    pub(crate) fn pop_at_most(&mut self, t: SimTime) -> Option<Scheduled<E>> {
        match self {
            Self::Heap(h) => {
                if h.peek().is_none_or(|Reverse(s)| s.at > t) {
                    return None;
                }
                Some(h.pop().map(|Reverse(s)| s).expect("peeked"))
            }
            Self::Calendar(c) => c.pop_at_most(t),
        }
    }

    /// Drain the earliest same-instant run (if due by `t`), appending
    /// payloads to `buf` in seq order. Does not clear `buf` — the caller
    /// owns that decision.
    pub(crate) fn pop_run_at_most(
        &mut self,
        t: SimTime,
        buf: &mut Vec<E>,
    ) -> Option<(SimTime, usize)> {
        match self {
            Self::Heap(h) => {
                if h.peek().is_none_or(|Reverse(s)| s.at > t) {
                    return None;
                }
                let Reverse(first) = h.pop().expect("peeked");
                let at = first.at;
                let start = buf.len();
                buf.push(first.event);
                // FIFO within the run comes from the heap's (at, seq)
                // ordering: equal-`at` entries surface in seq order.
                while h.peek().is_some_and(|Reverse(s)| s.at == at) {
                    let Reverse(s) = h.pop().expect("peeked");
                    buf.push(s.event);
                }
                Some((at, buf.len() - start))
            }
            Self::Calendar(c) => c.pop_run_at_most(t, buf),
        }
    }

    /// Like [`pop_run_at_most`](Self::pop_run_at_most) but keeps each
    /// entry's `(at, seq)` key — the region scheduler needs the keys to
    /// merge same-instant runs drained from different regions back into
    /// the global FIFO order.
    pub(crate) fn pop_run_keyed_at_most(
        &mut self,
        t: SimTime,
        out: &mut Vec<Scheduled<E>>,
    ) -> Option<(SimTime, usize)> {
        match self {
            Self::Heap(h) => {
                if h.peek().is_none_or(|Reverse(s)| s.at > t) {
                    return None;
                }
                let Reverse(first) = h.pop().expect("peeked");
                let at = first.at;
                let start = out.len();
                out.push(first);
                while h.peek().is_some_and(|Reverse(s)| s.at == at) {
                    let Reverse(s) = h.pop().expect("peeked");
                    out.push(s);
                }
                Some((at, out.len() - start))
            }
            Self::Calendar(c) => c.pop_run_keyed_at_most(t, out),
        }
    }

    /// The `(at, seq)` key of the earliest pending entry. `&mut self` for
    /// the same reason as [`FutureEventList::peek_time`]: the calendar
    /// backend positions its scan cursor while peeking.
    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Self::Heap(h) => h.peek().map(|Reverse(s)| (s.at, s.seq)),
            Self::Calendar(c) => c.peek_key(),
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Self::Heap(h) => h.peek().map(|Reverse(s)| s.at),
            Self::Calendar(c) => c.peek_time(),
        }
    }
}

/// A deterministic future-event list with a pluggable backend.
///
/// `E` is the simulation's event type; the list never inspects it. The
/// clock (`now`), the FIFO tie-break sequence and the past-clamp live here,
/// shared by every backend — a backend only ever sees fully-formed
/// `(at, seq, event)` triples and must return them in `(at, seq)` order.
pub struct FutureEventList<E> {
    lists: Lists<E>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

/// The list's storage: one backend queue, or one per region merged under
/// the shared `(at, seq)` total order (see [`crate::region`]).
enum Lists<E> {
    Single(BackendQueue<E>),
    Regions(RegionScheduler<E>),
}

/// The historical name of the future-event list, kept as an alias so call
/// sites and docs that grew up with `EventQueue` keep reading naturally.
pub type EventQueue<E> = FutureEventList<E>;

impl<E> Default for FutureEventList<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FutureEventList<E> {
    /// Create an empty list with the clock at zero, on the default backend.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty list with pre-allocated storage, on the default
    /// backend. Sized from the world's entity counts at build time, this
    /// keeps the future-event list from re-allocating during the
    /// simulation's warm-up ramp.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_backend(SchedulerBackend::default(), cap)
    }

    /// Create an empty list on an explicit backend with pre-allocated
    /// storage for about `cap` pending events.
    pub fn with_backend(kind: SchedulerBackend, cap: usize) -> Self {
        Self {
            lists: Lists::Single(BackendQueue::new(kind, cap)),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Create an empty list whose pending set is partitioned into
    /// `regions` per-region queues merged under the list's global
    /// `(at, seq)` order (conservative region-partitioned PDES; see
    /// [`crate::region`]). `regions <= 1` degrades to the plain
    /// single-queue list — same type, zero overhead. Events are assigned
    /// to regions via [`schedule_tagged`](Self::schedule_tagged) /
    /// [`schedule_at_tagged`](Self::schedule_at_tagged); the untagged
    /// `schedule` / `schedule_at` land in region 0.
    ///
    /// The popped `(time, event)` sequence is byte-identical to a
    /// single-queue list fed the same schedule calls **for every region
    /// assignment**: the merge compares globally-unique `(at, seq)` keys,
    /// so region tagging is purely a performance decision (smaller
    /// per-region populations, per-region calendar geometry), never a
    /// semantic one.
    pub fn with_backend_regions(kind: SchedulerBackend, cap: usize, regions: usize) -> Self {
        if regions <= 1 {
            return Self::with_backend(kind, cap);
        }
        Self {
            lists: Lists::Regions(RegionScheduler::new(kind, cap, regions)),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Which backend this list runs on.
    pub fn backend(&self) -> SchedulerBackend {
        match &self.lists {
            Lists::Single(b) => b.kind(),
            Lists::Regions(r) => r.kind(),
        }
    }

    /// Number of regions the pending set is partitioned into (1 for a
    /// plain single-queue list).
    pub fn regions(&self) -> usize {
        match &self.lists {
            Lists::Single(_) => 1,
            Lists::Regions(r) => r.regions(),
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (0 before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.lists {
            Lists::Single(b) => b.len(),
            Lists::Regions(r) => r.len(),
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule `event` at an absolute time. Times in the past are clamped to
    /// "now" — the simulator never travels backwards.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_tagged(0, at, event);
    }

    /// Schedule `event` `delay` after the current time, assigning it to
    /// `region` (ignored on a single-queue list; clamped to the last
    /// region otherwise). Region assignment never affects pop order —
    /// only which per-region queue stores the event.
    #[inline]
    pub fn schedule_tagged(&mut self, region: usize, delay: SimTime, event: E) {
        self.schedule_at_tagged(region, self.now.saturating_add(delay), event);
    }

    /// Schedule `event` at an absolute time in `region`. See
    /// [`schedule_tagged`](Self::schedule_tagged).
    #[inline]
    pub fn schedule_at_tagged(&mut self, region: usize, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        match &mut self.lists {
            Lists::Single(b) => b.push(Scheduled { at, seq, event }),
            Lists::Regions(r) => r.push(region, Scheduled { at, seq, event }),
        }
    }

    /// Schedule `event` at absolute time `at` in `region` under a
    /// caller-supplied ordering key, bypassing both sequence minting and
    /// the past-clamp. Expert API for the PDES engines: cross-region
    /// events (cut-channel deliveries and credit returns) must carry the
    /// *same* key in the sequential reference engine and in every
    /// thread-per-region replica, so the key is computed by the caller
    /// (from per-link counters) instead of minted here. The caller owns
    /// key uniqueness and must keep `at >= now()`; the global `seq`
    /// counter is not advanced.
    // checker:hot-path
    pub fn push_keyed(&mut self, region: usize, at: SimTime, seq: u64, event: E) {
        debug_assert!(at >= self.now, "keyed push into the past");
        match &mut self.lists {
            Lists::Single(b) => b.push(Scheduled { at, seq, event }),
            Lists::Regions(r) => r.push(region, Scheduled { at, seq, event }),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_most(SimTime::MAX)
    }

    /// Pop the next event only if it is due at or before `t`, advancing
    /// the clock to its timestamp. Events beyond `t` stay queued. This is
    /// the dispatch loop's horizon check fused with the pop, so the
    /// calendar backend positions its scan cursor once per event instead
    /// of once for the peek and again for the pop.
    // checker:hot-path
    pub fn pop_at_most(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        let s = match &mut self.lists {
            Lists::Single(b) => b.pop_at_most(t)?,
            Lists::Regions(r) => r.pop_at_most(t)?,
        };
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Drain the entire run of events sharing the earliest pending instant
    /// (if that instant is at or before `t`) into `buf`, in schedule (FIFO)
    /// order, and advance the clock to that instant — once for the whole
    /// run. Returns the run's instant, or `None` (leaving `buf` empty) if
    /// nothing is due by `t`.
    ///
    /// This is the batch form of [`pop_at_most`](Self::pop_at_most) for the
    /// engine's bursty pending sets (hundreds of deliveries massed at a
    /// handful of instants): both backends locate the minimum once and then
    /// drain its whole same-instant run — the calendar queue positions its
    /// scan cursor a single time and takes the sorted bucket prefix, the
    /// heap pops while the root's timestamp is unchanged — so the driver
    /// pays one horizon check, one clock update and one cursor walk per
    /// *instant* instead of per *event*.
    ///
    /// Contract notes (see also the batch-drain section of `CHANGES.md`):
    /// `buf` is cleared first — the caller owns the buffer and is expected
    /// to reuse it across calls to keep the loop allocation-free; events
    /// scheduled *while the caller processes the run* (including more
    /// events at the same instant — the clock makes them clamp to it) are
    /// never part of the already-drained run, they form a later run exactly
    /// as they would pop after the run under single-event popping, because
    /// their sequence numbers are larger.
    pub fn pop_run_at_most(&mut self, t: SimTime, buf: &mut Vec<E>) -> Option<SimTime> {
        buf.clear();
        let (at, n) = match &mut self.lists {
            Lists::Single(b) => b.pop_run_at_most(t, buf)?,
            Lists::Regions(r) => r.pop_run_at_most(t, buf)?,
        };
        debug_assert!(at >= self.now, "event queue time went backwards");
        debug_assert_eq!(n, buf.len());
        self.now = at;
        self.processed += n as u64;
        Some(at)
    }

    /// Advance the clock to `t` without dispatching anything (no-op if the
    /// clock is already at or past `t`). Drivers call this when a
    /// `run_until(t)` horizon is exhausted: the simulation has observed
    /// that no event happens in `(now, t]`, so time *has* passed — leaving
    /// the clock at the last dispatched event would make anything later
    /// scheduled relative to `now()` land in the past and get past-clamped.
    ///
    /// The advance is clamped to the earliest still-pending event: the
    /// clock can never jump over an undispatched event (which would make
    /// the next pop move time backwards). In the driver's exhausted-horizon
    /// case everything pending is beyond `t`, so the clamp is a no-op
    /// there; it exists to make direct misuse fail safe instead of
    /// silently breaking monotonicity.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        let t = match self.peek_time() {
            Some(at) => t.min(at),
            None => t,
        };
        if t > self.now {
            self.now = t;
        }
    }

    /// Timestamp of the next pending event without popping it.
    ///
    /// Takes `&mut self` because the calendar backend advances its bucket
    /// scan cursor while peeking (the work is then reused by the next
    /// `pop`); the logical state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.lists {
            Lists::Single(b) => b.peek_time(),
            Lists::Regions(r) => r.peek_time(),
        }
    }

    // -----------------------------------------------------------------
    // Region introspection (conservative-PDES accounting; see
    // `crate::region`). All of these are trivial on a single-queue list.
    // -----------------------------------------------------------------

    /// Install the region lookahead matrix (row-major `k × k`;
    /// `la[from][to]` = minimum latency of any event a `from`-region
    /// handler can schedule into `to`). No-op on a single-queue list.
    pub fn set_region_lookahead(&mut self, la: &[SimTime]) {
        if let Lists::Regions(r) = &mut self.lists {
            r.set_lookahead(la);
        }
    }

    /// The local clock of `region`: the timestamp of the last event popped
    /// from it (0 before the first pop). A single-queue list reports the
    /// global clock.
    pub fn region_clock(&self, region: usize) -> SimTime {
        match &self.lists {
            Lists::Single(_) => self.now,
            Lists::Regions(r) => r.clock(region),
        }
    }

    /// The conservative bound `region` may advance to on neighbor clocks +
    /// lookahead alone (Chandy–Misra–Bryant). `SimTime::MAX` on a
    /// single-queue list.
    pub fn region_safe_until(&self, region: usize) -> SimTime {
        match &self.lists {
            Lists::Single(_) => SimTime::MAX,
            Lists::Regions(r) => r.safe_until(region),
        }
    }

    /// Which regions may dispatch their head event right now (lookahead
    /// grant, or the global-minimum rule — see
    /// [`RegionScheduler::grants`]). A single-queue list grants region 0
    /// whenever non-empty.
    pub fn region_grants(&mut self, out: &mut Vec<bool>) {
        out.clear();
        match &mut self.lists {
            Lists::Single(b) => out.push(b.len() > 0),
            Lists::Regions(r) => r.grants(out),
        }
    }

    /// Conservative-sync accounting counters (zeroes on a single-queue
    /// list).
    pub fn region_sync_stats(&self) -> crate::region::SyncStats {
        match &self.lists {
            Lists::Single(_) => crate::region::SyncStats::default(),
            Lists::Regions(r) => r.sync_stats(),
        }
    }

    /// Events popped out of `region` so far. A single-queue list attributes
    /// everything to region 0.
    pub fn region_processed(&self, region: usize) -> u64 {
        match &self.lists {
            Lists::Single(_) => {
                if region == 0 {
                    self.processed
                } else {
                    0
                }
            }
            Lists::Regions(r) => r.region_pops(region),
        }
    }

    /// Enable region-major same-instant ordering (see
    /// [`RegionScheduler::set_region_major`]). No-op on a single-queue
    /// list.
    pub fn set_region_major(&mut self, on: bool) {
        if let Lists::Regions(r) = &mut self.lists {
            r.set_region_major(on);
        }
    }

    /// Drop every region's pending events except `keep`'s (no-op on a
    /// single-queue list). Used by the thread-per-region executor: each
    /// replica builds the full world identically, then prunes its queue to
    /// the one region it owns. The clock, the `seq` counter, and the
    /// processed count are untouched.
    pub fn retain_region(&mut self, keep: usize) {
        if let Lists::Regions(r) = &mut self.lists {
            r.retain_region(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [SchedulerBackend; 2] =
        [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar];

    fn with_each(f: impl Fn(FutureEventList<&'static str>)) {
        for b in BACKENDS {
            f(FutureEventList::with_backend(b, 0));
        }
    }

    #[test]
    fn pops_in_time_order() {
        with_each(|mut q| {
            q.schedule(30, "c");
            q.schedule(10, "a");
            q.schedule(20, "b");
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_in_schedule_order() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            for i in 0..100 {
                q.schedule(5, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((5, i)), "backend {b:?}");
            }
        }
    }

    #[test]
    fn clock_is_monotonic_and_past_is_clamped() {
        with_each(|mut q| {
            q.schedule(100, "later");
            assert_eq!(q.pop(), Some((100, "later")));
            // Scheduling "in the past" clamps to now.
            q.schedule_at(50, "past");
            assert_eq!(q.pop(), Some((100, "past")));
            assert_eq!(q.now(), 100);
        });
    }

    #[test]
    fn relative_schedule_uses_current_clock() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(10, 1);
            q.pop();
            q.schedule(5, 2);
            assert_eq!(q.pop(), Some((15, 2)));
        }
    }

    #[test]
    fn counts_processed() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(1, ());
            q.schedule(2, ());
            q.pop();
            q.pop();
            assert_eq!(q.processed(), 2);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_at_most_respects_horizon() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule(10, "a");
            q.schedule(30, "b");
            assert_eq!(q.pop_at_most(5), None);
            assert_eq!(q.pop_at_most(10), Some((10, "a")));
            assert_eq!(q.pop_at_most(29), None);
            assert_eq!(q.len(), 1, "unpopped event must stay queued");
            assert_eq!(q.pop_at_most(SimTime::MAX), Some((30, "b")));
        }
    }

    #[test]
    fn pop_run_drains_exactly_the_earliest_instant_run_in_fifo_order() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            // Two massed runs plus a straggler between them.
            for i in 0..300u64 {
                q.schedule_at(50, i);
            }
            q.schedule_at(75, 1_000);
            for i in 0..10u64 {
                q.schedule_at(90, 2_000 + i);
            }
            let mut buf = Vec::new();
            assert_eq!(q.pop_run_at_most(SimTime::MAX, &mut buf), Some(50));
            assert_eq!(buf, (0..300).collect::<Vec<_>>(), "backend {b:?}");
            assert_eq!(q.now(), 50);
            assert_eq!(q.processed(), 300);
            assert_eq!(q.len(), 11, "later instants must stay queued");
            assert_eq!(q.pop_run_at_most(SimTime::MAX, &mut buf), Some(75));
            assert_eq!(buf, vec![1_000]);
            assert_eq!(q.pop_run_at_most(SimTime::MAX, &mut buf), Some(90));
            assert_eq!(buf, (2_000..2_010).collect::<Vec<_>>());
            assert_eq!(q.pop_run_at_most(SimTime::MAX, &mut buf), None);
            assert!(buf.is_empty(), "a dry drain must leave the buffer empty");
        }
    }

    #[test]
    fn pop_run_respects_horizon_and_clears_stale_buffer() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule_at(40, "early");
            q.schedule_at(80, "late");
            let mut buf = vec!["stale"];
            assert_eq!(q.pop_run_at_most(30, &mut buf), None);
            assert!(buf.is_empty(), "dry horizon probe must clear the buffer");
            assert_eq!(q.pop_run_at_most(40, &mut buf), Some(40));
            assert_eq!(buf, vec!["early"]);
            assert_eq!(q.pop_run_at_most(79, &mut buf), None);
            assert_eq!(q.len(), 1, "beyond-horizon event must stay queued");
            assert_eq!(q.pop_run_at_most(80, &mut buf), Some(80));
            assert_eq!(buf, vec!["late"]);
        }
    }

    #[test]
    fn pop_run_matches_single_pop_sequence() {
        // Batch drains must yield exactly the single-pop event sequence,
        // run boundaries included — the contract the engine's batch
        // dispatch rides on.
        let mut x = 0x0005_DEEC_E66D_1531_u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut schedules: Vec<(SimTime, u64)> = Vec::new();
        for i in 0..2_000u64 {
            // Heavy massing: few distinct instants.
            schedules.push((step() % 97, i));
        }
        for b in BACKENDS {
            let mut single = FutureEventList::with_backend(b, 0);
            let mut batch = FutureEventList::with_backend(b, 0);
            for &(at, id) in &schedules {
                single.schedule_at(at, id);
                batch.schedule_at(at, id);
            }
            let mut got_single = Vec::new();
            while let Some((at, id)) = single.pop() {
                got_single.push((at, id));
            }
            let mut got_batch = Vec::new();
            let mut buf = Vec::new();
            while let Some(at) = batch.pop_run_at_most(SimTime::MAX, &mut buf) {
                for &id in &buf {
                    got_batch.push((at, id));
                }
            }
            assert_eq!(got_single, got_batch, "backend {b:?}");
            assert_eq!(single.processed(), batch.processed());
            assert_eq!(single.now(), batch.now());
        }
    }

    #[test]
    fn advance_clock_to_reaches_horizon_after_queue_drains() {
        // Regression: `run_until(t)` used to leave the clock at the last
        // dispatched event when the queue drained before `t`, so anything
        // scheduled relative to `now()` afterwards landed in the past and
        // got past-clamped. The driver now advances the clock to the
        // exhausted horizon via `advance_clock_to`.
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule_at(10, "only");
            while q.pop_at_most(100).is_some() {}
            // Pre-fix behavior, preserved at the pop level: the clock sits
            // at the last event.
            assert_eq!(q.now(), 10);
            q.advance_clock_to(100);
            assert_eq!(q.now(), 100);
            // Relative scheduling is now relative to the horizon...
            q.schedule(5, "after");
            assert_eq!(q.pop(), Some((105, "after")), "backend {b:?}");
            // ...and the clock never moves backwards.
            q.advance_clock_to(50);
            assert_eq!(q.now(), 105);
        }
    }

    #[test]
    fn advance_clock_to_cannot_jump_over_pending_events() {
        // Misuse guard: advancing past a still-pending event would make
        // the next pop move simulated time backwards (silently, in release
        // builds). The advance clamps to the earliest pending instant.
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            q.schedule_at(50, "pending");
            q.advance_clock_to(100);
            assert_eq!(q.now(), 50, "backend {b:?}: clock jumped a pending event");
            assert_eq!(q.pop(), Some((50, "pending")));
            assert_eq!(q.now(), 50);
            q.advance_clock_to(100);
            assert_eq!(q.now(), 100, "empty queue: advance reaches the horizon");
        }
    }

    #[test]
    fn default_backend_is_calendar() {
        let q: FutureEventList<()> = FutureEventList::new();
        assert_eq!(q.backend(), SchedulerBackend::Calendar);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in BACKENDS {
            assert_eq!(SchedulerBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SchedulerBackend::parse("nope"), None);
    }

    #[test]
    fn peek_matches_pop_interleaved() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend(b, 0);
            for i in 0..200u64 {
                q.schedule((i * 37) % 101, i);
            }
            while let Some(t) = q.peek_time() {
                // Scheduling after a peek, behind the peeked time but at or
                // after now, must not be lost or reordered — the next peek
                // must see it.
                if q.processed() == 50 {
                    q.schedule_at(q.now(), 10_000);
                    let t2 = q.peek_time().expect("just scheduled");
                    assert!(t2 <= t, "backend {b:?}");
                    let (at, _) = q.pop().expect("peeked");
                    assert_eq!(at, t2, "backend {b:?}");
                    continue;
                }
                let (at, _) = q.pop().expect("peeked");
                assert_eq!(at, t, "backend {b:?}");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn backends_pop_identical_sequences() {
        let mut heap = FutureEventList::with_backend(SchedulerBackend::BinaryHeap, 0);
        let mut cal = FutureEventList::with_backend(SchedulerBackend::Calendar, 0);
        // A mixed schedule: short-horizon bursts, massed ties, far-future
        // timers, and interleaved pops (which clamp later schedules).
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5_000u64 {
            match step() % 5 {
                0 => {
                    let d = step() % 50;
                    heap.schedule(d, i);
                    cal.schedule(d, i);
                }
                1 => {
                    heap.schedule(7, i);
                    cal.schedule(7, i);
                }
                2 => {
                    let at = step() % 1_000_000;
                    heap.schedule_at(at, i);
                    cal.schedule_at(at, i);
                }
                3 => {
                    let d = 500_000 + step() % 3_000_000;
                    heap.schedule(d, i);
                    cal.schedule(d, i);
                }
                _ => {
                    assert_eq!(heap.pop(), cal.pop(), "diverged at op {i}");
                }
            }
        }
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
    }
}
