//! A fast, deterministic hasher for hot-path hash maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-process
//! random keys: robust against HashDoS, but (a) several times slower than
//! needed for trusted `u64` keys, and (b) randomized, which makes map
//! iteration order differ between runs — poison for a simulator whose whole
//! value is bit-reproducibility.
//!
//! [`FxHasher`] is the FxHash function used by rustc: one multiply, one
//! rotate and one xor per 8-byte word. Keys here are simulator-internal
//! (`u64` record keys, channel ids), never attacker-controlled, so DoS
//! resistance is not required.
//!
//! The build hasher is a unit struct, so two identically-populated maps
//! hash — and iterate — identically across runs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash function: fast multiplicative hashing for trusted keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic build hasher (unit struct — no per-process randomness).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn stable_across_instances() {
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(hash_of(&k), hash_of(&k));
        }
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_and_word_paths_cover_all_lengths() {
        for len in 0..=17 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let a = hash_of(&bytes);
            let b = hash_of(&bytes);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(m[&k], k * 2);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys must not collide in the low bits (the map uses
        // the hash's low bits for bucketing).
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for k in 0..256u64 {
            low.insert(hash_of(&k) & 0xFF);
        }
        assert!(low.len() > 128, "only {} distinct low bytes", low.len());
    }
}
