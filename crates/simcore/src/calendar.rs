//! A hierarchical calendar queue — the O(1) backend of the
//! [`FutureEventList`](crate::queue::FutureEventList).
//!
//! # Structure
//!
//! Pending events live in one of two tiers:
//!
//! * **Buckets (the calendar):** `nbuckets` (a power of two) day-buckets of
//!   `width = 2^shift` microseconds each. The calendar is a *rolling
//!   window* of `nbuckets` consecutive days starting at the scan cursor's
//!   day: an event due within the window lands in bucket
//!   `(at >> shift) & (nbuckets - 1)` and each bucket is kept sorted by
//!   `(at, seq)`. Because events arrive mostly in near-future order, the
//!   sorted insert is an append in the common case, and `pop` is a cursor
//!   scan that takes the front of the current day's bucket — O(1)
//!   amortized for the short-horizon events (sub-millisecond deliveries,
//!   ~10 ms source ticks) that dominate this simulator's load. The
//!   power-of-two width keeps the hot path free of divisions.
//! * **Overflow (the hierarchy):** events due beyond the window's end
//!   (deploy delays, checkpoint ticks, far-future timers) wait in a
//!   `(at, seq)`-ordered binary heap. As the cursor advances, overflow
//!   events whose day enters the window migrate into the buckets — lazily,
//!   checked with a single heap-peek comparison before each scan, so
//!   steady-state short-horizon traffic never touches the heap.
//!
//! # Bucket-width tuning rule
//!
//! The geometry adapts on occupancy-driven resizes, rate-limited to one
//! per `nbuckets` ops:
//!
//! * **Grow** (pending > 2 × nbuckets): double the buckets **and retune
//!   the width** — grows fire mid-burst, when the pending set is at its
//!   most representative. The rule: `width = next_power_of_two(3 ×
//!   lower-quartile gap between distinct pending instants)`, floored at
//!   1 µs and capped at 256 µs (see [`tune_shift`]'s docs for why the
//!   rule counts instants rather than events, biases narrow, and is
//!   capped). It aims at a few *instants* per day, so a pop rarely
//!   crosses an empty bucket and an insert is almost always an in-order
//!   append.
//! * **Shrink** (peak pending over a whole observation window
//!   < nbuckets / 8, never below the construction-time size): halve the
//!   buckets but **keep the width** — shrinks fire in lulls, whose gaps
//!   say nothing about the traffic that resumes after.
//!
//! All inputs to both rules are queue contents and op counts, so tuning
//! is deterministic.
//!
//! # Determinism contract (see `ROADMAP.md`, hot-path invariants #3/#4)
//!
//! Within one timestamp, events pop **FIFO by their schedule-order `seq`**:
//! buckets are sorted by `(at, seq)`, the overflow heap is ordered by
//! `(at, seq)`, and same-timestamp events can never be popped from
//! different tiers out of order (an overflow event migrates into the
//! buckets before the cursor can reach its day). Every structural
//! decision — bucket geometry, resize points, width retuning, migration —
//! is a pure function of the scheduled contents, so two lists fed the same
//! schedule sequence pop byte-identical `(time, event)` sequences. The
//! engine's event interleaving (and therefore every metrics digest) is
//! downstream of this property; treat any change here like a semantics
//! change and re-verify with `perf_report`'s cross-backend digest check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::queue::Scheduled;
use crate::time::SimTime;

/// Smallest bucket count; also the initial count for empty queues.
const MIN_BUCKETS: usize = 32;
/// Largest bucket count the resize rule will grow to.
const MAX_BUCKETS: usize = 1 << 17;
/// log2 of the day width before the first retune (16 µs). Chosen for the
/// simulator's typical event gaps (a few µs under load); the first resize
/// replaces it.
const DEFAULT_SHIFT: u32 = 4;
/// Largest permitted width exponent: day width caps at 2^8 = 256 µs.
/// The simulator's hot events (deliveries, service quanta, wakes) live at
/// µs-to-sub-ms gaps; a day wider than this can only collide distinct
/// instants into one bucket (forcing re-sorts on interleaved inserts),
/// while everything slower — ticks, checkpoints, deploy delays — is
/// exactly what the overflow tier absorbs. Tuning samples taken during
/// startup or rescale lulls see only sparse timers and would otherwise
/// pick multi-ms days that poison the geometry for resumed traffic.
const MAX_SHIFT: u32 = 8;
/// Fewest pending events the tuning rule will draw conclusions from.
/// Transient lulls (e.g. a rescale quiescing sources) leave a handful of
/// far-apart control timers — tuning the width from those poisons the
/// geometry for the traffic that resumes after.
const TUNE_MIN_SAMPLE: usize = 16;

/// One day's events. Kept sorted by `(at, seq)` while small; large buckets
/// accept unsorted appends (`dirty`) and are sorted once when the scan
/// cursor reaches them — O(1) insert, amortized O(log B) per event to
/// sort, and no per-insert memmove even when a day holds hundreds of
/// events (dense populations where the 1 µs width floor binds).
struct Bucket<E> {
    q: VecDeque<Scheduled<E>>,
    dirty: bool,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Self {
            q: VecDeque::new(),
            dirty: false,
        }
    }

    /// Restore sorted order if unsorted appends accumulated.
    #[inline]
    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.q
                .make_contiguous()
                .sort_unstable_by_key(|e| (e.at, e.seq));
            self.dirty = false;
        }
    }
}

/// Buckets at most this long keep sorted order by binary-insert; longer
/// ones switch to append-and-sort-lazily.
const SMALL_SORTED_LEN: usize = 16;

/// A hierarchical calendar queue ordered by `(at, seq)`.
///
/// This is the backend behind
/// [`SchedulerBackend::Calendar`](crate::queue::SchedulerBackend); use it
/// through [`FutureEventList`](crate::queue::FutureEventList), which owns
/// the clock, the sequence numbers and the past-clamp. The queue itself
/// only requires that pushes carry unique `seq` values and that no push is
/// earlier than the last popped `at` (the clamp upholds both).
pub struct CalendarQueue<E> {
    /// Day buckets (see [`Bucket`] for the intra-bucket ordering regime).
    buckets: Vec<Bucket<E>>,
    /// `nbuckets - 1`; bucket index of day `d` is `d & mask`.
    mask: u64,
    /// Day width is `1 << shift` µs.
    shift: u32,
    /// Scan cursor: no pending bucketed event has `at >> shift < cur_day`.
    /// Pushing an earlier-day event pulls the cursor back.
    cur_day: u64,
    /// Number of events currently in buckets.
    in_buckets: usize,
    /// Far-future tier, min-ordered by `(at, seq)`: events pushed while
    /// their day was at least `nbuckets` days past the cursor.
    overflow: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Push/pop ops since the last resize. A resize is O(pending), so it
    /// is only allowed after at least `nbuckets` ops — without this, a
    /// population oscillating across a threshold re-buckets everything
    /// every few events.
    ops_since_resize: u64,
    /// The construction-time bucket count: the shrink floor. The builder
    /// sizes the queue from the world's entity counts; shrinking below
    /// that only un-does pre-sizing and causes grow/shrink churn around
    /// bursty steady-state populations.
    floor_nb: usize,
    /// Largest `len()` seen since the last resize (or peak reset). The
    /// shrink rule keys off this, not the instantaneous length: a bursty
    /// population (500 pending at a tick, 4 between ticks) must not
    /// grow/shrink every cycle.
    peak_len: usize,
    /// `ops_since_resize` value at which `peak_len` decays to the current
    /// length, so a population that genuinely collapsed can still shrink.
    peak_reset_at: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue sized for about `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        let nb = cap.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        Self {
            buckets: (0..nb).map(|_| Bucket::new()).collect(),
            mask: (nb - 1) as u64,
            shift: DEFAULT_SHIFT,
            cur_day: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            ops_since_resize: 0,
            floor_nb: nb,
            peak_len: 0,
            peak_reset_at: 16 * nb as u64,
        }
    }

    /// Number of pending events across both tiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// First day past the rolling window: events due on or after this day
    /// belong in the overflow tier.
    #[inline]
    fn window_end_day(&self) -> u64 {
        self.cur_day.saturating_add(self.nbuckets() as u64)
    }

    /// Insert an event. `s.seq` must be unique and `s.at` must be at or
    /// after the last popped timestamp (the [`FutureEventList`] clamp
    /// guarantees both).
    ///
    /// [`FutureEventList`]: crate::queue::FutureEventList
    // checker:hot-path
    #[inline]
    pub fn push(&mut self, s: Scheduled<E>) {
        let day = s.at >> self.shift;
        if day >= self.window_end_day() {
            self.overflow.push(Reverse(s));
        } else {
            if day < self.cur_day {
                // An event behind the scan cursor (legal: the cursor may
                // have skipped ahead over empty days while peeking). Walk
                // the cursor back so the scan can't miss it.
                self.cur_day = day;
            }
            self.insert_bucket(s);
        }
        self.ops_since_resize += 1;
        if self.len() > self.peak_len {
            self.peak_len = self.len();
        }
        if self.len() > 2 * self.nbuckets()
            && self.nbuckets() < MAX_BUCKETS
            && self.ops_since_resize >= self.nbuckets() as u64
        {
            // Growing mid-burst: the population is at its most
            // representative, so this is also when the width retunes.
            self.resize(self.nbuckets() * 2, true);
        }
    }

    /// Sorted insert into the event's day bucket (append in the common
    /// near-future-order case).
    #[inline]
    fn insert_bucket(&mut self, s: Scheduled<E>) {
        let b = ((s.at >> self.shift) & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        let key = (s.at, s.seq);
        if bucket.q.back().is_none_or(|e| (e.at, e.seq) < key) {
            bucket.q.push_back(s);
        } else if !bucket.dirty && bucket.q.len() <= SMALL_SORTED_LEN {
            let pos = bucket.q.partition_point(|e| (e.at, e.seq) < key);
            bucket.q.insert(pos, s);
        } else {
            bucket.q.push_back(s);
            bucket.dirty = true;
        }
        self.in_buckets += 1;
    }

    /// Pop the earliest event by `(at, seq)`.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.pop_at_most(SimTime::MAX)
    }

    /// Pop the earliest event only if it is due at or before `t` — the
    /// dispatch loop's "run until the horizon" step, positioning the
    /// cursor exactly once per dispatched event.
    // checker:hot-path
    pub fn pop_at_most(&mut self, t: SimTime) -> Option<Scheduled<E>> {
        let at = self.position_cursor()?;
        if at > t {
            return None;
        }
        let b = (self.cur_day & self.mask) as usize;
        let s = self.buckets[b].q.pop_front().expect("positioned");
        self.in_buckets -= 1;
        self.ops_since_resize += 1;
        self.maybe_decay_peak();
        Some(s)
    }

    /// Drain the whole run of events due exactly at the earliest pending
    /// instant (if that instant is ≤ `t`) into `out`, appending payloads in
    /// `(at, seq)` order, and return `(instant, count)`. The batch
    /// counterpart of [`pop_at_most`](Self::pop_at_most): the cursor is
    /// positioned once (overflow migration included) and the run is the
    /// sorted prefix of the current day's bucket — same-instant events can
    /// never live anywhere else, because an instant maps to exactly one day
    /// and [`position_cursor`](Self::position_cursor) has already migrated
    /// every overflow event whose day entered the window, sorted the
    /// bucket, and proven its front the global minimum.
    pub fn pop_run_at_most(&mut self, t: SimTime, out: &mut Vec<E>) -> Option<(SimTime, usize)> {
        let at = self.position_cursor()?;
        if at > t {
            return None;
        }
        let b = (self.cur_day & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        let mut n = 0usize;
        while bucket.q.front().is_some_and(|e| e.at == at) {
            out.push(bucket.q.pop_front().expect("checked front").event);
            n += 1;
        }
        debug_assert!(n > 0, "positioned cursor must yield at least one event");
        self.in_buckets -= n;
        self.ops_since_resize += n as u64;
        self.maybe_decay_peak();
        Some((at, n))
    }

    /// Close the peak-observation window if it is over, and shrink if the
    /// whole window stayed sparse. Called after every pop (single or
    /// batch); pushes don't need it because a growing population can't
    /// satisfy the shrink rule.
    #[inline]
    fn maybe_decay_peak(&mut self) {
        if self.ops_since_resize >= self.peak_reset_at {
            // Judge shrinking on the completed window's peak, not the
            // instantaneous length: a bursty population (500 pending at a
            // tick, 4 between ticks) must not shrink in every lull and
            // re-grow at every burst.
            let window_peak = self.peak_len;
            self.peak_len = self.len();
            self.peak_reset_at = self.ops_since_resize + 16 * self.nbuckets() as u64;
            if self.nbuckets() > self.floor_nb && window_peak < self.nbuckets() / 8 {
                // Shrinks fire when the population is low, i.e. least
                // representative — re-bucket but do NOT retune the width
                // from a lull sample (that poisons the geometry for the
                // traffic that resumes; only grows retune).
                self.resize(self.nbuckets() / 2, false);
            }
        }
    }

    /// Timestamp of the earliest pending event. Advances the scan cursor
    /// over empty days (the work is reused by the next `pop`); logically
    /// the queue is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.position_cursor()
    }

    /// `(at, seq)` key of the earliest pending event — the region
    /// scheduler's merge key. Same cursor-advancing caveat as
    /// [`peek_time`](Self::peek_time); after
    /// [`position_cursor`](Self::position_cursor) returns, the current
    /// day's bucket is sorted and its front is the proven global minimum,
    /// so the key is one front read.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.position_cursor()?;
        let b = (self.cur_day & self.mask) as usize;
        self.buckets[b].q.front().map(|e| (e.at, e.seq))
    }

    /// Like [`pop_run_at_most`](Self::pop_run_at_most) but appends whole
    /// `(at, seq, event)` entries instead of bare payloads. The region
    /// scheduler drains same-instant runs from several per-region queues
    /// and needs the `seq` keys to merge them back into the global FIFO
    /// order.
    pub fn pop_run_keyed_at_most(
        &mut self,
        t: SimTime,
        out: &mut Vec<Scheduled<E>>,
    ) -> Option<(SimTime, usize)> {
        let at = self.position_cursor()?;
        if at > t {
            return None;
        }
        let b = (self.cur_day & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        let mut n = 0usize;
        while bucket.q.front().is_some_and(|e| e.at == at) {
            out.push(bucket.q.pop_front().expect("checked front"));
            n += 1;
        }
        debug_assert!(n > 0, "positioned cursor must yield at least one event");
        self.in_buckets -= n;
        self.ops_since_resize += n as u64;
        self.maybe_decay_peak();
        Some((at, n))
    }

    /// Advance the cursor until the current day's bucket front is the
    /// global minimum, migrating overflow events whose day has entered the
    /// rolling window. Returns the minimum's timestamp, or `None` if the
    /// queue is empty.
    fn position_cursor(&mut self) -> Option<SimTime> {
        loop {
            // Pull in every overflow event the window has reached. In
            // steady state this is one heap-peek comparison.
            let wend = self.window_end_day();
            while self
                .overflow
                .peek()
                .is_some_and(|Reverse(e)| (e.at >> self.shift) < wend)
            {
                let Reverse(e) = self.overflow.pop().expect("peeked");
                let day = e.at >> self.shift;
                if day < self.cur_day {
                    // Migration can land behind the cursor: a lap-guard
                    // jump_to_min may have re-anchored the cursor on the
                    // bucketed minimum's day, skipping the per-advance
                    // migration checks in between — and the overflow head
                    // can precede that bucketed minimum. Pull the cursor
                    // back exactly as push does, or the scan would pop a
                    // later bucketed event first (time going backwards).
                    self.cur_day = day;
                }
                self.insert_bucket(e);
            }
            if self.in_buckets == 0 {
                // Calendar dry: jump the window to the earliest overflow
                // event (the next loop iteration migrates it), or report
                // empty.
                let head_day = self.overflow.peek().map(|Reverse(e)| e.at >> self.shift)?;
                self.cur_day = head_day;
                continue;
            }
            let mut scanned = 0usize;
            loop {
                let b = (self.cur_day & self.mask) as usize;
                self.buckets[b].ensure_sorted();
                if let Some(front) = self.buckets[b].q.front() {
                    // The front may belong to a later day that collides
                    // mod nbuckets (possible after a cursor pull-back);
                    // only a front due *this* day is the proven minimum.
                    // Compare day indices, not `at < day_end`: a day-end
                    // bound computed in timestamp space overflows for days
                    // near u64::MAX (and can never exceed u64::MAX, so an
                    // event at the very end of time would fail a strict
                    // comparison forever).
                    if front.at >> self.shift == self.cur_day {
                        return Some(front.at);
                    }
                }
                self.cur_day += 1;
                scanned += 1;
                if self
                    .overflow
                    .peek()
                    .is_some_and(|Reverse(e)| (e.at >> self.shift) < self.window_end_day())
                {
                    // The advancing window reached an overflow event that
                    // may precede everything bucketed — migrate first.
                    break;
                }
                if scanned > self.nbuckets() {
                    // A full lap found nothing: every bucketed event hides
                    // behind a mod-collision. Locate the minimum directly
                    // and re-anchor the cursor on its day.
                    self.jump_to_min();
                    break;
                }
            }
        }
    }

    /// Point the cursor at the day of the smallest `(at, seq)` among
    /// bucket fronts (sorted first where needed — each sorted front is its
    /// bucket's minimum).
    fn jump_to_min(&mut self) {
        let mut best: Option<(SimTime, u64)> = None;
        for b in 0..self.buckets.len() {
            self.buckets[b].ensure_sorted();
            if let Some(e) = self.buckets[b].q.front() {
                if best.is_none_or(|k| (e.at, e.seq) < k) {
                    best = Some((e.at, e.seq));
                }
            }
        }
        if let Some((at, _)) = best {
            self.cur_day = at >> self.shift;
        }
    }

    /// Re-bucket everything into `new_nb` buckets; when `retune` is set,
    /// also re-run the width tuning rule over the pending events (see the
    /// module docs for the rule and for why only grows retune).
    fn resize(&mut self, new_nb: usize, retune: bool) {
        self.ops_since_resize = 0;
        let new_nb = new_nb.clamp(MIN_BUCKETS, MAX_BUCKETS);
        let old_pos = self
            .cur_day
            .checked_mul(1u64 << self.shift)
            .unwrap_or(SimTime::MAX);
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len());
        for bucket in &mut self.buckets {
            all.extend(bucket.q.drain(..));
            bucket.dirty = false;
        }
        while let Some(Reverse(e)) = self.overflow.pop() {
            all.push(e);
        }
        all.sort_unstable_by_key(|e| (e.at, e.seq));
        if retune {
            if let Some(s) = tune_shift(&all) {
                self.shift = s;
            }
        }
        if new_nb != self.nbuckets() {
            self.buckets = (0..new_nb).map(|_| Bucket::new()).collect();
            self.mask = (new_nb - 1) as u64;
        }
        self.in_buckets = 0;
        self.peak_len = all.len();
        self.peak_reset_at = 16 * new_nb as u64;
        // Anchor the window at the earliest pending event (or keep the
        // cursor's position, converted to the new width, when empty).
        self.cur_day = match all.first() {
            Some(e) => e.at >> self.shift,
            None => old_pos >> self.shift,
        };
        let wend = self.window_end_day();
        for e in all {
            if e.at >> self.shift >= wend {
                self.overflow.push(Reverse(e));
            } else {
                // Sorted order: each insert appends to its bucket.
                self.insert_bucket(e);
            }
        }
    }
}

/// Brown's width rule over the sorted pending set, made robust for bursty
/// populations: 3 × the **lower-quartile** gap between *distinct
/// instants* across the whole pending set, rounded up to a power of two
/// (returned as the exponent), floored at 1 µs.
///
/// * Per distinct instant, not per event: massed same-timestamp events
///   cost a bucket nothing (their seq-ordered appends stay sorted and pop
///   contiguously), so a bucket should hold a few *instants*, not a few
///   events — and a fixed-size sample prefix can sit entirely inside one
///   massed instant, so the rule reads the full set (it is only run
///   inside a resize, which already drained and sorted everything).
/// * Lower quartile, not the mean or median: the cost of a too-wide day
///   (whole instants colliding in one bucket that re-sorts on every
///   interleaved insert) far exceeds the cost of a too-narrow day (a
///   cheap empty-bucket skip), and a burst-structured population contains
///   giant inter-burst gaps that would otherwise swamp the µs-scale
///   intra-burst gaps the width must isolate — so the rule biases narrow.
/// * `None` keeps the current width when fewer than `TUNE_MIN_SAMPLE`
///   events (or no distinct gaps) are pending — a transient lull's gaps
///   say nothing about the traffic that resumes after it.
fn tune_shift<E>(sorted: &[Scheduled<E>]) -> Option<u32> {
    if sorted.len() < TUNE_MIN_SAMPLE {
        return None;
    }
    let mut gaps: Vec<SimTime> = sorted
        .windows(2)
        .filter(|w| w[1].at != w[0].at)
        .map(|w| w[1].at - w[0].at)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_unstable();
    let quartile = gaps[gaps.len() / 4];
    let width = (quartile * 3).max(1).next_power_of_two();
    Some(width.trailing_zeros().min(MAX_SHIFT))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(q: &mut CalendarQueue<u64>, at: SimTime, seq: u64) {
        q.push(Scheduled {
            at,
            seq,
            event: seq,
        });
    }

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some(s) = q.pop() {
            out.push((s.at, s.seq));
        }
        out
    }

    #[test]
    fn pops_sorted_by_time_then_seq() {
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, 30, 0);
        push(&mut q, 10, 1);
        push(&mut q, 10, 2);
        push(&mut q, 20, 3);
        assert_eq!(drain(&mut q), vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn massed_ties_stay_fifo() {
        let mut q = CalendarQueue::with_capacity(0);
        for seq in 0..1_000 {
            push(&mut q, 5_000, seq);
        }
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 1_000);
        for (i, &(at, seq)) in popped.iter().enumerate() {
            assert_eq!((at, seq), (5_000, i as u64));
        }
    }

    #[test]
    fn far_future_goes_through_overflow_and_back() {
        let mut q = CalendarQueue::with_capacity(0);
        // Far beyond the initial window (32 buckets × 16 µs = 512 µs).
        push(&mut q, 3_000_000, 0);
        push(&mut q, 100, 1);
        push(&mut q, 2_999_999, 2);
        assert!(q.overflow.len() >= 2, "far events must overflow");
        assert_eq!(
            drain(&mut q),
            vec![(100, 1), (2_999_999, 2), (3_000_000, 0)]
        );
    }

    #[test]
    fn overflow_event_reached_by_a_rolling_window_precedes_later_buckets() {
        // Regression shape for the rolling-window migration: an event goes
        // to overflow because it's beyond the window *at push time*; the
        // cursor then advances and a later event is pushed bucketed beyond
        // it. The overflow event must still pop first.
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, 10, 0);
        push(&mut q, 10_000, 1); // beyond the initial 512 µs window
        assert_eq!(q.overflow.len(), 1);
        assert_eq!(q.pop().map(|s| (s.at, s.seq)), Some((10, 0)));
        // Cursor is near day(10); window now covers 10_000's day, so this
        // lands bucketed even though 10_000 sits in overflow.
        push(&mut q, 10_500, 2);
        assert_eq!(drain(&mut q), vec![(10_000, 1), (10_500, 2)]);
    }

    #[test]
    fn push_behind_the_peeked_cursor_is_not_lost() {
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, 400, 0);
        // Peek walks the cursor up to day(400).
        assert_eq!(q.peek_time(), Some(400));
        // A later push for an earlier (but still future) time must pull
        // the cursor back.
        push(&mut q, 50, 1);
        assert_eq!(drain(&mut q), vec![(50, 1), (400, 0)]);
    }

    #[test]
    fn grows_shrinks_and_retunes_without_losing_events() {
        let mut q = CalendarQueue::with_capacity(0);
        // Push enough to force several grows (threshold: 2 × nbuckets).
        let n = 10_000u64;
        for seq in 0..n {
            push(&mut q, (seq * 7) % 50_000, seq);
        }
        assert!(q.nbuckets() > MIN_BUCKETS, "grow never triggered");
        let peak = q.nbuckets();
        let popped = drain(&mut q);
        assert_eq!(popped.len(), n as usize);
        for w in popped.windows(2) {
            assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
        // Now churn a tiny population long enough to cross pressure
        // windows: the occupancy rule must shrink the oversized calendar
        // back down (the cooldown spreads this over many ops).
        let mut at = 60_000u64;
        let mut seq = n;
        for i in 0..4u64 {
            push(&mut q, at + i, seq);
            seq += 1;
        }
        for _ in 0..peak as u64 * 40 {
            let s = q.pop().expect("churn population");
            at = s.at + 10;
            push(&mut q, at, seq);
            seq += 1;
        }
        assert!(q.nbuckets() < peak, "shrink never triggered");
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        // Reference: an unsorted Vec min-scanned per pop.
        let mut q = CalendarQueue::with_capacity(0);
        let mut reference: Vec<(SimTime, u64)> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0;
        for seq in 0..20_000u64 {
            let op = step() % 8;
            if op == 0 || op == 1 {
                if let Some(s) = q.pop() {
                    let min = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &k)| k)
                        .map(|(i, _)| i)
                        .expect("reference non-empty");
                    assert_eq!((s.at, s.seq), reference.swap_remove(min));
                    now = s.at;
                }
            } else if op == 2 {
                // Cursor-advancing peek: must report the reference min
                // without disturbing subsequent ordering.
                let want = reference.iter().map(|&(at, _)| at).min();
                assert_eq!(q.peek_time(), want);
            } else if op == 3 {
                // Horizon-limited pop: advances the cursor even when it
                // returns nothing (the precondition for the pull-back and
                // overflow-migration edge cases).
                let horizon = now + step() % 2_000;
                let min = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &k)| k)
                    .map(|(i, _)| i);
                match q.pop_at_most(horizon) {
                    Some(s) => {
                        let min = min.expect("reference non-empty");
                        assert!(s.at <= horizon);
                        assert_eq!((s.at, s.seq), reference.swap_remove(min));
                        now = s.at;
                    }
                    None => {
                        assert!(min.is_none_or(|i| reference[i].0 > horizon));
                    }
                }
            } else {
                // Mixture of horizons, clamped to now like the FEL does.
                let at = now
                    + match step() % 10 {
                        0..=6 => step() % 300,                // short horizon
                        7 | 8 => step() % 20_000,             // mid
                        _ => 1_000_000 + step() % 10_000_000, // far future
                    };
                push(&mut q, at, seq);
                reference.push((at, seq));
            }
        }
        while let Some(s) = q.pop() {
            let min = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, &k)| k)
                .map(|(i, _)| i)
                .expect("reference non-empty");
            assert_eq!((s.at, s.seq), reference.swap_remove(min));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn overflow_migration_behind_jumped_cursor_pulls_cursor_back() {
        // Regression (found by adversarial fuzzing in review): with the
        // default geometry (32 buckets × 16 µs), a pop_at_most dry-jump
        // anchors the cursor far ahead; pull-back pushes then shrink the
        // window so a mid-range event overflows; after draining the near
        // events, the scan's lap guard jumps straight to the far bucketed
        // day — past the overflow head — and the subsequent migration
        // inserted the overflow event *behind* the cursor without pulling
        // it back, popping 29927 before 23198 (time going backwards).
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, 19_445, 0);
        assert_eq!(q.pop().map(|s| s.at), Some(19_445));
        push(&mut q, 29_927, 1); // beyond the window -> overflow
        assert!(q.pop_at_most(20_857).is_none()); // dry-jump migrates it
        push(&mut q, 20_002, 2); // pulls the cursor back
        push(&mut q, 19_445, 3); // massed with the popped instant
        push(&mut q, 23_198, 4); // beyond the pulled-back window -> overflow
        assert_eq!(q.pop().map(|s| (s.at, s.seq)), Some((19_445, 3)));
        assert_eq!(q.pop().map(|s| s.at), Some(20_002));
        assert_eq!(q.pop().map(|s| s.at), Some(23_198));
        assert_eq!(q.pop().map(|s| s.at), Some(29_927));
        assert!(q.is_empty());
    }

    #[test]
    fn adversarial_differential_fuzz_with_batch_drains_and_dry_jumps() {
        // Differential check against a sorted-Vec reference over an op mix
        // weighted toward the edge cases that have historically broken the
        // geometry: dry-jump probes (horizon pops/batch-pops that return
        // nothing but advance the cursor and migrate overflow), pushes at
        // earlier-but-still-future instants right after a dry jump, massed
        // same-instant runs, and enough population swing to cross grow and
        // shrink resizes repeatedly.
        for seed in 1u64..=8 {
            let mut q = CalendarQueue::with_capacity(0);
            let mut reference: Vec<(SimTime, u64)> = Vec::new();
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut now: SimTime = 0;
            let mut seq = 0u64;
            let mut batch: Vec<u64> = Vec::new();
            for _ in 0..60_000u64 {
                match step() % 10 {
                    0 | 1 => {
                        // Single pop.
                        if let Some(s) = q.pop() {
                            reference.sort_unstable();
                            assert_eq!((s.at, s.seq), reference.remove(0), "seed {seed}");
                            now = s.at;
                        }
                    }
                    2 | 3 => {
                        // Batch drain of the earliest run, full horizon.
                        match q.pop_run_at_most(SimTime::MAX, &mut batch) {
                            Some((at, n)) => {
                                reference.sort_unstable();
                                assert_eq!(n, batch.len());
                                assert!(n >= 1);
                                let run: Vec<(SimTime, u64)> = reference.drain(..n).collect();
                                assert!(
                                    run.iter().all(|&(t, _)| t == at),
                                    "seed {seed}: drained run crosses instants: {run:?}"
                                );
                                assert_eq!(
                                    batch,
                                    run.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                                    "seed {seed}: run out of FIFO order"
                                );
                                assert!(
                                    reference.first().map(|&(t, _)| t) != Some(at),
                                    "seed {seed}: drain left same-instant events behind"
                                );
                                now = at;
                            }
                            None => assert!(reference.is_empty(), "seed {seed}"),
                        }
                        batch.clear();
                    }
                    4 => {
                        // Dry-or-not horizon probe (single).
                        let horizon = now + step() % 3_000;
                        reference.sort_unstable();
                        match q.pop_at_most(horizon) {
                            Some(s) => {
                                assert!(s.at <= horizon);
                                assert_eq!((s.at, s.seq), reference.remove(0));
                                now = s.at;
                            }
                            None => {
                                assert!(
                                    reference.first().is_none_or(|&(t, _)| t > horizon),
                                    "seed {seed}: dry probe hid a due event"
                                );
                            }
                        }
                    }
                    5 => {
                        // Dry-or-not horizon probe (batch).
                        let horizon = now + step() % 3_000;
                        reference.sort_unstable();
                        match q.pop_run_at_most(horizon, &mut batch) {
                            Some((at, n)) => {
                                assert!(at <= horizon);
                                let run: Vec<(SimTime, u64)> = reference.drain(..n).collect();
                                assert!(run.iter().all(|&(t, _)| t == at));
                                assert_eq!(batch, run.iter().map(|&(_, s)| s).collect::<Vec<_>>());
                                now = at;
                            }
                            None => {
                                assert!(
                                    reference.first().is_none_or(|&(t, _)| t > horizon),
                                    "seed {seed}: dry batch probe hid a due event"
                                );
                            }
                        }
                        batch.clear();
                    }
                    6 => {
                        // Push at an earlier-but-still-future instant: lands
                        // behind wherever the last dry jump left the cursor.
                        let at = now + 1 + step() % 64;
                        push(&mut q, at, seq);
                        reference.push((at, seq));
                        seq += 1;
                    }
                    7 => {
                        // Massed tie burst at one future instant.
                        let at = now + step() % 2_000;
                        let burst = 1 + step() % 40;
                        for _ in 0..burst {
                            push(&mut q, at, seq);
                            reference.push((at, seq));
                            seq += 1;
                        }
                    }
                    _ => {
                        // Mixed-horizon pushes (short / mid / overflow-far).
                        let at = now
                            + match step() % 10 {
                                0..=6 => step() % 500,
                                7 | 8 => step() % 30_000,
                                _ => 600_000 + step() % 5_000_000,
                            };
                        push(&mut q, at, seq);
                        reference.push((at, seq));
                        seq += 1;
                    }
                }
                assert_eq!(q.len(), reference.len(), "seed {seed}: length diverged");
            }
            reference.sort_unstable();
            let drained = drain(&mut q);
            assert_eq!(drained, reference, "seed {seed}: final drain diverged");
        }
    }

    #[test]
    fn timestamps_near_u64_max_terminate() {
        // Regression: day_end computed with checked_shl wrapped for days
        // near u64::MAX (shl only guards the shift amount, not value
        // overflow), so the scan never found the event and pop() hung.
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, SimTime::MAX - 3, 0);
        push(&mut q, SimTime::MAX, 1);
        push(&mut q, 100, 2);
        assert_eq!(
            drain(&mut q),
            vec![(100, 2), (SimTime::MAX - 3, 0), (SimTime::MAX, 1)]
        );
    }

    #[test]
    fn resize_mid_window_reanchors_the_peak_decay_point() {
        // The shrink rule works in observation windows of 16 × nbuckets
        // ops, anchored at the last resize: `ops_since_resize` restarts at
        // 0 and `peak_reset_at` must be re-derived from the *new* bucket
        // count. A resize landing mid-window must not leave the old
        // window's anchor in place (decay firing at a stale op count —
        // too early for a grow, or pinned beyond reach so a collapsed
        // population never shrinks). This drives a grow mid-window and
        // pins the exact op count of the next decay.
        let mut q: CalendarQueue<u64> = CalendarQueue::with_capacity(0);
        assert_eq!(q.nbuckets(), MIN_BUCKETS);
        assert_eq!(q.peak_reset_at, 16 * MIN_BUCKETS as u64);
        // Burn ~a third of the first observation window without resizing:
        // push/pop pairs at a tiny population.
        let mut seq = 0u64;
        let mut at = 100u64;
        while q.ops_since_resize < (16 * MIN_BUCKETS as u64) / 3 {
            push(&mut q, at, seq);
            seq += 1;
            at = q.pop().expect("just pushed").at + 3;
        }
        assert_eq!(q.nbuckets(), MIN_BUCKETS, "no resize yet");
        // Now force a grow mid-window: distinct instants so the population
        // exceeds 2 × nbuckets.
        while q.nbuckets() == MIN_BUCKETS {
            push(&mut q, at + seq * 5, seq);
            seq += 1;
        }
        let nb = q.nbuckets();
        assert_eq!(nb, 2 * MIN_BUCKETS, "exactly one grow");
        // The decay window must be re-anchored at the resize: a full
        // 16 × new_nbuckets ops measured from ops_since_resize == 0, not
        // the stale pre-resize anchor.
        assert_eq!(q.ops_since_resize, 0, "resize re-anchors the op counter");
        assert_eq!(
            q.peak_reset_at,
            16 * nb as u64,
            "resize must re-anchor the peak-decay point to the new window"
        );
        // And the decay really fires exactly when the re-anchored window
        // closes: drain to a tiny population (peak_len stays at the burst
        // high-water until the window ends), then churn pop/push pairs and
        // watch peak_len decay at precisely ops_since_resize ==
        // peak_reset_at.
        let high_water = q.peak_len;
        assert!(high_water > 2 * MIN_BUCKETS);
        while q.len() > 2 {
            q.pop().expect("draining");
        }
        let target = q.peak_reset_at;
        while q.ops_since_resize < target - 1 {
            assert_eq!(
                q.peak_len, high_water,
                "peak decayed early, at op {} of {}",
                q.ops_since_resize, target
            );
            let next_at = at + 1_000_000 + q.ops_since_resize * 7;
            push(&mut q, next_at, seq);
            seq += 1;
            q.pop().expect("churn population");
        }
        // The next op crosses the anchor: the window closes and the peak
        // collapses to the current (tiny) population.
        q.pop().expect("non-empty");
        assert!(
            q.peak_len <= 3,
            "window close must decay peak_len to the live population, got {}",
            q.peak_len
        );
    }

    #[test]
    fn len_counts_both_tiers() {
        let mut q = CalendarQueue::with_capacity(0);
        push(&mut q, 10, 0);
        push(&mut q, 99_000_000, 1);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
