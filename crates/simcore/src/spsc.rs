//! Bounded single-producer single-consumer ring — the cross-region event
//! transport.
//!
//! A [`RegionScheduler`](crate::region::RegionScheduler) pair that ran on
//! two real threads would exchange cross-region `Deliver` events over one
//! of these rings per directed cut edge: the sender enqueues the 8-byte
//! record handle (`SlabRef`), the receiver drains at its next safe-time
//! grant. The merged in-process scheduler does not need the ring on its
//! hot path (see the `region` module docs for why the shared-memory merge
//! is the CMB fixed point), but the transport is built, tested and
//! micro-benchmarked here so the distributed deployment story is concrete
//! rather than hypothetical — `benches` reports its throughput next to
//! `batch_drain`.
//!
//! Design: the classic Lamport ring with cached indices. One fixed
//! power-of-two slot array; the producer owns `tail`, the consumer owns
//! `head`; each side keeps a cached copy of the other's index and only
//! re-reads the shared atomic (an acquire load) when the cache says the
//! ring looks full/empty. Steady-state push/pop is therefore one relaxed
//! load, one slot write/read and one release store — no locks, no CAS, no
//! allocation.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    /// Next slot the consumer will read. Owned (written) by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Owned (written) by the producer.
    tail: AtomicUsize,
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// The ring hands each value from exactly one thread to exactly one other
// thread; `T: Send` is the only requirement.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access here: drop whatever is still queued.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            let slot = self.slots[i & self.mask].get();
            // SAFETY: slots in [head, tail) hold initialized values that
            // were never popped; we have `&mut self`.
            unsafe { (*slot).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The sending half of a bounded SPSC ring. `!Clone` — exactly one
/// producer.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the consumer's `head`; refreshed only when the ring
    /// looks full.
    head_cache: usize,
    /// Local copy of our own `tail` (authoritative; the atomic is the
    /// published view).
    tail: usize,
}

/// The receiving half of a bounded SPSC ring. `!Clone` — exactly one
/// consumer.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the producer's `tail`; refreshed only when the ring
    /// looks empty.
    tail_cache: usize,
    /// Local copy of our own `head`.
    head: usize,
}

/// Create a bounded SPSC ring holding at least `cap` elements (rounded up
/// to a power of two, minimum 2).
pub fn ring<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    let cap = cap.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        mask: cap - 1,
        slots,
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
            tail: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
            head: 0,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Slots available for this ring (its fixed capacity).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Enqueue `v`, or hand it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.head_cache) == cap {
            // Looks full — refresh the cache from the consumer's side.
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) == cap {
                return Err(v);
            }
        }
        let slot = self.inner.slots[self.tail & self.inner.mask].get();
        // SAFETY: the slot at `tail` is outside [head, tail) — not owned
        // by the consumer — and we are the only producer.
        unsafe { (*slot).write(v) };
        self.tail = self.tail.wrapping_add(1);
        // Release: the slot write happens-before the consumer's acquire
        // load of `tail`.
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of queued elements (from the producer's view; exact in
    /// single-threaded use, a lower bound of consumption otherwise).
    pub fn len(&mut self) -> usize {
        self.head_cache = self.inner.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.head_cache)
    }

    /// Whether the ring looks empty from the producer's side.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeue the oldest element, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Looks empty — refresh the cache from the producer's side.
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = self.inner.slots[self.head & self.inner.mask].get();
        // SAFETY: head != tail, so this slot holds a value the producer
        // published with a release store we have acquired.
        let v = unsafe { (*slot).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        // Release: the slot read happens-before the producer reusing it.
        self.inner.head.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Number of queued elements visible to the consumer.
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.inner.tail.load(Ordering::Acquire);
        self.tail_cache.wrapping_sub(self.head)
    }

    /// Whether the ring is empty from the consumer's view.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// Reusable epoch barrier — the wake/park signal for thread-per-region
/// execution.
///
/// Each PDES epoch has two synchronization points (publish clocks /
/// exchange messages); every region thread parks on the barrier until the
/// last arrival wakes the cohort. A generation counter makes the barrier
/// reusable without re-arming. The `parallel_epochs` micro-bench measures
/// exactly this wait cost at K∈{2,4}.
pub struct EpochBarrier {
    n: u32,
    state: std::sync::Mutex<(u32, u64)>,
    cv: std::sync::Condvar,
}

impl EpochBarrier {
    /// Barrier for a cohort of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier cohort must be non-empty");
        Self {
            n: n as u32,
            state: std::sync::Mutex::new((0, 0)),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Block until all `n` threads of the cohort have called `wait` for
    /// this generation; the last arrival wakes the rest.
    pub fn wait(&self) {
        let mut s = self.state.lock().expect("barrier poisoned");
        let generation = s.1;
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 = s.1.wrapping_add(1);
            drop(s);
            self.cv.notify_all();
            return;
        }
        while s.1 == generation {
            s = self.cv.wait(s).expect("barrier poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = ring::<u64>(8);
        assert_eq!(tx.capacity(), 8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring full");
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = ring::<usize>(4);
        for round in 0..1_000 {
            for i in 0..3 {
                tx.push(round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.pop(), Some(round * 3 + i));
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drops_undelivered_elements() {
        use std::rc::Rc;
        // Rc is !Send, so wrap in a Send newtype for the test: the ring
        // itself never crosses threads here.
        struct Tracked(#[allow(dead_code)] Rc<()>);
        unsafe impl Send for Tracked {}
        let counter = Rc::new(());
        {
            let (mut tx, rx) = ring::<Tracked>(8);
            for _ in 0..5 {
                assert!(tx.push(Tracked(Rc::clone(&counter))).is_ok());
            }
            drop(tx);
            drop(rx);
        }
        assert_eq!(Rc::strong_count(&counter), 1, "queued elements leaked");
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(1024);
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => std::hint::spin_loop(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn epoch_barrier_synchronizes_many_generations() {
        use std::sync::atomic::{AtomicU64, Ordering};
        const THREADS: usize = 4;
        const EPOCHS: u64 = 2_000;
        let barrier = EpochBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for epoch in 0..EPOCHS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between two waits every thread must observe the
                        // full cohort's increments for the finished epoch.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (epoch + 1) * THREADS as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), EPOCHS * THREADS as u64);
    }
}
