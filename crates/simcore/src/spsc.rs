//! Bounded single-producer single-consumer ring — the cross-region event
//! transport.
//!
//! A [`RegionScheduler`](crate::region::RegionScheduler) pair that ran on
//! two real threads would exchange cross-region `Deliver` events over one
//! of these rings per directed cut edge: the sender enqueues the 8-byte
//! record handle (`SlabRef`), the receiver drains at its next safe-time
//! grant. The merged in-process scheduler does not need the ring on its
//! hot path (see the `region` module docs for why the shared-memory merge
//! is the CMB fixed point), but the transport is built, tested and
//! micro-benchmarked here so the distributed deployment story is concrete
//! rather than hypothetical — `benches` reports its throughput next to
//! `batch_drain`.
//!
//! Design: the classic Lamport ring with cached indices. One fixed
//! power-of-two slot array; the producer owns `tail`, the consumer owns
//! `head`; each side keeps a cached copy of the other's index and only
//! re-reads the shared atomic (an acquire load) when the cache says the
//! ring looks full/empty. Steady-state push/pop is therefore one relaxed
//! load, one slot write/read and one release store — no locks, no CAS, no
//! allocation.
//!
//! All shared state goes through the [`crate::sync`] facade, so the same
//! source is model-checked across thousands of thread interleavings under
//! `--features interleave-check` (see `tests/interleave.rs`) and compiles
//! to the bare std primitives otherwise.

use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::sync::{AtomicUsize, Condvar, Mutex, Ordering, UnsafeCell};

struct Inner<T> {
    /// Next slot the consumer will read. Owned (written) by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Owned (written) by the producer.
    tail: AtomicUsize,
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the ring hands each value from exactly one thread to exactly
// one other thread, with every slot access ordered by an acquire load of
// the release-published index; `T: Send` is the only requirement.
unsafe impl<T: Send> Sync for Inner<T> {}
// SAFETY: as above — the ring owns plain `T` values and transfers them
// across threads at most once.
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access here (`&mut self` — the last Arc clone is
        // gone): drop whatever is still queued. Acquire pairs with the
        // producer's release publication of `tail`, so the slot values in
        // [head, tail) are fully visible. The indices are free-running
        // and may have wrapped `usize`; `i != tail` with `wrapping_add`
        // walks exactly `tail - head` (mod 2^64) live slots, which the
        // full/empty invariant bounds by the capacity.
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            self.slots[i & self.mask].with_mut(|slot| {
                // SAFETY: slots in [head, tail) hold initialized values
                // that were never popped; we have `&mut self`.
                unsafe { (*slot).assume_init_drop() }
            });
            i = i.wrapping_add(1);
        }
    }
}

/// The sending half of a bounded SPSC ring. `!Clone` — exactly one
/// producer.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the consumer's `head`; refreshed only when the ring
    /// looks full.
    head_cache: usize,
    /// Local copy of our own `tail` (authoritative; the atomic is the
    /// published view).
    tail: usize,
}

/// The receiving half of a bounded SPSC ring. `!Clone` — exactly one
/// consumer.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the producer's `tail`; refreshed only when the ring
    /// looks empty.
    tail_cache: usize,
    /// Local copy of our own `head`.
    head: usize,
}

/// Create a bounded SPSC ring holding at least `cap` elements (rounded up
/// to a power of two, minimum 2).
pub fn ring<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    ring_with_start(cap, 0)
}

/// [`ring`], with both indices starting at `start` instead of 0.
///
/// The ring's indices are free-running and wrap `usize`; starting them
/// near `usize::MAX` exercises the wraparound paths directly. Test-only
/// plumbing — real rings always start at 0.
#[doc(hidden)]
pub fn ring_with_start<T: Send>(cap: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let cap = cap.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        head: AtomicUsize::new(start),
        tail: AtomicUsize::new(start),
        mask: cap - 1,
        slots,
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: start,
            tail: start,
        },
        Consumer {
            inner,
            tail_cache: start,
            head: start,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Slots available for this ring (its fixed capacity).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Enqueue `v`, or hand it back if the ring is full.
    // checker:hot-path
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.head_cache) == cap {
            // Looks full — refresh the cache from the consumer's side.
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) == cap {
                return Err(v);
            }
        }
        self.inner.slots[self.tail & self.inner.mask].with_mut(|slot| {
            // SAFETY: the slot at `tail` is outside [head, tail) — not
            // owned by the consumer — and we are the only producer.
            unsafe { (*slot).write(v) };
        });
        self.tail = self.tail.wrapping_add(1);
        // Release: the slot write happens-before the consumer's acquire
        // load of `tail`.
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of queued elements (from the producer's view; exact in
    /// single-threaded use, a lower bound of consumption otherwise).
    pub fn len(&mut self) -> usize {
        self.head_cache = self.inner.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.head_cache)
    }

    /// Whether the ring looks empty from the producer's side.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeue the oldest element, or `None` if the ring is empty.
    // checker:hot-path
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Looks empty — refresh the cache from the producer's side.
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let v = self.inner.slots[self.head & self.inner.mask].with(|slot| {
            // SAFETY: head != tail, so this slot holds a value the
            // producer published with a release store we have acquired.
            unsafe { (*slot).assume_init_read() }
        });
        self.head = self.head.wrapping_add(1);
        // Release: the slot read happens-before the producer reusing it.
        self.inner.head.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Number of queued elements visible to the consumer.
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.inner.tail.load(Ordering::Acquire);
        self.tail_cache.wrapping_sub(self.head)
    }

    /// Whether the ring is empty from the consumer's view.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// Reusable epoch barrier — the wake/park signal for thread-per-region
/// execution.
///
/// Each PDES epoch has two synchronization points (publish clocks /
/// exchange messages); every region thread parks on the barrier until the
/// last arrival wakes the cohort. A generation counter makes the barrier
/// reusable without re-arming. The `parallel_epochs` micro-bench measures
/// exactly this wait cost at K∈{2,4}.
pub struct EpochBarrier {
    n: u32,
    state: Mutex<(u32, u64)>,
    cv: Condvar,
}

impl EpochBarrier {
    /// Barrier for a cohort of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier cohort must be non-empty");
        Self {
            n: n as u32,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` threads of the cohort have called `wait` for
    /// this generation; the last arrival wakes the rest.
    pub fn wait(&self) {
        let mut s = self.state.lock().expect("barrier poisoned");
        let generation = s.1;
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 = s.1.wrapping_add(1);
            drop(s);
            self.cv.notify_all();
            return;
        }
        while s.1 == generation {
            s = self.cv.wait(s).expect("barrier poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = ring::<u64>(8);
        assert_eq!(tx.capacity(), 8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring full");
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = ring::<usize>(4);
        for round in 0..1_000 {
            for i in 0..3 {
                tx.push(round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.pop(), Some(round * 3 + i));
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drops_undelivered_elements() {
        use std::rc::Rc;
        // Rc is !Send, so wrap in a Send newtype for the test: the ring
        // itself never crosses threads here.
        struct Tracked(#[allow(dead_code)] Rc<()>);
        // SAFETY: test-only; the ring never leaves this thread, so the
        // `Rc` clones are never shared across threads.
        unsafe impl Send for Tracked {}
        let counter = Rc::new(());
        {
            let (mut tx, rx) = ring::<Tracked>(8);
            for _ in 0..5 {
                assert!(tx.push(Tracked(Rc::clone(&counter))).is_ok());
            }
            drop(tx);
            drop(rx);
        }
        assert_eq!(Rc::strong_count(&counter), 1, "queued elements leaked");
    }

    #[test]
    fn index_wraparound_push_pop_and_drop() {
        use std::rc::Rc;
        #[derive(Debug)]
        struct Tracked(#[allow(dead_code)] Rc<()>, usize);
        // SAFETY: test-only; the ring never leaves this thread.
        unsafe impl Send for Tracked {}
        let counter = Rc::new(());
        // Start the free-running indices 3 slots before usize::MAX so
        // both the index arithmetic and Drop's `i != tail` walk cross
        // the wraparound boundary with live elements in flight.
        let start = usize::MAX - 3;
        {
            let (mut tx, mut rx) = ring_with_start::<Tracked>(8, start);
            for i in 0..8 {
                tx.push(Tracked(Rc::clone(&counter), i)).unwrap();
            }
            // Pop three (these straddle usize::MAX), leaving five queued
            // with head < tail only in the wrapping sense.
            for i in 0..3 {
                assert_eq!(rx.pop().expect("queued").1, i);
            }
            assert_eq!(rx.len(), 5);
            assert_eq!(tx.len(), 5);
            // Refill across the boundary and verify FIFO survives.
            for i in 8..11 {
                tx.push(Tracked(Rc::clone(&counter), i)).unwrap();
            }
            assert_eq!(rx.pop().expect("queued").1, 3);
            // Drop with 7 elements queued and wrapped indices: Drop's
            // walk must free exactly the live range, no more, no less.
        }
        assert_eq!(
            Rc::strong_count(&counter),
            1,
            "wrapped-index drop leaked or double-freed"
        );
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(1024);
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => std::hint::spin_loop(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn epoch_barrier_synchronizes_many_generations() {
        use crate::sync::{AtomicU64, Ordering};
        const THREADS: usize = 4;
        const EPOCHS: u64 = 2_000;
        let barrier = EpochBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for epoch in 0..EPOCHS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between two waits every thread must observe the
                        // full cohort's increments for the finished epoch.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (epoch + 1) * THREADS as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), EPOCHS * THREADS as u64);
    }
}
