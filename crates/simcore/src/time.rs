//! Simulated time.
//!
//! All simulation timestamps and durations are expressed in **microseconds**
//! as a plain `u64`. The paper reports milliseconds and seconds; helper
//! conversion functions keep call sites readable.

/// A point in simulated time (microseconds since simulation start), or a
/// duration in microseconds — the two are used interchangeably, as is common
/// in discrete-event simulators.
pub type SimTime = u64;

/// Microseconds per millisecond.
pub const MICROS_PER_MS: SimTime = 1_000;
/// Microseconds per second.
pub const MICROS_PER_SEC: SimTime = 1_000_000;
/// 10^9, used for Gbps↔bytes/µs conversions.
pub const GIGA: u64 = 1_000_000_000;

/// Convert whole milliseconds to [`SimTime`].
#[inline]
pub const fn ms(v: u64) -> SimTime {
    v * MICROS_PER_MS
}

/// Convert whole seconds to [`SimTime`].
#[inline]
pub const fn secs(v: u64) -> SimTime {
    v * MICROS_PER_SEC
}

/// Render a [`SimTime`] as fractional milliseconds (for reporting).
#[inline]
pub fn as_ms(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_MS as f64
}

/// Render a [`SimTime`] as fractional seconds (for reporting).
#[inline]
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

/// Transfer duration of `bytes` over a link of `gbps` gigabits per second.
///
/// Rounds up to at least one microsecond for non-empty payloads so that
/// zero-duration transfers cannot reorder against their triggers.
#[inline]
pub fn transfer_time(bytes: u64, gbps: f64) -> SimTime {
    if bytes == 0 {
        return 0;
    }
    let bytes_per_us = gbps * GIGA as f64 / 8.0 / MICROS_PER_SEC as f64;
    ((bytes as f64 / bytes_per_us).ceil() as SimTime).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(ms(3), 3_000);
        assert_eq!(secs(2), 2_000_000);
        assert!((as_ms(1_500) - 1.5).abs() < 1e-9);
        assert!((as_secs(2_500_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        // 1 Gbps = 125 bytes/µs.
        assert_eq!(transfer_time(125, 1.0), 1);
        assert_eq!(transfer_time(1_250, 1.0), 10);
        // Double the bandwidth halves the time.
        assert_eq!(transfer_time(1_250, 2.0), 5);
    }

    #[test]
    fn transfer_time_zero_and_min() {
        assert_eq!(transfer_time(0, 1.0), 0);
        // Tiny payloads still cost at least 1 µs.
        assert_eq!(transfer_time(1, 100.0), 1);
    }
}
