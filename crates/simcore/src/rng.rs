//! Deterministic randomness for workload generation.
//!
//! Self-contained (the offline crate set has no `rand`): a xoshiro256++
//! generator seeded through SplitMix64, plus a Zipf(α) sampler over a finite
//! item universe implemented with a precomputed CDF + binary search, which
//! is both exact and fast for the universe sizes the workloads use.
//!
//! Every draw is a pure function of the seed, so simulation runs are
//! bit-reproducible across platforms and rustc versions — the property the
//! determinism regression tests pin down.

/// A deterministic random source. Cloneable so sub-generators can be forked;
/// prefer [`DetRng::fork`] which decorrelates the child stream.
#[derive(Clone)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // Expand the seed through SplitMix64, per the xoshiro authors'
        // recommendation (avoids the all-zero state and correlated lanes).
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fork a decorrelated child generator (e.g. one per source instance).
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed(s)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded sampling (Lemire). The bias for any n the
        // simulator uses (≪ 2^32) is far below 2^-32 — irrelevant here, and
        // the method is branch-free which keeps the hot generators cheap.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the canonical [0,1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed value with the given mean (used for jittered
    /// inter-arrival times).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.unit();
        -mean * (1.0 - u).ln()
    }
}

/// Zipf(α) distribution over `{0, 1, .., n-1}` where item 0 is the hottest.
///
/// `alpha = 0` degenerates to the uniform distribution, matching the paper's
/// skewness parameter sweep `[0.0, 0.5, 1.0, 1.5]`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `n` must be ≥ 1.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "zipf over empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift: the last entry must be 1.0 so
        // sampling can never fall off the end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Self { cdf }
    }

    /// Number of items in the universe.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the universe is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw an item index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Probability mass of item `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_reproducible() {
        let mut a = DetRng::seed(42);
        let mut b = DetRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_decorrelate() {
        let mut root = DetRng::seed(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let s1: Vec<u64> = (0..10).map(|_| c1.below(u64::MAX)).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.below(u64::MAX)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = DetRng::seed(11);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(100, 110);
            assert!((100..110).contains(&v));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        // Every residue of a small modulus must be reachable (a classic
        // failure mode of bad bounded sampling).
        let mut rng = DetRng::seed(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_is_skewed_and_monotone() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        // Hottest item of Zipf(1.0, 100) has mass 1/H_100 ≈ 0.1928.
        assert!((z.pmf(0) - 0.1928).abs() < 1e-3);
    }

    #[test]
    fn zipf_samples_in_range_and_hit_head() {
        let z = Zipf::new(50, 1.5);
        let mut rng = DetRng::seed(1);
        let mut head = 0usize;
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!(s < 50);
            if s == 0 {
                head += 1;
            }
        }
        // Zipf(1.5) head mass is ~0.38 of all draws; allow generous slack.
        assert!(head > 2_000, "head drawn {head} times");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = DetRng::seed(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < 0.2, "empirical mean {emp}");
    }
}
