//! A generational slab: stable `Copy` handles into a reusable slot vector.
//!
//! The engine parks every in-channel stream element here exactly once and
//! threads 8-byte [`SlabRef`] handles through channel queues and the event
//! heap instead of moving ~56-byte payloads per hop. Slots are recycled
//! through a LIFO free list (the hottest slot is reused first, which keeps
//! steady-state traffic inside a small, cache-resident prefix), and each
//! slot carries a generation counter so a stale handle — one that outlived
//! its element — is caught at the access site instead of silently aliasing
//! a recycled slot.
//!
//! Determinism note: handle values depend only on the insert/remove
//! sequence, which in the engine is itself a pure function of the seed, so
//! slabs never perturb event interleaving.

/// A handle to an occupied (or once-occupied) slab slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SlabRef {
    idx: u32,
    gen: u32,
}

impl SlabRef {
    /// The raw slot index (diagnostics only — never fabricate handles).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }
}

struct Slot<T> {
    /// Bumped on every removal; a handle is live iff its `gen` matches.
    gen: u32,
    value: Option<T>,
}

/// A generational slab allocator. See the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Vacant slot indices, LIFO.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` elements before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap.min(1024)),
            len: 0,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no element is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever created (live + recycled). A steady-state workload
    /// must plateau here — monotonic growth means handles are being leaked.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, returning its handle.
    #[inline]
    pub fn insert(&mut self, value: T) -> SlabRef {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            SlabRef { idx, gen: slot.gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlabRef { idx, gen: 0 }
        }
    }

    /// Take the element out, freeing its slot. Panics on a stale or
    /// fabricated handle — that is always a lifecycle bug upstream.
    #[inline]
    pub fn remove(&mut self, r: SlabRef) -> T {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.gen, r.gen, "stale slab handle {r:?}");
        let v = slot.value.take().expect("double-remove of slab handle");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.len -= 1;
        v
    }

    /// Borrow the element behind a handle, if still live.
    #[inline]
    pub fn get(&self, r: SlabRef) -> Option<&T> {
        self.slots
            .get(r.idx as usize)
            .filter(|s| s.gen == r.gen)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutably borrow the element behind a handle, if still live.
    #[inline]
    pub fn get_mut(&mut self, r: SlabRef) -> Option<&mut T> {
        self.slots
            .get_mut(r.idx as usize)
            .filter(|s| s.gen == r.gen)
            .and_then(|s| s.value.as_mut())
    }
}

impl<T> std::ops::Index<SlabRef> for Slab<T> {
    type Output = T;
    #[inline]
    fn index(&self, r: SlabRef) -> &T {
        self.get(r).expect("stale slab handle")
    }
}

impl<T> std::ops::IndexMut<SlabRef> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, r: SlabRef) -> &mut T {
        self.get_mut(r).expect("stale slab handle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s[a], "a");
        assert_eq!(s[b], "b");
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s[b], "b");
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // Two inserts reuse the two freed slots: no slot growth.
        let c = s.insert(3);
        let d = s.insert(4);
        assert_eq!(s.slot_count(), 2);
        // LIFO: the most recently freed slot (b's) is reused first.
        assert_eq!(c.index(), b.index());
        assert_eq!(d.index(), a.index());
    }

    #[test]
    fn stale_handles_are_rejected() {
        let mut s = Slab::new();
        let a = s.insert(7);
        s.remove(a);
        let b = s.insert(8); // reuses the slot under a new generation
        assert_eq!(b.index(), a.index());
        assert_eq!(s.get(a), None, "old-generation handle resolved");
        assert_eq!(s[b], 8);
    }

    #[test]
    #[should_panic(expected = "stale slab handle")]
    fn remove_with_stale_handle_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.insert(2);
        s.remove(a);
    }
}
