//! `simcore` — a deterministic discrete-event simulation kernel.
//!
//! This crate provides the building blocks the `streamflow` engine runs on:
//!
//! * [`SimTime`] / [`time`] — simulated time in microseconds with helpers,
//! * [`FutureEventList`] (alias [`EventQueue`]) — a monotonic future-event
//!   list with stable FIFO ordering among same-timestamp events and a
//!   pluggable backend ([`SchedulerBackend`]): the reference binary heap or
//!   the O(1) hierarchical [`calendar`] queue (the default),
//! * [`rng`] — a seedable deterministic random source plus a Zipf sampler
//!   (used by workload generators; `rand_distr` is not vendored offline, so
//!   the Zipf sampler is implemented here),
//! * [`stats`] — time series, histograms and summary statistics used by the
//!   experiment harnesses.
//!
//! Everything is single-threaded and fully deterministic given a seed, which
//! is what makes the paper's latency/suspension measurements reproducible
//! down to the microsecond.

pub mod calendar;
pub mod hash;
pub mod queue;
pub mod region;
pub mod rng;
pub mod slab;
pub mod spsc;
pub mod stats;
pub mod sync;
pub mod time;

pub use calendar::CalendarQueue;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::{EventQueue, FutureEventList, SchedulerBackend};
pub use region::{RegionScheduler, SyncStats};
pub use rng::{DetRng, Zipf};
pub use slab::{Slab, SlabRef};
pub use stats::{Histogram, Summary, TimeSeries};
pub use time::{SimTime, GIGA, MICROS_PER_MS, MICROS_PER_SEC};
