//! Concurrency facade: std primitives in real builds, a schedule
//! explorer under `--features interleave-check`.
//!
//! # Why a facade
//!
//! The thread-per-region engine ([`crate::spsc`], `streamflow`'s
//! `parallel` module) is lock-free on its hot path: Lamport rings with
//! acquire/release publication and relaxed clock reads. That code is
//! exactly the kind whose bugs survive `cargo test` for months — a
//! weakened ordering or a reordered publish only misbehaves on some
//! interleavings, on some hardware. This module lets the same source
//! compile in two personalities:
//!
//! * **Real builds** (default): every type here is a zero-cost re-export
//!   or `#[repr(transparent)]` wrapper over `std` — no feature flags to
//!   get wrong, no runtime cost, identical codegen.
//! * **Model builds** (`--features interleave-check`): the types route
//!   through the `interleave` crate, a loom-style explorer that runs the
//!   test closure under thousands of distinct thread schedules (bounded-
//!   preemption DFS plus seeded random schedules) and checks every
//!   execution for data races, deadlocks, panics and livelock.
//!
//! # The memory-model approximation
//!
//! The explorer models C11 acquire/release semantics, not just
//! sequential consistency — otherwise a `Relaxed` publish would look
//! correct under every explored schedule. Each atomic location keeps its
//! full modification order (a store buffer); a load may observe any
//! store not yet superseded for the loading thread: `Acquire` loads
//! synchronize with the matching `Release` store (joining its vector
//! clock), `Relaxed` loads may return stale values and transfer no
//! visibility, and read-modify-write ops always read the newest store
//! (RMW atomicity). `SeqCst` is approximated as acquire/release plus
//! always-reads-newest, which cannot catch IRIW-style violations that
//! need a total store order — acceptable here because the engine's
//! invariants are all pairwise publication, not multi-copy atomicity.
//! Data races on [`UnsafeCell`] accesses are detected FastTrack-style
//! with vector clocks and reported *before* the racing access executes.
//!
//! # Adding a checked primitive
//!
//! 1. Build it on this module's types only ([`AtomicU64`],
//!    [`AtomicUsize`], [`UnsafeCell`], [`Mutex`], [`Condvar`]) — never
//!    `std::sync::atomic` directly; the repo `checker` lint enforces
//!    this outside an allowlist.
//! 2. Wrap raw shared memory in [`UnsafeCell`] and access it through
//!    `with`/`with_mut` so the model can see (and race-check) every
//!    access.
//! 3. In spin/retry loops call [`hint::spin_loop`], which yields the
//!    model's execution token (a spinning model thread that never
//!    yields would otherwise trip the step limit).
//! 4. Write a feature-gated test that drives the primitive inside
//!    `interleave::Checker::run` and assert `report.violation.is_none()`
//!    — see `tests/interleave.rs` for the ring and barrier examples.
//!
//! Facade types constructed *outside* a model execution fall back to
//! real std primitives even under the feature, so ordinary unit tests
//! keep passing when the feature is enabled.

#[cfg(feature = "interleave-check")]
pub use interleave::sync::{
    AtomicU32, AtomicU64, AtomicUsize, Condvar, LockResult, Mutex, MutexGuard, Ordering, UnsafeCell,
};

/// Virtual threads under the model, `std::thread` otherwise.
#[cfg(feature = "interleave-check")]
pub mod thread {
    pub use interleave::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hint that yields the model scheduler under the feature.
#[cfg(feature = "interleave-check")]
pub mod hint {
    pub use interleave::hint::spin_loop;
}

#[cfg(not(feature = "interleave-check"))]
pub use real::*;

#[cfg(not(feature = "interleave-check"))]
mod real {
    pub use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard};

    /// Virtual threads under the model, `std::thread` otherwise.
    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }

    /// Spin-loop hint that yields the model scheduler under the feature.
    pub mod hint {
        pub use std::hint::spin_loop;
    }

    /// Interior-mutability cell with the closure-based access API the
    /// model build requires; transparent over [`std::cell::UnsafeCell`]
    /// in real builds, so `with`/`with_mut` inline to a bare pointer.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T> {
        data: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        /// Wrap `v`.
        pub const fn new(v: T) -> Self {
            Self {
                data: std::cell::UnsafeCell::new(v),
            }
        }

        /// Run `f` with a shared (read) pointer to the contents.
        ///
        /// The pointer is only valid for the duration of `f`; callers
        /// must uphold the usual aliasing rules, exactly as with
        /// [`std::cell::UnsafeCell::get`].
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.data.get())
        }

        /// Run `f` with an exclusive (write) pointer to the contents.
        ///
        /// Same contract as [`Self::with`]; under the model build this
        /// access is race-checked against all concurrent accesses.
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.data.get())
        }
    }
}
