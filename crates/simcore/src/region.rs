//! Region-partitioned scheduling — conservative PDES inside one
//! [`FutureEventList`](crate::queue::FutureEventList).
//!
//! # What a region is
//!
//! A *region* is a partition class of the simulation's event producers
//! (for the engine: a connected group of operators chosen by a min-cut
//! over the dataflow graph). Each region owns its own
//! [`BackendQueue`](crate::queue::BackendQueue) — its private future-event
//! list — plus a *local clock*: the timestamp of the last event dispatched
//! from it. The shell state (global clock, schedule-order `seq` minting,
//! past-clamp, processed counter) stays in the owning `FutureEventList`,
//! shared by all regions.
//!
//! # Exactness by construction
//!
//! Classic conservative synchronization (Chandy–Misra–Bryant) lets region
//! `r` advance to `min over r' of (clock(r') + lookahead(r' → r))`, where
//! the lookahead is the minimum latency of any event a handler in `r'`
//! can schedule into `r` — for the engine, the cut-edge channel latency.
//! That bound alone cannot reproduce this simulator's digests: the FIFO
//! tie-break among same-instant events is *global* schedule order, and the
//! engine's credit-return path (a receiver-side `pump` waking a blocked
//! sender in the upstream region at delay 0) makes the reverse lookahead
//! zero, collapsing pure CMB to lockstep.
//!
//! The scheduler therefore merges regions under the globally-unique
//! `(at, seq)` key: every pop takes the global minimum across the
//! per-region heads, and same-instant runs drained from several regions
//! are merged back into `seq` order. The popped sequence is byte-identical
//! to a single-queue list **for any region assignment** — region tagging
//! is purely a performance decision. The shared-memory merge *is* the CMB
//! fixed point (each head read is the neighbor clock + pending-event
//! information a null message would carry), so the conservative machinery
//! is kept as first-class accounting rather than as a gate: per-region
//! clocks, the lookahead matrix, [`RegionScheduler::safe_until`] /
//! [`RegionScheduler::grants`], and [`SyncStats`] counting how many
//! advances pure lookahead would *not* have granted (`min_rule_grants`)
//! and how many null messages a message-passing deployment would have
//! needed (`null_msgs`). The `region_sync` micro-bench and the
//! deadlock-freedom tests drive exactly this accounting; a distributed
//! runtime would swap the head reads for
//! [`spsc`](crate::spsc) rings without touching dispatch semantics.
//!
//! # Why partitioning is a perf win at all
//!
//! Two effects, both measured by `perf_report --regions both`:
//!
//! * **Population splitting** — each backend holds only its region's
//!   pending events: shallower heaps, smaller bucket sorts, and hot
//!   structures that stay cache-resident at pending-set sizes where one
//!   merged queue spills.
//! * **Geometry separation** — the calendar backend tunes its bucket
//!   width from the gaps of *its own* population. A source region's
//!   ~10 ms tick train no longer poisons the µs-scale delivery gaps of a
//!   downstream region (and massed delivery runs no longer dirty buckets
//!   that interleave with another region's traffic, forcing re-sorts).

use crate::queue::{BackendQueue, Scheduled, SchedulerBackend};
use crate::time::SimTime;

/// Conservative-synchronization accounting, maintained per pop. All
/// counters describe what a message-passing CMB deployment of the same
/// region graph would have done; they never influence dispatch order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Dispatched runs (a single pop counts as a run of one).
    pub runs: u64,
    /// Runs whose same-instant events spanned more than one region and
    /// were merged back into global `seq` order.
    pub merged_runs: u64,
    /// Advances granted by the global-minimum rule alone: the dispatched
    /// timestamp exceeded the region's pure-lookahead bound
    /// (`safe_until`), so neighbor clocks + lookahead would have blocked.
    pub min_rule_grants: u64,
    /// Null messages a message-passing runtime would have needed: for
    /// every min-rule grant, one per neighbor whose clock + lookahead
    /// still sat below the dispatched timestamp.
    pub null_msgs: u64,
}

/// Cached minimum key of one region's queue. Kept exact across pushes
/// (a push below the cached minimum *is* the new minimum, because `seq`
/// values only grow); only a pop invalidates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Head {
    /// Unknown — refresh via `peek_key` before use.
    Stale,
    /// The region's queue is empty.
    Empty,
    /// The exact minimum `(at, seq)` of the region's queue.
    Key(SimTime, u64),
}

/// K per-region backend queues merged under the owning list's global
/// `(at, seq)` order, with conservative-PDES clock/lookahead accounting.
/// See the module docs; construct via
/// [`FutureEventList::with_backend_regions`](crate::queue::FutureEventList::with_backend_regions).
pub struct RegionScheduler<E> {
    queues: Vec<BackendQueue<E>>,
    heads: Vec<Head>,
    /// Per-region local clock: timestamp of the last event popped from the
    /// region (0 before the first pop). Monotone per region because pops
    /// follow the global `(at, seq)` order.
    clocks: Vec<SimTime>,
    /// Row-major `k × k` lookahead matrix: `lookahead[from * k + to]` is
    /// the minimum latency of any event a `from`-region handler can
    /// schedule into `to`. Defaults to all zeros (fully conservative).
    lookahead: Vec<SimTime>,
    stats: SyncStats,
    /// Reusable buffer for multi-region same-instant merges: contributor
    /// runs are drained keyed into it, sorted by `seq`, and handed out.
    merge_scratch: Vec<Scheduled<E>>,
    /// Region-major ordering (see [`Self::set_region_major`]): same-instant
    /// ties across regions break by ascending region index instead of by
    /// global `seq`, and multi-region runs drain region by region without
    /// the merge sort. Local `seq` values are then never compared across
    /// regions — the property the PDES engines rely on, because each
    /// engine mints local sequence numbers independently per region.
    region_major: bool,
    /// Events popped out of each region (single pops and run drains both
    /// count per event) — the per-region load-balance view.
    pops: Vec<u64>,
}

impl<E> RegionScheduler<E> {
    /// `regions` queues on `kind`, pre-sized for about `cap` pending
    /// events total. Requires `regions >= 2` (a single region is just a
    /// plain list — the `FutureEventList` constructor handles that
    /// degradation).
    pub(crate) fn new(kind: SchedulerBackend, cap: usize, regions: usize) -> Self {
        assert!(regions >= 2, "RegionScheduler needs at least two regions");
        assert!(
            regions <= 64,
            "region count is a partition fan-out, not a thread pool"
        );
        let per = cap / regions + 1;
        Self {
            queues: (0..regions).map(|_| BackendQueue::new(kind, per)).collect(),
            heads: vec![Head::Empty; regions],
            clocks: vec![0; regions],
            lookahead: vec![0; regions * regions],
            stats: SyncStats::default(),
            merge_scratch: Vec::new(),
            region_major: false,
            pops: vec![0; regions],
        }
    }

    pub(crate) fn kind(&self) -> SchedulerBackend {
        self.queues[0].kind()
    }

    /// Number of regions (K).
    #[inline]
    pub fn regions(&self) -> usize {
        self.queues.len()
    }

    /// Total pending events across all regions.
    #[inline]
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether every region's queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Install the lookahead matrix (row-major `k × k`). Pure accounting —
    /// see the module docs.
    pub fn set_lookahead(&mut self, la: &[SimTime]) {
        let k = self.regions();
        assert_eq!(la.len(), k * k, "lookahead matrix must be k x k");
        self.lookahead.copy_from_slice(la);
    }

    /// The local clock of `region`.
    #[inline]
    pub fn clock(&self, region: usize) -> SimTime {
        self.clocks[region]
    }

    /// Conservative bound for `region` from neighbor clocks + lookahead
    /// alone: `min over r' != region of clock(r') + lookahead(r' →
    /// region)`.
    pub fn safe_until(&self, region: usize) -> SimTime {
        let k = self.regions();
        let mut safe = SimTime::MAX;
        for r in 0..k {
            if r == region {
                continue;
            }
            safe = safe.min(self.clocks[r].saturating_add(self.lookahead[r * k + region]));
        }
        safe
    }

    /// Accounting counters so far.
    #[inline]
    pub fn sync_stats(&self) -> SyncStats {
        self.stats
    }

    /// Events popped out of `region` so far (single pops and run drains
    /// both count per event).
    #[inline]
    pub fn region_pops(&self, region: usize) -> u64 {
        self.pops[region]
    }

    /// Switch same-instant ordering to *region-major*: ties at one instant
    /// across regions break by ascending region index instead of by the
    /// globally-minted `seq`, and multi-region runs drain region by region
    /// (each region's run internally `(at, seq)`-ordered) without the
    /// global merge sort. In this mode local sequence numbers are never
    /// compared across regions, which is what lets the PDES engines — one
    /// shared queue or one replica queue per thread — mint local `seq`
    /// values independently per region yet pop identically. Only the PDES
    /// mode (`resume_latency > 0`) enables this; the default remains the
    /// merged-exact global FIFO.
    pub fn set_region_major(&mut self, on: bool) {
        self.region_major = on;
    }

    /// Drop every region's pending events except `keep`'s. Used by the
    /// thread-per-region executor: each replica builds the full world,
    /// then prunes to the one region it owns. Clocks, stats, and the
    /// lookahead matrix are left untouched.
    pub(crate) fn retain_region(&mut self, keep: usize) {
        let kind = self.kind();
        for r in 0..self.queues.len() {
            if r != keep {
                self.queues[r] = BackendQueue::new(kind, 1);
                self.heads[r] = Head::Empty;
            }
        }
    }

    /// Insert an entry into `region` (clamped to the last region). The
    /// head cache stays exact: a key below the cached minimum *is* the new
    /// minimum (its `seq` is the largest ever minted, so it can never tie).
    #[inline]
    pub(crate) fn push(&mut self, region: usize, s: Scheduled<E>) {
        let r = region.min(self.regions() - 1);
        match self.heads[r] {
            Head::Empty => self.heads[r] = Head::Key(s.at, s.seq),
            Head::Key(at, seq) if (s.at, s.seq) < (at, seq) => {
                self.heads[r] = Head::Key(s.at, s.seq)
            }
            _ => {}
        }
        self.queues[r].push(s);
    }

    /// Re-derive any stale head from its queue.
    fn refresh_heads(&mut self) {
        for r in 0..self.queues.len() {
            if self.heads[r] == Head::Stale {
                self.heads[r] = match self.queues[r].peek_key() {
                    Some((at, seq)) => Head::Key(at, seq),
                    None => Head::Empty,
                };
            }
        }
    }

    /// The region holding the global minimum and its key. Unique: `seq`
    /// values are globally unique (default mode); in region-major mode a
    /// same-instant tie goes to the lowest region index (the strict `<`
    /// on `at` keeps the first-seen head).
    fn min_head(&self) -> Option<(usize, SimTime, u64)> {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (r, h) in self.heads.iter().enumerate() {
            if let Head::Key(at, seq) = *h {
                debug_assert_ne!(*h, Head::Stale);
                let better = if self.region_major {
                    best.is_none_or(|(_, bat, _)| at < bat)
                } else {
                    best.is_none_or(|(_, bat, bseq)| (at, seq) < (bat, bseq))
                };
                if better {
                    best = Some((r, at, seq));
                }
            }
        }
        best
    }

    /// Mark `region`'s head unknown after a pop (or exactly empty, which a
    /// length read proves for free).
    #[inline]
    fn invalidate_head(&mut self, region: usize) {
        self.heads[region] = if self.queues[region].len() == 0 {
            Head::Empty
        } else {
            Head::Stale
        };
    }

    /// Conservative-sync accounting for dispatching timestamp `at` out of
    /// `region`, then the clock update. Must run *before* the clock moves.
    fn account_advance(&mut self, region: usize, at: SimTime) {
        let safe = self.safe_until(region);
        if at > safe {
            self.stats.min_rule_grants += 1;
            let k = self.regions();
            for r in 0..k {
                if r != region && self.clocks[r].saturating_add(self.lookahead[r * k + region]) < at
                {
                    self.stats.null_msgs += 1;
                }
            }
        }
        debug_assert!(at >= self.clocks[region], "region clock went backwards");
        self.clocks[region] = at;
    }

    /// Pop the global-minimum entry if due at or before `t`.
    pub(crate) fn pop_at_most(&mut self, t: SimTime) -> Option<Scheduled<E>> {
        self.refresh_heads();
        let (r, at, _) = self.min_head()?;
        if at > t {
            return None;
        }
        let s = self.queues[r].pop_at_most(t).expect("head said due");
        debug_assert_eq!(s.at, at);
        self.stats.runs += 1;
        self.pops[r] += 1;
        self.account_advance(r, at);
        self.invalidate_head(r);
        Some(s)
    }

    /// Drain the whole earliest-instant run (if due by `t`) into `buf` in
    /// global `seq` order. Single-region runs (the common case) drain
    /// straight from that region's queue; runs spanning regions drain each
    /// contributor's same-instant prefix and k-way merge by `seq`.
    pub(crate) fn pop_run_at_most(
        &mut self,
        t: SimTime,
        buf: &mut Vec<E>,
    ) -> Option<(SimTime, usize)> {
        self.refresh_heads();
        let (r0, at, _) = self.min_head()?;
        if at > t {
            return None;
        }
        let multi = self
            .heads
            .iter()
            .enumerate()
            .any(|(r, h)| r != r0 && matches!(*h, Head::Key(hat, _) if hat == at));
        if !multi {
            let (got_at, n) = self.queues[r0]
                .pop_run_at_most(t, buf)
                .expect("head said due");
            debug_assert_eq!(got_at, at);
            self.stats.runs += 1;
            self.pops[r0] += n as u64;
            self.account_advance(r0, at);
            self.invalidate_head(r0);
            return Some((at, n));
        }
        let k = self.regions();
        if self.region_major {
            // Region-major merge: drain contributors in ascending region
            // index, each run already internally `(at, seq)`-ordered. No
            // cross-region seq comparison happens — see set_region_major.
            let mut n = 0usize;
            for r in 0..k {
                if matches!(self.heads[r], Head::Key(hat, _) if hat == at) {
                    let (got_at, got_n) = self.queues[r]
                        .pop_run_at_most(t, buf)
                        .expect("head said due");
                    debug_assert_eq!(got_at, at);
                    n += got_n;
                    self.pops[r] += got_n as u64;
                    self.account_advance(r, at);
                    self.invalidate_head(r);
                }
            }
            self.stats.runs += 1;
            self.stats.merged_runs += 1;
            return Some((at, n));
        }
        // Same instant pending in several regions: drain each contributor's
        // run keyed into one buffer, then restore the global FIFO order by
        // sorting on `seq` (contributor runs are each seq-sorted already;
        // the sort is a cheap merge of a handful of sorted slices, and
        // multi-region instants are the rare case).
        let mut scratch = std::mem::take(&mut self.merge_scratch);
        scratch.clear();
        let mut n = 0usize;
        for r in 0..k {
            if matches!(self.heads[r], Head::Key(hat, _) if hat == at) {
                let (got_at, got_n) = self.queues[r]
                    .pop_run_keyed_at_most(t, &mut scratch)
                    .expect("head said due");
                debug_assert_eq!(got_at, at);
                n += got_n;
                self.pops[r] += got_n as u64;
                self.account_advance(r, at);
                self.invalidate_head(r);
            }
        }
        self.stats.runs += 1;
        self.stats.merged_runs += 1;
        scratch.sort_unstable_by_key(|s| s.seq);
        buf.extend(scratch.drain(..).map(|s| s.event));
        self.merge_scratch = scratch;
        Some((at, n))
    }

    /// Timestamp of the global-minimum entry.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.refresh_heads();
        self.min_head().map(|(_, at, _)| at)
    }

    /// For each region: may it dispatch its head right now? True when the
    /// head is within the region's pure-lookahead bound, or when the head
    /// is the global minimum (the rule that makes conservative execution
    /// deadlock-free: the globally earliest event can always fire, even on
    /// cyclic region graphs with zero lookahead).
    pub fn grants(&mut self, out: &mut Vec<bool>) {
        self.refresh_heads();
        out.clear();
        let min = self.min_head();
        for (r, h) in self.heads.iter().enumerate() {
            let g = match *h {
                Head::Key(at, seq) => {
                    at <= self.safe_until(r)
                        || min.is_some_and(|(mr, mat, mseq)| (mr, mat, mseq) == (r, at, seq))
                }
                _ => false,
            };
            out.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::queue::{FutureEventList, SchedulerBackend};
    use crate::time::SimTime;

    const BACKENDS: [SchedulerBackend; 2] =
        [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar];

    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    #[test]
    fn one_region_degrades_to_single_list() {
        for b in BACKENDS {
            let q: FutureEventList<u32> = FutureEventList::with_backend_regions(b, 64, 1);
            assert_eq!(q.regions(), 1);
            let q: FutureEventList<u32> = FutureEventList::with_backend_regions(b, 64, 0);
            assert_eq!(q.regions(), 1);
        }
    }

    #[test]
    fn merged_pop_order_is_identical_to_single_for_any_region_tagging() {
        // The exactness contract: for EVERY region assignment, a K-region
        // list pops the byte-identical (time, event) sequence of a
        // single-queue list fed the same schedule calls. Random schedules,
        // random tags, interleaved single pops and batch drains, both
        // backends, several K.
        for b in BACKENDS {
            for k in [2usize, 3, 5] {
                for seed in 1u64..=4 {
                    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut single = FutureEventList::with_backend(b, 0);
                    let mut multi = FutureEventList::with_backend_regions(b, 0, k);
                    let mut sbuf: Vec<u64> = Vec::new();
                    let mut mbuf: Vec<u64> = Vec::new();
                    for i in 0..8_000u64 {
                        match xorshift(&mut x) % 8 {
                            0..=3 => {
                                // Mixed-horizon schedule; heavy massing.
                                let d = match xorshift(&mut x) % 10 {
                                    0..=5 => xorshift(&mut x) % 40,
                                    6..=8 => xorshift(&mut x) % 5_000,
                                    _ => 500_000 + xorshift(&mut x) % 2_000_000,
                                };
                                let r = (xorshift(&mut x) as usize) % k;
                                single.schedule(d, i);
                                multi.schedule_tagged(r, d, i);
                            }
                            4 | 5 => {
                                assert_eq!(single.pop(), multi.pop(), "backend {b:?} k {k}");
                            }
                            6 => {
                                let t = single.now() + xorshift(&mut x) % 1_000;
                                let sa = single.pop_run_at_most(t, &mut sbuf);
                                let ma = multi.pop_run_at_most(t, &mut mbuf);
                                assert_eq!(sa, ma, "backend {b:?} k {k}");
                                assert_eq!(sbuf, mbuf, "backend {b:?} k {k}");
                            }
                            _ => {
                                assert_eq!(single.peek_time(), multi.peek_time());
                            }
                        }
                        assert_eq!(single.len(), multi.len());
                        assert_eq!(single.now(), multi.now());
                        assert_eq!(single.processed(), multi.processed());
                    }
                    loop {
                        let (s, m) = (
                            single.pop_run_at_most(SimTime::MAX, &mut sbuf),
                            multi.pop_run_at_most(SimTime::MAX, &mut mbuf),
                        );
                        assert_eq!(s, m);
                        assert_eq!(sbuf, mbuf);
                        if s.is_none() {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn same_instant_runs_merge_across_regions_in_global_fifo_order() {
        for b in BACKENDS {
            let mut q = FutureEventList::with_backend_regions(b, 0, 3);
            // Interleave schedule order across regions at one instant.
            for i in 0..90u64 {
                q.schedule_at_tagged((i % 3) as usize, 500, i);
            }
            let mut buf = Vec::new();
            assert_eq!(q.pop_run_at_most(SimTime::MAX, &mut buf), Some(500));
            assert_eq!(buf, (0..90).collect::<Vec<_>>(), "backend {b:?}");
            assert_eq!(q.region_sync_stats().merged_runs, 1);
        }
    }

    #[test]
    fn region_clocks_advance_with_pops_and_stay_monotone() {
        let mut q = FutureEventList::with_backend_regions(SchedulerBackend::Calendar, 0, 2);
        q.schedule_tagged(0, 10, "a");
        q.schedule_tagged(1, 20, "b");
        q.schedule_tagged(0, 30, "c");
        assert_eq!(q.region_clock(0), 0);
        q.pop();
        assert_eq!((q.region_clock(0), q.region_clock(1)), (10, 0));
        q.pop();
        assert_eq!((q.region_clock(0), q.region_clock(1)), (10, 20));
        q.pop();
        assert_eq!((q.region_clock(0), q.region_clock(1)), (30, 20));
    }

    #[test]
    fn lookahead_bounds_and_null_message_accounting() {
        // A 2-region pipeline: forward lookahead L (cut-edge latency),
        // reverse 0 (the credit-return wake path).
        let l: SimTime = 200;
        let mut q = FutureEventList::with_backend_regions(SchedulerBackend::Calendar, 0, 2);
        q.set_region_lookahead(&[0, l, 0, 0]);
        q.schedule_tagged(0, 1_000, "up");
        q.schedule_tagged(1, 1_100, "down");
        // Region 1 may advance to clock(0) + L = 200 on lookahead alone;
        // its head (1_100) is beyond that, so only region 0 (the global
        // minimum) is grantable.
        assert_eq!(q.region_safe_until(1), l);
        let mut grants = Vec::new();
        q.region_grants(&mut grants);
        assert_eq!(grants, vec![true, false]);
        q.pop(); // "up" at 1_000: global min, within safe_until(0)? ...
                 // Popping "down" at 1_100 needs the min-rule (safe_until(1) =
                 // 1_000 + 200 = 1_200 >= 1_100 — lookahead grants it, no null
                 // message needed).
        q.pop();
        let stats = q.region_sync_stats();
        assert_eq!(stats.runs, 2);
        assert_eq!(
            stats.null_msgs, 1,
            "the first pop exceeded region 0's zero-lookahead bound and \
             needed one null message from region 1"
        );
    }

    #[test]
    fn zero_lookahead_cycles_always_grant_some_region() {
        // Deadlock freedom: on a cyclic region graph with zero lookahead
        // everywhere (the worst case: pure CMB would deadlock without null
        // messages), the global-minimum rule must always grant at least
        // one region while events are pending.
        for b in BACKENDS {
            for k in [2usize, 3, 4] {
                let mut x = 0xD225u64 | 1;
                let mut q: FutureEventList<u64> = FutureEventList::with_backend_regions(b, 0, k);
                // Lookahead stays all-zero (the constructor default).
                for i in 0..500u64 {
                    let r = (xorshift(&mut x) as usize) % k;
                    q.schedule_tagged(r, xorshift(&mut x) % 10_000, i);
                }
                let mut grants = Vec::new();
                while !q.is_empty() {
                    q.region_grants(&mut grants);
                    assert!(
                        grants.iter().any(|&g| g),
                        "backend {b:?} k {k}: no region grantable with {} pending",
                        q.len()
                    );
                    q.pop().expect("pending events");
                }
                q.region_grants(&mut grants);
                assert!(
                    grants.iter().all(|&g| !g),
                    "empty regions cannot be granted"
                );
                // Fully conservative matrix => every pop beyond another
                // region's clock was a min-rule grant.
                assert!(q.region_sync_stats().min_rule_grants > 0);
            }
        }
    }

    #[test]
    fn infinite_lookahead_needs_no_null_messages() {
        let mut q = FutureEventList::with_backend_regions(SchedulerBackend::Calendar, 0, 2);
        q.set_region_lookahead(&[SimTime::MAX; 4]);
        for i in 0..200u64 {
            q.schedule_tagged((i % 2) as usize, (i * 37) % 500, i);
        }
        while q.pop().is_some() {}
        let stats = q.region_sync_stats();
        assert_eq!(stats.min_rule_grants, 0);
        assert_eq!(stats.null_msgs, 0);
    }

    #[test]
    fn untagged_schedules_land_in_region_zero_and_stay_correct() {
        for b in BACKENDS {
            let mut single = FutureEventList::with_backend(b, 0);
            let mut multi = FutureEventList::with_backend_regions(b, 0, 2);
            for i in 0..100u64 {
                single.schedule((i * 13) % 64, i);
                multi.schedule((i * 13) % 64, i); // untagged → region 0
            }
            loop {
                let (s, m) = (single.pop(), multi.pop());
                assert_eq!(s, m, "backend {b:?}");
                if s.is_none() {
                    break;
                }
            }
            assert_eq!(multi.region_clock(1), 0, "region 1 never saw an event");
        }
    }
}
