//! Model-checking suite for `simcore`'s concurrency primitives.
//!
//! Runs only under `--features interleave-check`: the `sync` facade then
//! routes through the `interleave` schedule explorer, and these tests
//! drive the *real* ring and barrier (not models of them) across
//! thousands of distinct thread interleavings, including weak-memory
//! behaviours (stale `Relaxed` reads).
//!
//! The `mutant_*` tests are the checker's own regression suite: each
//! seeds a classic SPSC bug into a miniature ring and asserts the
//! explorer finds it. If a refactor ever blinds the checker, these fail
//! first.
#![cfg(feature = "interleave-check")]

use std::sync::Arc;

use interleave::{thread, Checker, ViolationKind};
use simcore::spsc::{ring, EpochBarrier};
use simcore::sync::{hint, AtomicUsize, Ordering, UnsafeCell};

/// One checker configuration for every test so the "≥1000 distinct
/// schedules" bar is enforced uniformly.
fn checker() -> Checker {
    Checker::new()
        .dfs_schedules(4096)
        .random_schedules(2048)
        .preemption_bound(2)
}

/// The exploration bar: either DFS exhausted the entire schedule tree at
/// the preemption bound (strictly stronger than any sample count — every
/// schedule the bound admits was checked), or at least 1000 distinct
/// schedules were sampled.
fn assert_well_explored(report: &interleave::Report) {
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.dfs_complete || report.distinct >= 1000,
        "only {} distinct schedules explored and DFS incomplete",
        report.distinct
    );
}

#[test]
fn ring_cross_thread_transfer_is_lossless_and_ordered() {
    const N: u64 = 4;
    let report = checker().run(|| {
        let (mut tx, mut rx) = ring::<u64>(2);
        let producer = thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => hint::spin_loop(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    // Lossless, exactly-once, in order: any lost,
                    // duplicated or reordered element breaks the
                    // sequence equality.
                    assert_eq!(v, expect, "ring reordered or duplicated");
                    expect += 1;
                }
                None => hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None, "ring produced an extra element");
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules explored",
        report.distinct
    );
}

#[test]
fn ring_drop_with_queued_elements_is_race_free() {
    // Producer fills, consumer pops one, both halves are dropped with
    // elements still queued: Drop's walk of [head, tail) must be ordered
    // after every slot access (no race, no double free).
    let report = checker().preemption_bound(3).run(|| {
        let (mut tx, mut rx) = ring::<Box<u64>>(4);
        let producer = thread::spawn(move || {
            for i in 0..3 {
                tx.push(Box::new(i)).expect("capacity 4 fits 3");
            }
        });
        let _ = rx.pop();
        producer.join().unwrap();
        drop(rx);
    });
    assert_well_explored(&report);
}

#[test]
fn epoch_barrier_never_deadlocks_or_races() {
    const EPOCHS: u64 = 2;
    let report = checker().preemption_bound(3).run(|| {
        let barrier = Arc::new(EpochBarrier::new(2));
        let turns = Arc::new(AtomicUsize::new(0));
        let (b2, t2) = (Arc::clone(&barrier), Arc::clone(&turns));
        let peer = thread::spawn(move || {
            for _ in 0..EPOCHS {
                t2.fetch_add(1, Ordering::SeqCst);
                b2.wait();
                b2.wait();
            }
        });
        for epoch in 0..EPOCHS as usize {
            turns.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Between the two waits of an epoch, the whole cohort's
            // arrivals for it must be visible (the barrier is the
            // synchronization edge).
            let seen = turns.load(Ordering::SeqCst);
            assert!(
                seen >= (epoch + 1) * 2,
                "barrier generation leaked: saw {seen} in epoch {epoch}"
            );
            barrier.wait();
        }
        peer.join().unwrap();
    });
    assert_well_explored(&report);
}

#[test]
fn sink_worker_flag_and_drain_shutdown_loses_nothing() {
    // The engine bus's JSONL sink-worker protocol, verbatim: the producer
    // spin-pushes events into the bounded ring and only *after* its final
    // push raises the `done` flag; the worker treats an empty pop as
    // terminal only when `done` is already visible AND the ring re-checks
    // empty. The classic lost-wakeup shape is the worker reading `done=1`
    // between the producer's last push and its own empty-check — the
    // re-check closes it, and the explorer must find no schedule where an
    // event pushed before the flag is dropped or reordered.
    const N: u64 = 3;
    let report = checker().run(|| {
        use simcore::sync::AtomicU32;
        let (mut tx, mut rx) = ring::<u64>(2);
        let done = Arc::new(AtomicU32::new(0));
        let done2 = Arc::clone(&done);
        let producer = thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => hint::spin_loop(),
                }
            }
            // Shutdown: the flag is raised strictly after the last push.
            done2.store(1, Ordering::SeqCst);
        });
        let mut got = 0u64;
        loop {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, got, "sink worker lost or reordered an event");
                    got += 1;
                }
                None => {
                    if done.load(Ordering::SeqCst) == 1 && rx.is_empty() {
                        break;
                    }
                    hint::spin_loop();
                }
            }
        }
        assert_eq!(got, N, "worker exited with events still in flight");
        producer.join().unwrap();
    });
    assert_well_explored(&report);
}

// ---------------------------------------------------------------------
// Mutation-kill suite: seeded bugs the checker MUST catch
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mutation {
    /// Faithful miniature of the real ring's protocol.
    None,
    /// Producer publishes `tail` with `Relaxed` instead of `Release`.
    RelaxedTailStore,
    /// Producer publishes `tail` *before* writing the slot.
    PublishBeforeWrite,
    /// Consumer publishes `head` with `Relaxed` instead of `Release`.
    RelaxedHeadStore,
}

/// Miniature SPSC ring sharing the real ring's index protocol, with a
/// knob to seed one bug at a time. Kept deliberately tiny (capacity 2,
/// direct index loads, `u64` slots) so the explorer covers it densely.
struct MiniRing {
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Vec<UnsafeCell<u64>>,
    mutation: Mutation,
}

// SAFETY: same argument as the real ring — every slot access is ordered
// through the published indices (except where a seeded mutation breaks
// exactly that, which the model detects before the access executes).
unsafe impl Sync for MiniRing {}
// SAFETY: the ring owns plain u64 values.
unsafe impl Send for MiniRing {}

impl MiniRing {
    const CAP: usize = 2;

    fn new(mutation: Mutation) -> Self {
        Self {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..Self::CAP).map(|_| UnsafeCell::new(0)).collect(),
            mutation,
        }
    }

    fn push(&self, v: u64) -> bool {
        let t = self.tail.load(Ordering::Relaxed);
        if t.wrapping_sub(self.head.load(Ordering::Acquire)) == Self::CAP {
            return false;
        }
        let publish = match self.mutation {
            Mutation::RelaxedTailStore => Ordering::Relaxed,
            _ => Ordering::Release,
        };
        if self.mutation == Mutation::PublishBeforeWrite {
            self.tail.store(t.wrapping_add(1), publish);
            self.slots[t % Self::CAP].with_mut(|p| {
                // SAFETY: seeded bug under test — the model flags the
                // race before this write executes.
                unsafe { *p = v }
            });
        } else {
            self.slots[t % Self::CAP].with_mut(|p| {
                // SAFETY: slot at `tail` is outside [head, tail); we are
                // the only producer (mirrors the real ring).
                unsafe { *p = v }
            });
            self.tail.store(t.wrapping_add(1), publish);
        }
        true
    }

    fn pop(&self) -> Option<u64> {
        let h = self.head.load(Ordering::Relaxed);
        if h == self.tail.load(Ordering::Acquire) {
            return None;
        }
        let v = self.slots[h % Self::CAP].with(|p| {
            // SAFETY: head != tail, so the producer published this slot
            // (unless a seeded mutation broke the ordering — detected).
            unsafe { *p }
        });
        let publish = match self.mutation {
            Mutation::RelaxedHeadStore => Ordering::Relaxed,
            _ => Ordering::Release,
        };
        self.head.store(h.wrapping_add(1), publish);
        Some(v)
    }
}

/// Drive a mini ring hard enough that every seeded bug has a schedule
/// that exposes it: 4 items through capacity 2 forces slot reuse, so
/// both publication edges (tail for delivery, head for reuse) matter.
fn drive(mutation: Mutation) -> interleave::Report {
    checker().run(move || {
        let ring = Arc::new(MiniRing::new(mutation));
        let r2 = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            let mut i = 0u64;
            while i < 4 {
                if r2.push(i) {
                    i += 1;
                } else {
                    hint::spin_loop();
                }
            }
        });
        let mut expect = 0u64;
        while expect < 4 {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "mini ring lost or reordered");
                    expect += 1;
                }
                None => hint::spin_loop(),
            }
        }
        producer.join().unwrap();
    })
}

#[test]
fn faithful_mini_ring_is_clean() {
    let report = drive(Mutation::None);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.distinct >= 1000, "only {}", report.distinct);
}

#[test]
fn mutant_relaxed_tail_store_is_killed() {
    let v = drive(Mutation::RelaxedTailStore)
        .violation
        .expect("weakened tail publish must be caught");
    assert!(
        v.kind == ViolationKind::DataRace || v.kind == ViolationKind::Panic,
        "unexpected verdict {:?}: {}",
        v.kind,
        v.message
    );
}

#[test]
fn mutant_publish_before_write_is_killed() {
    let v = drive(Mutation::PublishBeforeWrite)
        .violation
        .expect("tail published before slot write must be caught");
    assert!(
        v.kind == ViolationKind::DataRace || v.kind == ViolationKind::Panic,
        "unexpected verdict {:?}: {}",
        v.kind,
        v.message
    );
}

#[test]
fn mutant_relaxed_head_store_is_killed() {
    let v = drive(Mutation::RelaxedHeadStore)
        .violation
        .expect("weakened head publish (slot reuse) must be caught");
    assert!(
        v.kind == ViolationKind::DataRace || v.kind == ViolationKind::Panic,
        "unexpected verdict {:?}: {}",
        v.kind,
        v.message
    );
}
