//! Property test: the facade-backed SPSC ring is byte-identical to a
//! `VecDeque` reference in sequential use.
//!
//! The PR that introduced the `sync` facade rewired every slot access
//! and index publication in `spsc` through new types; this suite pins
//! the *functional* semantics (push/pop/len/capacity/drop) to a trivial
//! reference model over random operation sequences, so any facade
//! regression that survives the concurrency checker still fails here.
//! Runs in every build mode (the facade is std re-exports by default).

use std::collections::VecDeque;
use std::rc::Rc;

use proptest::prelude::*;
use simcore::spsc::{ring, ring_with_start};

/// Tracked element: `Rc` clone counting makes lost or double-dropped
/// elements observable.
#[derive(Debug)]
struct Elem(#[allow(dead_code)] Rc<()>, u64);
// SAFETY: test-only; the ring stays on this thread for the whole run.
unsafe impl Send for Elem {}

/// One scripted op: push (value tag), pop, producer len, consumer len.
fn apply_ops(cap: usize, start: usize, ops: &[(u8, u64)]) -> Result<(), String> {
    let token = Rc::new(());
    {
        let (mut tx, mut rx) = ring_with_start::<Elem>(cap, start);
        let mut model: VecDeque<u64> = VecDeque::new();
        let real_cap = tx.capacity();
        prop_assert_eq!(real_cap, cap.max(2).next_power_of_two());
        for &(op, tag) in ops {
            match op % 4 {
                0 => {
                    let fits = model.len() < real_cap;
                    let pushed = tx.push(Elem(Rc::clone(&token), tag)).is_ok();
                    prop_assert_eq!(pushed, fits, "push accept/reject diverged from the model");
                    if fits {
                        model.push_back(tag);
                    }
                }
                1 => {
                    let got = rx.pop().map(|e| e.1);
                    prop_assert_eq!(got, model.pop_front(), "pop order diverged");
                }
                2 => prop_assert_eq!(tx.len(), model.len(), "producer len diverged"),
                _ => prop_assert_eq!(rx.len(), model.len(), "consumer len diverged"),
            }
        }
        prop_assert_eq!(tx.is_empty(), model.is_empty());
        prop_assert_eq!(rx.is_empty(), model.is_empty());
        // Scope ends with `model.len()` elements still queued: Drop must
        // free exactly those.
    }
    prop_assert_eq!(
        Rc::strong_count(&token),
        1,
        "ring drop leaked or double-freed queued elements"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_matches_vecdeque_reference(
        cap in 0usize..=9,
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..65),
    ) {
        apply_ops(cap, 0, &ops)?;
    }

    #[test]
    fn ring_matches_reference_across_index_wraparound(
        cap in 0usize..=9,
        back in 0usize..=12,
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..65),
    ) {
        // Free-running indices starting just below usize::MAX wrap during
        // the op sequence; semantics must be indistinguishable.
        apply_ops(cap, usize::MAX - back, &ops)?;
    }
}

#[test]
fn sequential_fifo_smoke() {
    let (mut tx, mut rx) = ring::<u64>(4);
    for i in 0..4 {
        tx.push(i).unwrap();
    }
    assert!(tx.push(9).is_err());
    for i in 0..4 {
        assert_eq!(rx.pop(), Some(i));
    }
    assert_eq!(rx.pop(), None);
}
