//! `bench` — the experiment harness regenerating every figure of the paper.
//!
//! Each `src/bin/figXX.rs` binary reproduces one figure's rows/series:
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig02`    | Fig. 2 — Unbound vs OTFS vs No-Scale overhead decomposition |
//! | `fig10_11` | Fig. 10 (latency) + Fig. 11 (throughput) on Q7/Q8/Twitch |
//! | `fig12_13` | Fig. 12 (propagation/dependency overheads) + Fig. 13 (suspension) |
//! | `fig14`    | Fig. 14 — mechanism ablation on Twitch |
//! | `fig15`    | Fig. 15 — sensitivity grid (rate × state × skew) |
//!
//! Every run any binary performs is a named [`scenario::ScenarioSpec`]
//! pulled from [`scenario::registry`] and executed by the
//! [`scenario::Runner`] into a typed [`scenario::RunReport`] — see the
//! [`scenario`] module docs for the spec → registry → runner → report
//! lifecycle, the determinism contract, and the `--shard K/N` /
//! `--emit` / `--merge` process-sharding protocol grid binaries speak.
//!
//! Set `QUICK=1` in the environment for compressed timelines (CI-friendly);
//! the default timelines follow the paper (scale at 300 s, etc.).

pub mod scenario;

/// Is quick mode (compressed timelines) enabled? The `QUICK` env var is
/// read **once** and latched for the process lifetime: scenario grids,
/// horizons and stabilization holds must all agree on the same mode, and a
/// mid-run env change (e.g. from a test harness) must not produce a
/// half-quick, half-full timeline.
pub fn quick() -> bool {
    use std::sync::OnceLock;
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var("QUICK").map(|v| v == "1").unwrap_or(false))
}

/// Run `f` over `items` on a pool of OS threads (one simulation per
/// thread; each simulation stays single-threaded and deterministic) and
/// return the results **in input order** — figure output must not depend
/// on which configuration finishes first.
///
/// Workers pull the next unstarted item from a shared cursor, so uneven
/// per-cell runtimes (high-skew cells run much longer) still load-balance.
/// The worker count follows `available_parallelism`, capped by the item
/// count and overridable with `SWEEP_THREADS` (set `SWEEP_THREADS=1` to
/// reproduce the old sequential behavior).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, None, f)
}

/// [`parallel_map`] with an explicit worker-thread count. `threads: None`
/// falls back to the `SWEEP_THREADS` env var and then to
/// `available_parallelism` — an explicit count (e.g. from `--threads N`)
/// always wins over the environment, so a flag on the command line cannot
/// be silently overridden by a stale exported variable.
pub fn parallel_map_with<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .filter(|&t| t >= 1)
        .or_else(|| {
            std::env::var("SWEEP_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .min(n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("unpoisoned")
                    .take()
                    .expect("taken once");
                let r = f(item);
                *results[i].lock().expect("unpoisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("worker filled slot")
        })
        .collect()
}

/// Render a per-second series as a sparse text table (every `step` seconds).
pub fn print_series(label: &str, series: &[(u64, f64)], step: u64, unit: &str) {
    println!("  {label} (every {step}s, {unit}):");
    print!("   ");
    for (s, v) in series.iter().filter(|(s, _)| s % step == 0) {
        print!(" {s}:{v:.0}");
    }
    println!();
}

/// Simple mean ± population-σ formatter over per-seed samples.
pub fn pm(samples: &[f64]) -> String {
    let s = simcore::stats::Summary::of(samples);
    if samples.len() > 1 {
        format!("{:>9.0}(±{:>6.0})", s.mean, s.std)
    } else {
        format!("{:>9.0}", s.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map((0..256u64).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..256u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert!(parallel_map(Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(parallel_map(vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_with_explicit_thread_count_preserves_order() {
        for threads in [1, 2, 7] {
            let out = parallel_map_with((0..64u64).collect::<Vec<_>>(), Some(threads), |i| i + 1);
            assert_eq!(out, (1..=64u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pm_formats_single_and_multi() {
        assert!(pm(&[10.0]).contains("10"));
        let m = pm(&[10.0, 20.0]);
        assert!(m.contains("15") && m.contains("±"));
    }

    #[test]
    fn harness_runs_end_to_end() {
        use scenario::{MechanismSpec, ScaleSpec, ScenarioSpec, WorkloadSpec};
        use simcore::time::secs;
        let spec = ScenarioSpec {
            name: "test/harness_smoke".into(),
            engine: scenario::EngineProfile::Perf,
            seed: 0xD225,
            workload: WorkloadSpec::TinyJob {
                rate: 2_000.0,
                universe: 128,
                par: 2,
            },
            mechanism: MechanismSpec::Drrs,
            scale: Some(ScaleSpec { at: secs(1), to: 3 }),
            horizon: secs(6),
            backend: simcore::SchedulerBackend::default(),
            dispatch: streamflow::DispatchMode::default(),
            regions: 1,
            resume_latency: 0,
            bus_sink: Default::default(),
            events_path: None,
        };
        let r = spec.run();
        assert!(r.migration_done.is_some());
        assert_eq!(r.violations, 0);
        let (peak, mean) = r.latency_ms(0, secs(6));
        assert!(peak >= mean);
    }
}
