//! [`RunReport`] — the typed result of one scenario run, replacing ad-hoc
//! `sim.world.metrics.*` field poking in the figure binaries.
//!
//! A report is fully serializable: [`RunReport::to_json`] writes it as a
//! flat JSON object (floats in Rust's shortest round-trip form) and
//! [`RunReport::parse`] reads it back **losslessly**, so reports can cross
//! the process boundary during sharded sweeps without perturbing a single
//! bit of the rendered figures. `wall_secs` is the only field that differs
//! between two runs of the same spec — everything else is deterministic.

use simcore::stats::TimeSeries;
use simcore::time::{as_ms, SimTime};
use streamflow::world::Sim;
use streamflow::OpId;

use super::ScenarioSpec;

/// Everything a single scenario run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Registry name of the scenario (`group/detail...`).
    pub scenario: String,
    /// Mechanism display label (`DRRS`, `Meces`, ...).
    pub mechanism: String,
    /// Engine seed the run used.
    pub seed: u64,
    /// When the scale was requested (0 when the spec has no scale).
    pub scale_at: SimTime,
    /// Run horizon.
    pub horizon: SimTime,
    /// Simulated events dispatched.
    pub events: u64,
    /// Wall-clock seconds spent in `run_until` — the only
    /// non-deterministic field.
    pub wall_secs: f64,
    /// Records delivered to sinks.
    pub sink_records: u64,
    /// The deterministic metrics digest (same spec ⇒ same digest).
    pub digest: u64,
    /// Execution-order violations observed.
    pub violations: u64,
    /// Cumulative propagation delay `Lp`, ms.
    pub lp_ms: f64,
    /// Average dependency overhead `Ld`, ms.
    pub ld_ms: f64,
    /// Total suspension across the scaled operator's instances, ms.
    pub suspension_ms: f64,
    /// Bytes moved over migration links.
    pub bytes_transferred: u64,
    /// Migration completion time, if reached.
    pub migration_done: Option<SimTime>,
    /// The paper's scaling-period end, if the system re-stabilized.
    pub scaling_period_end: Option<SimTime>,
    /// Key-group moves in the scale plan (0 when no plan was made).
    pub planned_moves: u64,
    /// Planned moves whose state actually settled at the destination.
    pub settled_moves: u64,
    /// Mean migrations per state unit (Meces back-and-forth counting).
    pub churn_avg: f64,
    /// Max migrations of any single state unit.
    pub churn_max: u32,
    /// Events dispatched per scheduler region (one entry per region;
    /// `[events]` for a single-region run).
    pub region_events: Vec<u64>,
    /// Region-scheduler dispatched runs (one pop = a run of one).
    pub sync_runs: u64,
    /// Runs whose same-instant events spanned regions and were merged.
    pub merged_runs: u64,
    /// Advances granted by the global-minimum rule alone (would have
    /// blocked under pure neighbor-clock + lookahead CMB).
    pub min_rule_grants: u64,
    /// Null messages a message-passing CMB runtime would have needed.
    pub null_msgs: u64,
    /// Bus events accepted for publication (0 under the `Null` sink).
    pub bus_published: u64,
    /// Bus events evicted by `DropOldest` channels (deterministic).
    pub bus_dropped: u64,
    /// Deepest any bus channel ever got (high-water lag, in events).
    pub bus_lag_max: u64,
    /// Per-class drop counts, one entry per [`streamflow::BusClass`] in
    /// declaration order.
    pub bus_class_drops: Vec<u64>,
    /// End-to-end latency samples `(sink arrival µs, latency µs)`.
    pub latency: Vec<(SimTime, f64)>,
    /// Cumulative suspension samples `(time µs, cumulative µs)`.
    pub suspension_series: Vec<(SimTime, f64)>,
    /// Source throughput `(second, records/s)`.
    pub throughput: Vec<(u64, f64)>,
}

impl RunReport {
    /// Harvest a report from a finished simulation. Must only be called
    /// after `run_until(spec.horizon)` — it reads clocks and instance
    /// suspension "as of now".
    pub fn harvest(spec: &ScenarioSpec, sim: &Sim, op: OpId, wall_secs: f64) -> Self {
        let w = &sim.world;
        let scale_at = spec.scale.map(|s| s.at).unwrap_or(0);
        let hold = if crate::quick() {
            simcore::time::secs(20)
        } else {
            simcore::time::secs(100)
        };
        let suspension_total: u64 = w.ops[op.0 as usize]
            .instances
            .iter()
            .map(|&i| w.insts[i.0 as usize].suspension_as_of(w.now()))
            .sum();
        let (planned_moves, settled_moves) = match w.scale.plan.as_ref() {
            Some(plan) => (
                plan.moves.len() as u64,
                plan.moves
                    .iter()
                    .filter(|m| w.insts[m.to.0 as usize].state.holds_group(m.kg))
                    .count() as u64,
            ),
            None => (0, 0),
        };
        let (churn_avg, churn_max) = w.scale.metrics.migration_churn();
        let region_events = (0..w.region_map.k())
            .map(|r| w.q.region_processed(r))
            .collect();
        let sync = w.q.region_sync_stats();
        let bus = w.bus.summary();
        Self {
            scenario: spec.name.clone(),
            mechanism: spec.mechanism.label().to_string(),
            seed: spec.seed,
            scale_at,
            horizon: spec.horizon,
            events: w.q.processed(),
            wall_secs,
            sink_records: w.metrics.sink_records,
            digest: w.metrics_digest(),
            violations: w.semantics.violations(),
            lp_ms: as_ms(w.scale.metrics.cumulative_propagation_delay()),
            ld_ms: w.scale.metrics.avg_dependency_overhead() / 1_000.0,
            suspension_ms: as_ms(suspension_total),
            bytes_transferred: w.scale.metrics.bytes_transferred,
            migration_done: w.scale.metrics.migration_done,
            scaling_period_end: w.metrics.scaling_period_end(
                scale_at,
                simcore::time::secs(50),
                1.10,
                hold,
            ),
            planned_moves,
            settled_moves,
            churn_avg,
            churn_max,
            region_events,
            sync_runs: sync.runs,
            merged_runs: sync.merged_runs,
            min_rule_grants: sync.min_rule_grants,
            null_msgs: sync.null_msgs,
            bus_published: bus.published,
            bus_dropped: bus.dropped,
            bus_lag_max: bus.lag_max,
            bus_class_drops: bus.class_drops.to_vec(),
            latency: w.metrics.latency.points().to_vec(),
            suspension_series: w.metrics.suspension.points().to_vec(),
            throughput: w.metrics.throughput(),
        }
    }

    /// The latency samples as a [`TimeSeries`] (for windowed statistics
    /// with the exact semantics the engine's `Metrics` uses).
    fn latency_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(t, v) in &self.latency {
            ts.push(t, v);
        }
        ts
    }

    /// Peak/mean latency (ms) over `[lo, hi)` µs — same computation as
    /// `Metrics::latency_stats_ms`.
    pub fn latency_ms(&self, lo: SimTime, hi: SimTime) -> (f64, f64) {
        let ts = self.latency_series();
        let peak = ts.peak(lo, hi).unwrap_or(0.0);
        let mean = ts.mean(lo, hi).unwrap_or(0.0);
        (as_ms(peak as SimTime), as_ms(mean as SimTime))
    }

    /// The latency series as per-second means in `(second, ms)`.
    pub fn latency_series_ms(&self) -> Vec<(u64, f64)> {
        self.latency_series()
            .per_second_mean()
            .into_iter()
            .map(|(s, v)| (s, v / 1_000.0))
            .collect()
    }

    /// The cumulative-suspension series in `(second, ms)`.
    pub fn suspension_series_ms(&self) -> Vec<(u64, f64)> {
        self.suspension_series
            .iter()
            .map(|&(t, v)| (t / 1_000_000, v / 1_000.0))
            .collect()
    }

    /// Mean source throughput over `[lo, hi)` seconds — literally the
    /// engine's windowed-throughput rule (`metrics::mean_per_second`), so
    /// report-side statistics cannot drift from `Metrics::mean_throughput`.
    pub fn mean_throughput(&self, lo: u64, hi: u64) -> f64 {
        streamflow::metrics::mean_per_second(self.throughput.iter().copied(), lo, hi)
    }

    /// Migration completion as seconds after the scale request (`NaN` if
    /// the migration never finished).
    pub fn migration_secs(&self) -> f64 {
        self.migration_done
            .map(|t| t as f64 / 1e6 - self.scale_at as f64 / 1e6)
            .unwrap_or(f64::NAN)
    }

    /// Fraction of the planned migration that settled, in percent
    /// (100 when nothing was planned).
    pub fn settled_pct(&self) -> u64 {
        (self.settled_moves * 100)
            .checked_div(self.planned_moves)
            .unwrap_or(100)
    }

    /// Serialize to JSON, each scalar field on its own line and each series
    /// on one line, indented by `indent`. Floats use Rust's shortest
    /// round-trip formatting, so [`RunReport::parse`] recovers them
    /// bit-exactly.
    pub fn to_json(&self, indent: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let i = indent;
        let _ = writeln!(s, "{i}{{");
        let _ = writeln!(s, "{i}  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(s, "{i}  \"mechanism\": \"{}\",", self.mechanism);
        let _ = writeln!(s, "{i}  \"seed\": {},", self.seed);
        let _ = writeln!(s, "{i}  \"scale_at\": {},", self.scale_at);
        let _ = writeln!(s, "{i}  \"horizon\": {},", self.horizon);
        let _ = writeln!(s, "{i}  \"events\": {},", self.events);
        let _ = writeln!(s, "{i}  \"wall_secs\": {:?},", self.wall_secs);
        let _ = writeln!(s, "{i}  \"sink_records\": {},", self.sink_records);
        let _ = writeln!(s, "{i}  \"digest\": \"0x{:016x}\",", self.digest);
        let _ = writeln!(s, "{i}  \"violations\": {},", self.violations);
        let _ = writeln!(s, "{i}  \"lp_ms\": {:?},", self.lp_ms);
        let _ = writeln!(s, "{i}  \"ld_ms\": {:?},", self.ld_ms);
        let _ = writeln!(s, "{i}  \"suspension_ms\": {:?},", self.suspension_ms);
        let _ = writeln!(s, "{i}  \"bytes_transferred\": {},", self.bytes_transferred);
        let _ = writeln!(s, "{i}  \"migration_done\": {},", opt(self.migration_done));
        let _ = writeln!(
            s,
            "{i}  \"scaling_period_end\": {},",
            opt(self.scaling_period_end)
        );
        let _ = writeln!(s, "{i}  \"planned_moves\": {},", self.planned_moves);
        let _ = writeln!(s, "{i}  \"settled_moves\": {},", self.settled_moves);
        let _ = writeln!(s, "{i}  \"churn_avg\": {:?},", self.churn_avg);
        let _ = writeln!(s, "{i}  \"churn_max\": {},", self.churn_max);
        let _ = writeln!(s, "{i}  \"region_events\": {},", ints(&self.region_events));
        let _ = writeln!(s, "{i}  \"sync_runs\": {},", self.sync_runs);
        let _ = writeln!(s, "{i}  \"merged_runs\": {},", self.merged_runs);
        let _ = writeln!(s, "{i}  \"min_rule_grants\": {},", self.min_rule_grants);
        let _ = writeln!(s, "{i}  \"null_msgs\": {},", self.null_msgs);
        let _ = writeln!(s, "{i}  \"bus_published\": {},", self.bus_published);
        let _ = writeln!(s, "{i}  \"bus_dropped\": {},", self.bus_dropped);
        let _ = writeln!(s, "{i}  \"bus_lag_max\": {},", self.bus_lag_max);
        let _ = writeln!(
            s,
            "{i}  \"bus_class_drops\": {},",
            ints(&self.bus_class_drops)
        );
        let _ = writeln!(s, "{i}  \"latency\": {},", pairs(&self.latency));
        let _ = writeln!(
            s,
            "{i}  \"suspension_series\": {},",
            pairs(&self.suspension_series)
        );
        let _ = writeln!(s, "{i}  \"throughput\": {}", pairs(&self.throughput));
        let _ = writeln!(s, "{i}}}");
        s
    }

    /// Parse a report back from the JSON [`RunReport::to_json`] writes.
    /// Tolerates surrounding whitespace and trailing commas per line; the
    /// field set is strict (a missing field is an error).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut fields = std::collections::HashMap::new();
        for line in text.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some(rest) = t.strip_prefix('"') {
                if let Some((key, val)) = rest.split_once("\":") {
                    fields.insert(key.to_string(), val.trim().to_string());
                }
            }
        }
        let get = |k: &str| -> Result<&String, String> {
            fields.get(k).ok_or_else(|| format!("missing field {k:?}"))
        };
        let num_u64 = |k: &str| -> Result<u64, String> {
            get(k)?.parse().map_err(|e| format!("field {k:?}: {e}"))
        };
        let num_f64 = |k: &str| -> Result<f64, String> {
            get(k)?.parse().map_err(|e| format!("field {k:?}: {e}"))
        };
        let num_opt = |k: &str| -> Result<Option<u64>, String> {
            let v = get(k)?;
            if v == "null" {
                Ok(None)
            } else {
                v.parse().map(Some).map_err(|e| format!("field {k:?}: {e}"))
            }
        };
        let string =
            |k: &str| -> Result<String, String> { Ok(get(k)?.trim_matches('"').to_string()) };
        let digest_text = string("digest")?;
        let digest = u64::from_str_radix(digest_text.trim_start_matches("0x"), 16)
            .map_err(|e| format!("field \"digest\": {e}"))?;
        Ok(Self {
            scenario: string("scenario")?,
            mechanism: string("mechanism")?,
            seed: num_u64("seed")?,
            scale_at: num_u64("scale_at")?,
            horizon: num_u64("horizon")?,
            events: num_u64("events")?,
            wall_secs: num_f64("wall_secs")?,
            sink_records: num_u64("sink_records")?,
            digest,
            violations: num_u64("violations")?,
            lp_ms: num_f64("lp_ms")?,
            ld_ms: num_f64("ld_ms")?,
            suspension_ms: num_f64("suspension_ms")?,
            bytes_transferred: num_u64("bytes_transferred")?,
            migration_done: num_opt("migration_done")?,
            scaling_period_end: num_opt("scaling_period_end")?,
            planned_moves: num_u64("planned_moves")?,
            settled_moves: num_u64("settled_moves")?,
            churn_avg: num_f64("churn_avg")?,
            churn_max: num_u64("churn_max")? as u32,
            region_events: parse_ints(get("region_events")?)
                .map_err(|e| format!("region_events: {e}"))?,
            sync_runs: num_u64("sync_runs")?,
            merged_runs: num_u64("merged_runs")?,
            min_rule_grants: num_u64("min_rule_grants")?,
            null_msgs: num_u64("null_msgs")?,
            bus_published: num_u64("bus_published")?,
            bus_dropped: num_u64("bus_dropped")?,
            bus_lag_max: num_u64("bus_lag_max")?,
            bus_class_drops: parse_ints(get("bus_class_drops")?)
                .map_err(|e| format!("bus_class_drops: {e}"))?,
            latency: parse_pairs(get("latency")?).map_err(|e| format!("latency: {e}"))?,
            suspension_series: parse_pairs(get("suspension_series")?)
                .map_err(|e| format!("suspension_series: {e}"))?,
            throughput: parse_pairs(get("throughput")?).map_err(|e| format!("throughput: {e}"))?,
        })
    }
}

fn opt(v: Option<SimTime>) -> String {
    v.map(|t| t.to_string()).unwrap_or_else(|| "null".into())
}

/// `[[t0,v0],[t1,v1],...]` on one line, floats in round-trip form.
fn pairs(xs: &[(u64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(xs.len() * 16 + 2);
    s.push('[');
    for (i, (t, v)) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{t},{v:?}]");
    }
    s.push(']');
    s
}

/// `[a,b,c]` on one line.
fn ints(xs: &[u64]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(xs.len() * 8 + 2);
    s.push('[');
    for (i, v) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

fn parse_ints(s: &str) -> Result<Vec<u64>, String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("not an array")?;
    inner
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse().map_err(|e| format!("element: {e}")))
        .collect()
}

fn parse_pairs(s: &str) -> Result<Vec<(u64, f64)>, String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("not an array")?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            break;
        }
        let body = rest.strip_prefix('[').ok_or("expected [t,v] pair")?;
        let (pair, tail) = body.split_once(']').ok_or("unterminated pair")?;
        let (t, v) = pair.split_once(',').ok_or("pair needs two elements")?;
        out.push((
            t.trim().parse().map_err(|e| format!("time: {e}"))?,
            v.trim().parse().map_err(|e| format!("value: {e}"))?,
        ));
        rest = tail;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            scenario: "fig15/DRRS/skew0.5/gb5/tps5000".into(),
            mechanism: "DRRS".into(),
            seed: 15,
            scale_at: 40_000_000,
            horizon: 170_000_000,
            events: 123_456,
            wall_secs: 0.123456789012345,
            sink_records: 777,
            digest: 0xc1221c2392952504,
            violations: 0,
            lp_ms: 1.5,
            ld_ms: 0.25,
            suspension_ms: 10.125,
            bytes_transferred: 1_000_000,
            migration_done: Some(55_000_001),
            scaling_period_end: None,
            planned_moves: 229,
            settled_moves: 229,
            churn_avg: 1.0,
            churn_max: 1,
            region_events: vec![100_000, 23_456],
            sync_runs: 4_000,
            merged_runs: 17,
            min_rule_grants: 3,
            null_msgs: 9,
            bus_published: 1_234,
            bus_dropped: 56,
            bus_lag_max: 64,
            bus_class_drops: vec![56, 0, 0, 0, 0],
            latency: vec![(100, 2.0), (200, 3.0625)],
            suspension_series: vec![(500_000, 1234.0)],
            throughput: vec![(0, 4999.0), (1, 5001.0)],
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let r = sample();
        let json = r.to_json("");
        let back = RunReport::parse(&json).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.to_json(""), json, "re-serialization drifted");
    }

    #[test]
    fn round_trip_survives_awkward_floats() {
        let mut r = sample();
        r.wall_secs = 1.0 / 3.0;
        r.churn_avg = f64::NAN;
        r.latency = vec![(1, 1e-9), (2, 123456789.000001)];
        let back = RunReport::parse(&r.to_json("  ")).expect("parse");
        assert!(back.churn_avg.is_nan());
        assert_eq!(back.wall_secs.to_bits(), r.wall_secs.to_bits());
        assert_eq!(back.latency, r.latency);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let err = RunReport::parse("{\n  \"scenario\": \"x\"\n}").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn windowed_helpers_match_metrics_semantics() {
        let r = sample();
        // mean_throughput counts empty seconds in the denominator.
        assert!((r.mean_throughput(0, 4) - (4999.0 + 5001.0) / 4.0).abs() < 1e-9);
        assert_eq!(r.mean_throughput(10, 20), 0.0);
        assert_eq!(r.settled_pct(), 100);
        let (peak, mean) = r.latency_ms(0, 1_000);
        assert!(peak >= mean && peak > 0.0);
    }
}
