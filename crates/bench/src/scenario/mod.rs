//! `bench::scenario` — the unified experiment API: **spec → registry →
//! runner → report**.
//!
//! The paper's evaluation is a grid of scenarios (workload × mechanism ×
//! scale plan × seed). This module makes that shape first-class:
//!
//! * [`ScenarioSpec`] — a declarative, nameable description of **one run**:
//!   workload parameters, mechanism, scale plan, horizon, seed, and the
//!   engine's scheduler/dispatch cell. Specs are plain data (`Clone` +
//!   `PartialEq`), so a run is identified by its name and reconstructible
//!   anywhere — which is exactly what makes process-level sharding possible.
//! * [`registry`] — the central catalog naming every run used in the repo:
//!   the five `perf_report` scenarios, every fig02–fig15 row, and the
//!   ablation cells. Binaries pull specs from here instead of hand-assembling
//!   `(World, OpId)` pairs.
//! * [`runner`] — executes specs deterministically: in-process on
//!   [`crate::parallel_map`] (one single-threaded sim per worker thread,
//!   canonical-order join), or sharded across processes via `--shard K/N`
//!   (run every grid cell whose index ≡ K mod N), `--emit FILE` (write the
//!   shard's reports as JSON) and `--merge FILES..` (recombine shards and
//!   render exactly what the unsharded run would have rendered).
//! * [`RunReport`] — the typed result of one run: events/sec, the
//!   deterministic metrics digest, the latency/throughput/suspension series,
//!   Lp/Ld, suspension, migration progress. Reports serialize to JSON and
//!   parse back losslessly, so shard merging is byte-exact.
//!
//! # Determinism contract
//!
//! Building a spec twice yields byte-identical simulations: every field of
//! [`ScenarioSpec`] is plain data, the engine seed is part of the spec, and
//! the scheduler backend / dispatch mode are digest-neutral by the engine's
//! own contract (enforced by `perf_report`). Consequently:
//!
//! * the same spec run twice produces the same [`RunReport`] except for
//!   `wall_secs` (the only non-deterministic field);
//! * a sharded sweep merged back together renders byte-identically to the
//!   unsharded sweep — the shard assignment only partitions *which process*
//!   runs a cell, never what the cell computes;
//! * `RunReport` JSON round-trips exactly (floats are written in shortest
//!   round-trip form), so nothing drifts across the emit/merge boundary.

pub mod registry;
pub mod report;
pub mod runner;

pub use report::RunReport;
pub use runner::{Runner, Shard, SweepMode};

use std::time::Instant;

use baselines::{megaphone, otfs_fluid, MecesPlugin, UnboundPlugin};
use drrs_core::{FlexScaler, MechanismConfig};
use simcore::time::SimTime;
use simcore::SchedulerBackend;
use streamflow::world::tests_support::{tiny_job, twin_jobs};
use streamflow::world::Sim;
use streamflow::{BusSinkKind, DispatchMode, EngineConfig, NoScale, OpId, ScalePlugin, World};
use workloads::custom::{cluster_engine_config, custom, CustomParams};
use workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

/// Which engine-configuration family a scenario runs on. Profiles are the
/// deployment shapes the paper uses; the seed rides on the spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineProfile {
    /// `EngineConfig::test()` with 128 key-groups and the semantics checker
    /// off — the `perf_report` measurement profile.
    Perf,
    /// The paper's single-machine NEXMark deployment (128 key-groups).
    Nexmark,
    /// The Twitch pipeline deployment (128 key-groups).
    Twitch,
    /// Twitch with the semantics checker on (fig. 2 counts order
    /// violations as part of its story).
    TwitchChecked,
    /// The Swarm-cluster sensitivity deployment (256 key-groups).
    Cluster,
}

/// The workload half of a scenario: which job to build, from serializable
/// parameters only.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// The tiny source → keyed-agg → sink job used by the perf scenarios
    /// and the determinism tests.
    TinyJob {
        /// Source rate, records/second.
        rate: f64,
        /// Key universe size.
        universe: u64,
        /// Aggregator parallelism.
        par: usize,
    },
    /// NEXMark Q7 (sliding-window max).
    Q7(Q7Params),
    /// NEXMark Q8 (windowed person⋈auction join).
    Q8(Q8Params),
    /// The seven-operator Twitch pipeline.
    Twitch(TwitchParams),
    /// The custom 3-operator sensitivity workload.
    Custom(CustomParams),
    /// `pipes` disjoint copies of the tiny job side by side. The operator
    /// graph has no edges between the copies, so a region partitioner puts
    /// them in different regions with zero cut channels and infinite
    /// lookahead — the best case for region-partitioned execution.
    TwinPipes {
        /// Source rate per pipeline, records/second.
        rate: f64,
        /// Key universe size.
        universe: u64,
        /// Aggregator parallelism per pipeline.
        par: usize,
        /// Number of disjoint pipelines.
        pipes: usize,
    },
}

/// The mechanism half of a scenario: which rescaling plugin drives the run.
#[derive(Clone, Debug, PartialEq)]
pub enum MechanismSpec {
    /// No scaling at all.
    NoScale,
    /// Full DRRS (all three mechanisms).
    Drrs,
    /// Any `FlexScaler` configuration (ablation variants, OTFS flavors…).
    Flex(MechanismConfig),
    /// Megaphone with `batch` key-groups per sequential batch.
    Megaphone {
        /// Key-groups per sequential migration batch.
        batch: usize,
    },
    /// Meces (fetch-on-demand).
    Meces,
    /// The correctness-free "Unbound" probe from fig. 2.
    Unbound,
    /// Generalized OTFS with fluid migration.
    OtfsFluid,
}

impl MechanismSpec {
    /// Display label, as the figures print it.
    pub fn label(&self) -> &'static str {
        match self {
            Self::NoScale => "No Scale",
            Self::Drrs => "DRRS",
            Self::Flex(cfg) => cfg.name,
            Self::Megaphone { .. } => "Megaphone",
            Self::Meces => "Meces",
            Self::Unbound => "Unbound",
            Self::OtfsFluid => "OTFS",
        }
    }

    /// Build the scale plugin this spec describes.
    pub fn plugin(&self) -> Box<dyn ScalePlugin> {
        match self {
            Self::NoScale => Box::new(NoScale),
            Self::Drrs => Box::new(FlexScaler::drrs()),
            Self::Flex(cfg) => Box::new(FlexScaler::new(cfg.clone())),
            Self::Megaphone { batch } => Box::new(megaphone(*batch)),
            Self::Meces => Box::new(MecesPlugin::new()),
            Self::Unbound => Box::new(UnboundPlugin::new()),
            Self::OtfsFluid => Box::new(otfs_fluid()),
        }
    }
}

/// A requested mid-run scale of the workload's scaling operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleSpec {
    /// When to request the scale.
    pub at: SimTime,
    /// Target parallelism.
    pub to: usize,
}

/// A declarative, serializable description of one experiment run.
///
/// Everything a run needs is in here; [`ScenarioSpec::run`] is a pure
/// function of the spec (modulo wall-clock timing). Specs come from
/// [`registry`]; ad-hoc variations are derived with the `with_*` builders
/// so tests and A/B harnesses never re-assemble worlds by hand.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Unique registry name, `group/detail...` (e.g. `perf/steady_50k`).
    pub name: String,
    /// Engine-configuration family.
    pub engine: EngineProfile,
    /// Engine seed (drives every RNG in the run).
    pub seed: u64,
    /// The job to build.
    pub workload: WorkloadSpec,
    /// The rescaling mechanism under test.
    pub mechanism: MechanismSpec,
    /// Optional mid-run scale of the workload's scaling operator.
    pub scale: Option<ScaleSpec>,
    /// How long to run.
    pub horizon: SimTime,
    /// Future-event-list backend (digest-neutral by contract).
    pub backend: SchedulerBackend,
    /// Event dispatch mode (digest-neutral by contract).
    pub dispatch: DispatchMode,
    /// Scheduler region count (digest-neutral by contract: any region
    /// count pops the identical event order; see `EngineConfig::regions`).
    pub regions: usize,
    /// Cut-channel resume-notice latency, µs (`EngineConfig::resume_latency`).
    /// 0 (the default) keeps the merged-exact sequential engine and every
    /// historical digest; a positive value with `regions > 1` engages PDES
    /// mode, where the digest contract becomes *parallel == sequential at
    /// the same `resume_latency`* rather than equality with the 0-latency
    /// run.
    pub resume_latency: SimTime,
    /// Which sink the engine's event/metrics bus feeds
    /// (`streamflow::bus`). `Null` (the default) disables the bus;
    /// every sink is digest-neutral by the engine's contract.
    pub bus_sink: BusSinkKind,
    /// Stream bus events to this JSONL file (`--events`). Implies the
    /// `Jsonl` sink for sequential runs; threaded runs buffer per region
    /// and write the merged stream after the join.
    pub events_path: Option<String>,
}

impl ScenarioSpec {
    /// The name's last path segment (what `perf_report` prints and what
    /// the `BENCH_PRn.json` baselines key digests by).
    pub fn short_name(&self) -> &str {
        self.name.rsplit('/').next().unwrap_or(&self.name)
    }

    /// Derive a spec with a different scheduler backend.
    pub fn with_backend(mut self, backend: SchedulerBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Derive a spec with a different dispatch mode.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Derive a spec pinned to one (backend, dispatch) measurement cell.
    pub fn with_cell(self, backend: SchedulerBackend, dispatch: DispatchMode) -> Self {
        self.with_backend(backend).with_dispatch(dispatch)
    }

    /// Derive a spec with a different scheduler region count.
    pub fn with_regions(mut self, regions: usize) -> Self {
        self.regions = regions;
        self
    }

    /// Derive a spec with a different cut-channel resume latency (µs).
    pub fn with_resume_latency(mut self, resume_latency: SimTime) -> Self {
        self.resume_latency = resume_latency;
        self
    }

    /// Derive a spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derive a spec with a different horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Derive a spec with a different mechanism.
    pub fn with_mechanism(mut self, mechanism: MechanismSpec) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Derive a spec with a different event-bus sink.
    pub fn with_bus_sink(mut self, sink: BusSinkKind) -> Self {
        self.bus_sink = sink;
        self
    }

    /// Derive a spec streaming bus events to a JSONL file (selects the
    /// `Jsonl` sink).
    pub fn with_events_path(mut self, path: impl Into<String>) -> Self {
        self.events_path = Some(path.into());
        self.bus_sink = BusSinkKind::Jsonl;
        self
    }

    /// The engine configuration this spec resolves to.
    pub fn engine_config(&self) -> EngineConfig {
        let mut cfg = match self.engine {
            EngineProfile::Perf => {
                let mut c = EngineConfig::test();
                c.max_key_groups = 128;
                c.check_semantics = false;
                c
            }
            EngineProfile::Nexmark => nexmark_engine_config(self.seed),
            EngineProfile::Twitch => twitch_engine_config(self.seed),
            EngineProfile::TwitchChecked => {
                let mut c = twitch_engine_config(self.seed);
                c.check_semantics = true;
                c
            }
            EngineProfile::Cluster => cluster_engine_config(self.seed),
        };
        cfg.seed = self.seed;
        cfg.scheduler = self.backend;
        cfg.regions = self.regions;
        cfg.resume_latency = self.resume_latency;
        cfg.bus_sink = self.bus_sink;
        cfg
    }

    /// Build the world and return it with the scaling operator.
    pub fn build_world(&self) -> (World, OpId) {
        let cfg = self.engine_config();
        match &self.workload {
            WorkloadSpec::TinyJob {
                rate,
                universe,
                par,
            } => tiny_job(cfg, *rate, *universe, *par),
            WorkloadSpec::Q7(p) => q7(cfg, p),
            WorkloadSpec::Q8(p) => q8(cfg, p),
            WorkloadSpec::Twitch(p) => twitch(cfg, p),
            WorkloadSpec::Custom(p) => custom(cfg, p),
            WorkloadSpec::TwinPipes {
                rate,
                universe,
                par,
                pipes,
            } => (
                // The scaling operator is the first pipeline's aggregator
                // (operators are minted src0, agg0, sink0, src1, ...).
                twin_jobs(cfg, *rate, *universe, *par, *pipes),
                OpId(1),
            ),
        }
    }

    /// Build the ready-to-run simulation: world built, scale scheduled,
    /// plugin attached, dispatch mode applied. Identical construction order
    /// to the pre-registry binaries (schedule before `Sim::new`), so event
    /// sequence numbers — and therefore digests — are preserved.
    pub fn build_sim(&self) -> (Sim, OpId) {
        let (mut w, op) = self.build_world();
        if let Some(s) = self.scale {
            w.schedule_scale(s.at, op, s.to);
        }
        let sim = Sim::new(w, self.mechanism.plugin()).with_dispatch_mode(self.dispatch);
        (sim, op)
    }

    /// Execute the spec to completion and harvest a [`RunReport`].
    /// `wall_secs` times only `run_until` (not world construction), like
    /// the perf harness.
    pub fn run(&self) -> RunReport {
        let (mut sim, op) = self.build_sim();
        if let Some(path) = &self.events_path {
            sim.world
                .bus
                .attach_jsonl(std::path::Path::new(path))
                .expect("open bus events file");
        }
        let start = Instant::now();
        sim.run_until(self.horizon);
        let wall_secs = start.elapsed().as_secs_f64();
        // Final drain + writer join, so lag/drop counters (and the file)
        // are complete before harvesting.
        sim.world.bus.finish().expect("flush bus events file");
        RunReport::harvest(self, &sim, op, wall_secs)
    }

    /// Execute the spec on the thread-per-region parallel executor
    /// ([`streamflow::run_parallel`]) and return the merged report plus
    /// the wall-clock seconds the execution took. When the spec is not in
    /// PDES mode (`resume_latency == 0` or one region) this is the
    /// sequential engine on the calling thread; either way the report's
    /// digest obeys the *parallel == sequential at the same config*
    /// contract. Scale plans are rejected by the engine in PDES mode, so
    /// sweeps route only `NoScale` scenarios here.
    pub fn run_threaded(&self) -> (streamflow::ParallelReport, f64) {
        let start = Instant::now();
        let report = streamflow::run_parallel(|| self.build_sim().0, self.horizon);
        (report, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;

    fn steady() -> ScenarioSpec {
        registry::find("perf/steady_50k", true).expect("registered")
    }

    #[test]
    fn perf_profile_matches_the_perf_report_configuration() {
        let cfg = steady().engine_config();
        assert_eq!(cfg.max_key_groups, 128);
        assert!(!cfg.check_semantics);
        assert_eq!(cfg.seed, 0xD225);
        assert_eq!(cfg.scheduler, SchedulerBackend::default());
    }

    #[test]
    fn cell_override_reaches_the_engine_config() {
        let spec = steady().with_cell(SchedulerBackend::BinaryHeap, DispatchMode::SinglePop);
        assert_eq!(spec.engine_config().scheduler, SchedulerBackend::BinaryHeap);
        assert_eq!(spec.dispatch, DispatchMode::SinglePop);
    }

    #[test]
    fn regions_override_reaches_the_engine_config() {
        let spec = steady().with_regions(2);
        assert_eq!(spec.regions, 2);
        assert_eq!(spec.engine_config().regions, 2);
        assert_eq!(steady().engine_config().regions, 1, "sequential default");
    }

    #[test]
    fn resume_latency_override_reaches_the_engine_config() {
        let spec = steady().with_resume_latency(100);
        assert_eq!(spec.resume_latency, 100);
        assert_eq!(spec.engine_config().resume_latency, 100);
        assert_eq!(
            steady().engine_config().resume_latency,
            0,
            "merged-exact default"
        );
    }

    #[test]
    fn threaded_run_matches_sequential_at_the_same_config() {
        let spec = steady()
            .with_horizon(secs(1))
            .with_regions(2)
            .with_resume_latency(100);
        let seq = spec.run();
        let (par, _) = spec.run_threaded();
        assert_eq!(par.threads, 2, "PDES config must engage both workers");
        assert_eq!(par.digest(), seq.digest);
        assert_eq!(par.obs.processed, seq.events);
        assert_eq!(par.obs.sink_records, seq.sink_records);
    }

    #[test]
    fn same_spec_runs_digest_identically() {
        let spec = steady().with_horizon(secs(2));
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.digest, b.digest, "same spec diverged between two runs");
        assert_eq!(a.events, b.events);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn mechanism_labels_match_the_figures() {
        assert_eq!(MechanismSpec::Drrs.label(), "DRRS");
        assert_eq!(MechanismSpec::NoScale.label(), "No Scale");
        assert_eq!(MechanismSpec::Megaphone { batch: 4 }.label(), "Megaphone");
        assert_eq!(MechanismSpec::OtfsFluid.label(), "OTFS");
        assert_eq!(
            MechanismSpec::Flex(MechanismConfig::dr_only()).label(),
            "DR"
        );
    }
}
