//! The central scenario registry: **every run used anywhere in the repo
//! has a unique name here** — the five `perf_report` scenarios, every
//! fig02–fig15 row, and the ablation cells.
//!
//! Names are hierarchical (`group/detail...`) and stable; they are the
//! shardable identity of a run. Binaries pull their grids from the
//! `*_plan` functions (which also carry the rendering axes — rates, seeds,
//! windows — so the figure layout and the grid can never drift apart), and
//! tests pull individual specs with [`find`].
//!
//! Every function takes `quick: bool` explicitly — quick mode compresses
//! timelines and grids exactly the way the pre-registry binaries did, so
//! the same name resolves to the quick or full variant of the same row.

use simcore::time::{ms, secs, SimTime};
use workloads::custom::CustomParams;
use workloads::nexmark::{Q7Params, Q8Params};
use workloads::twitch::TwitchParams;

use super::{EngineProfile, MechanismSpec, ScaleSpec, ScenarioSpec, WorkloadSpec};
use drrs_core::MechanismConfig;
use simcore::SchedulerBackend;
use streamflow::DispatchMode;

fn spec(
    name: String,
    engine: EngineProfile,
    seed: u64,
    workload: WorkloadSpec,
    mechanism: MechanismSpec,
    scale: Option<ScaleSpec>,
    horizon: SimTime,
) -> ScenarioSpec {
    ScenarioSpec {
        name,
        engine,
        seed,
        workload,
        mechanism,
        scale,
        horizon,
        backend: SchedulerBackend::default(),
        dispatch: DispatchMode::default(),
        regions: 1,
        resume_latency: 0,
        bus_sink: Default::default(),
        events_path: None,
    }
}

/// The five `perf_report` scenarios (the PR-over-PR perf trajectory).
/// Digests of these runs are the cross-build behavior contract recorded in
/// `BENCH_PRn.json`.
pub fn perf_scenarios(quick: bool) -> Vec<ScenarioSpec> {
    let horizon = secs(if quick { 4 } else { 10 });
    let tiny = |rate, universe, par| WorkloadSpec::TinyJob {
        rate,
        universe,
        par,
    };
    let perf = |name: &str, workload, mechanism, scale| {
        spec(
            format!("perf/{name}"),
            EngineProfile::Perf,
            0xD225,
            workload,
            mechanism,
            scale,
            horizon,
        )
    };
    vec![
        perf(
            "steady_50k",
            tiny(50_000.0, 4_096, 4),
            MechanismSpec::NoScale,
            None,
        ),
        perf(
            "drrs_rescale_4_to_6",
            tiny(50_000.0, 4_096, 4),
            MechanismSpec::Drrs,
            Some(ScaleSpec { at: secs(2), to: 6 }),
        ),
        perf(
            "megaphone_rescale_4_to_6",
            tiny(50_000.0, 4_096, 4),
            MechanismSpec::Megaphone { batch: 8 },
            Some(ScaleSpec { at: secs(2), to: 6 }),
        ),
        perf(
            "drrs_scale_in_6_to_3",
            tiny(30_000.0, 4_096, 6),
            MechanismSpec::Drrs,
            Some(ScaleSpec { at: secs(2), to: 3 }),
        ),
        perf(
            "overload_backpressure",
            tiny(120_000.0, 1_024, 2),
            MechanismSpec::NoScale,
            None,
        ),
        // The two region-stress scenarios (PR 7): both mass on the order of
        // 100k pending events in the future-event list, which is where
        // per-region calendar geometry pays. `cut_pipeline_100k` has a data
        // cut edge for the partitioner to find; `twin_pipelines_100k` has
        // zero cut channels and infinite lookahead (the PDES best case).
        perf(
            "cut_pipeline_100k",
            tiny(400_000.0, 16_384, 8),
            MechanismSpec::NoScale,
            None,
        ),
        perf(
            "twin_pipelines_100k",
            WorkloadSpec::TwinPipes {
                rate: 200_000.0,
                universe: 8_192,
                par: 4,
                pipes: 2,
            },
            MechanismSpec::NoScale,
            None,
        ),
    ]
}

/// The quick-mode Twitch trace used by several figures (events compressed
/// into a shorter window).
fn twitch_params(quick: bool) -> TwitchParams {
    if quick {
        TwitchParams {
            events: 1_200_000,
            duration_s: 300,
            ..Default::default()
        }
    } else {
        TwitchParams::default()
    }
}

/// Fig. 2 — overhead decomposition (Unbound vs OTFS vs No Scale on Twitch).
pub struct Fig02Plan {
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// End of the paper's measurement window.
    pub end: SimTime,
    /// The three rows, in print order: Unbound, OTFS, No Scale.
    pub specs: Vec<ScenarioSpec>,
}

/// Build the fig. 2 plan.
pub fn fig02_plan(quick: bool) -> Fig02Plan {
    let (scale_at, end) = if quick {
        (secs(60), secs(140))
    } else {
        (secs(250), secs(450))
    };
    let horizon = end + secs(30);
    let params = if quick {
        TwitchParams {
            events: 800_000,
            duration_s: 200,
            ..TwitchParams::default()
        }
    } else {
        TwitchParams::default()
    };
    let row = |name: &str, mechanism, scale| {
        spec(
            format!("fig02/{name}"),
            EngineProfile::TwitchChecked,
            42,
            WorkloadSpec::Twitch(params.clone()),
            mechanism,
            scale,
            horizon,
        )
    };
    let out = ScaleSpec {
        at: scale_at,
        to: 12,
    };
    Fig02Plan {
        scale_at,
        end,
        specs: vec![
            row("unbound", MechanismSpec::Unbound, Some(out)),
            row("otfs", MechanismSpec::OtfsFluid, Some(out)),
            row("noscale", MechanismSpec::NoScale, None),
        ],
    }
}

/// The three comparison mechanisms of figs. 10–13, in print order.
fn comparison_mechs() -> Vec<(&'static str, MechanismSpec)> {
    vec![
        ("DRRS", MechanismSpec::Drrs),
        ("Meces", MechanismSpec::Meces),
        ("Megaphone", MechanismSpec::Megaphone { batch: 1 }),
    ]
}

fn latency_workload(wname: &str, quick: bool) -> (EngineProfile, WorkloadSpec) {
    match wname {
        "Q7" => {
            let p = if quick {
                Q7Params {
                    tps: 10_000.0,
                    ..Default::default()
                }
            } else {
                Q7Params::default()
            };
            (EngineProfile::Nexmark, WorkloadSpec::Q7(p))
        }
        "Q8" => (
            EngineProfile::Nexmark,
            WorkloadSpec::Q8(Q8Params::default()),
        ),
        _ => (
            EngineProfile::Twitch,
            WorkloadSpec::Twitch(twitch_params(quick)),
        ),
    }
}

/// Fig. 10 + Fig. 11 — latency/throughput during scaling on Q7/Q8/Twitch.
pub struct Fig1011Plan {
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// Per-seed repetition of every (workload, mechanism) row.
    pub seeds: Vec<u64>,
    /// `(workload name, horizon)`, in print order.
    pub workloads: Vec<(&'static str, SimTime)>,
    /// Mechanism names, in print order.
    pub mechs: Vec<&'static str>,
    /// All rows, workload-major, then mechanism, then seed.
    pub specs: Vec<ScenarioSpec>,
}

/// Build the fig. 10/11 plan.
pub fn fig10_11_plan(quick: bool) -> Fig1011Plan {
    let scale_at = if quick { secs(60) } else { secs(300) };
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2] };
    let workloads: Vec<(&'static str, SimTime)> = if quick {
        vec![("Q7", secs(200)), ("Twitch", secs(200))]
    } else {
        vec![("Q7", secs(620)), ("Q8", secs(900)), ("Twitch", secs(650))]
    };
    let mut specs = Vec::new();
    for &(wname, horizon) in &workloads {
        for (mname, mech) in comparison_mechs() {
            for &seed in &seeds {
                let (engine, workload) = latency_workload(wname, quick);
                specs.push(spec(
                    format!("fig10_11/{wname}/{mname}/seed{seed}"),
                    engine,
                    seed,
                    workload,
                    mech.clone(),
                    Some(ScaleSpec {
                        at: scale_at,
                        to: 12,
                    }),
                    horizon,
                ));
            }
        }
    }
    Fig1011Plan {
        scale_at,
        seeds,
        workloads,
        mechs: comparison_mechs().into_iter().map(|(n, _)| n).collect(),
        specs,
    }
}

/// Fig. 12 + Fig. 13 — Lp/Ld decomposition and cumulative suspension.
pub struct Fig1213Plan {
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// `(workload name, horizon)`, in print order.
    pub workloads: Vec<(&'static str, SimTime)>,
    /// Mechanism names, in print order.
    pub mechs: Vec<&'static str>,
    /// All rows, workload-major, then mechanism.
    pub specs: Vec<ScenarioSpec>,
}

/// Build the fig. 12/13 plan.
pub fn fig12_13_plan(quick: bool) -> Fig1213Plan {
    let scale_at = if quick { secs(60) } else { secs(300) };
    let workloads: Vec<(&'static str, SimTime)> = if quick {
        vec![("Q7", secs(150)), ("Twitch", secs(150))]
    } else {
        vec![("Q7", secs(620)), ("Q8", secs(900)), ("Twitch", secs(650))]
    };
    let mut specs = Vec::new();
    for &(wname, horizon) in &workloads {
        for (mname, mech) in comparison_mechs() {
            let (engine, workload) = latency_workload(wname, quick);
            specs.push(spec(
                format!("fig12_13/{wname}/{mname}"),
                engine,
                7,
                workload,
                mech,
                Some(ScaleSpec {
                    at: scale_at,
                    to: 12,
                }),
                horizon,
            ));
        }
    }
    Fig1213Plan {
        scale_at,
        workloads,
        mechs: comparison_mechs().into_iter().map(|(n, _)| n).collect(),
        specs,
    }
}

/// Fig. 14 — DRRS mechanism ablation on Twitch.
pub struct Fig14Plan {
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// End of the measurement window.
    pub window_end: SimTime,
    /// The four variants: DRRS, DR, Schedule, Subscale.
    pub specs: Vec<ScenarioSpec>,
}

/// Build the fig. 14 plan.
pub fn fig14_plan(quick: bool) -> Fig14Plan {
    let (scale_at, window_end) = if quick {
        (secs(60), secs(140))
    } else {
        (secs(300), secs(475))
    };
    let horizon = window_end + secs(60);
    let params = twitch_params(quick);
    let specs = [
        MechanismConfig::drrs(),
        MechanismConfig::dr_only(),
        MechanismConfig::schedule_only(),
        MechanismConfig::subscale_only(),
    ]
    .into_iter()
    .map(|cfg| {
        spec(
            format!("fig14/{}", cfg.name),
            EngineProfile::Twitch,
            14,
            WorkloadSpec::Twitch(params.clone()),
            MechanismSpec::Flex(cfg),
            Some(ScaleSpec {
                at: scale_at,
                to: 12,
            }),
            horizon,
        )
    })
    .collect();
    Fig14Plan {
        scale_at,
        window_end,
        specs,
    }
}

/// Fig. 15 — the sensitivity grid (mechanism × skew × state × rate). This
/// is the grid the `--shard` machinery exists for: the full grid is 192
/// mutually independent cells.
pub struct Fig15Plan {
    /// Input rates (tps), in print order.
    pub rates: Vec<f64>,
    /// Total state sizes (GB), in print order.
    pub sizes_gb: Vec<u64>,
    /// Zipf skewness values, in print order.
    pub skews: Vec<f64>,
    /// Mechanism names, in print order.
    pub mechs: Vec<&'static str>,
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// Throughput collection window length.
    pub measure: SimTime,
    /// All cells, canonical order: mechanism, skew, GB, tps — exactly the
    /// figure's print order, so results join by running index.
    pub specs: Vec<ScenarioSpec>,
}

/// Build the fig. 15 plan.
pub fn fig15_plan(quick: bool) -> Fig15Plan {
    let (rates, sizes_gb, skews): (Vec<f64>, Vec<u64>, Vec<f64>) = if quick {
        (vec![5_000.0, 20_000.0], vec![5, 30], vec![0.0, 1.5])
    } else {
        (
            vec![5_000.0, 10_000.0, 15_000.0, 20_000.0],
            vec![5, 10, 20, 30],
            vec![0.0, 0.5, 1.0, 1.5],
        )
    };
    let (scale_at, measure) = if quick {
        (secs(40), secs(120))
    } else {
        (secs(120), secs(600))
    };
    let horizon = scale_at + measure + secs(10);
    let mechs = vec!["DRRS", "Megaphone", "Meces"];
    let mut specs = Vec::new();
    for &mech in &mechs {
        for &skew in &skews {
            for &gb in &sizes_gb {
                for &tps in &rates {
                    let mechanism = match mech {
                        "DRRS" => MechanismSpec::Drrs,
                        "Megaphone" => MechanismSpec::Megaphone { batch: 4 },
                        _ => MechanismSpec::Meces,
                    };
                    specs.push(spec(
                        format!("fig15/{mech}/skew{skew}/gb{gb}/tps{}", tps as u64),
                        EngineProfile::Cluster,
                        15,
                        WorkloadSpec::Custom(CustomParams {
                            tps,
                            total_state_bytes: gb * 1_000_000_000,
                            skew,
                            ..Default::default()
                        }),
                        mechanism,
                        Some(ScaleSpec {
                            at: scale_at,
                            to: 30,
                        }),
                        horizon,
                    ));
                }
            }
        }
    }
    Fig15Plan {
        rates,
        sizes_gb,
        skews,
        mechs,
        scale_at,
        measure,
        specs,
    }
}

/// One ablation section: a titled group of rows sharing a print format.
pub struct AblationSection {
    /// Stable section key (`subscale`, `concurrency`, ...).
    pub key: &'static str,
    /// Section heading, as printed.
    pub title: &'static str,
    /// Row labels, aligned with `specs`.
    pub labels: Vec<String>,
    /// The rows.
    pub specs: Vec<ScenarioSpec>,
}

/// The design-choice ablations (beyond fig. 14).
pub struct AblationPlan {
    /// When the scale is requested.
    pub scale_at: SimTime,
    /// End of the measurement window.
    pub window_end: SimTime,
    /// The sections, in print order.
    pub sections: Vec<AblationSection>,
}

/// Build the ablation plan.
pub fn ablation_plan(quick: bool) -> AblationPlan {
    let (scale_at, window_end) = if quick {
        (secs(60), secs(140))
    } else {
        (secs(300), secs(475))
    };
    let horizon = window_end + secs(40);
    let params = twitch_params(quick);
    let twitch_row = |name: String, cfg: MechanismConfig| {
        spec(
            name,
            EngineProfile::Twitch,
            99,
            WorkloadSpec::Twitch(params.clone()),
            MechanismSpec::Flex(cfg),
            Some(ScaleSpec {
                at: scale_at,
                to: 12,
            }),
            horizon,
        )
    };

    let subscales = [1usize, 2, 4, 8, 16, 32];
    let subscale = AblationSection {
        key: "subscale",
        title: "=== Ablation A: subscale count (concurrency 2) ===",
        labels: subscales.iter().map(|n| format!("subscales={n}")).collect(),
        specs: subscales
            .iter()
            .map(|&n| {
                twitch_row(
                    format!("ablation/subscale/{n}"),
                    MechanismConfig {
                        subscale_count: n,
                        ..MechanismConfig::drrs()
                    },
                )
            })
            .collect(),
    };

    let limits = [1usize, 2, 4, 64];
    let concurrency = AblationSection {
        key: "concurrency",
        title: "\n=== Ablation B: concurrency threshold (8 subscales) ===",
        labels: limits.iter().map(|l| format!("concurrency={l}")).collect(),
        specs: limits
            .iter()
            .map(|&limit| {
                twitch_row(
                    format!("ablation/concurrency/{limit}"),
                    MechanismConfig {
                        concurrency_limit: limit,
                        ..MechanismConfig::drrs()
                    },
                )
            })
            .collect(),
    };

    let strategies: [(&str, usize, SimTime); 3] = [
        ("capacity=1 (immediate)", 1, ms(50)),
        ("capacity=32, timeout=5ms (default)", 32, ms(5)),
        ("capacity=256, timeout=50ms (lazy)", 256, ms(50)),
    ];
    let reroute = AblationSection {
        key: "reroute",
        title: "\n=== Ablation C: Re-route Manager strategy ===",
        labels: strategies.iter().map(|(l, _, _)| l.to_string()).collect(),
        specs: strategies
            .iter()
            .map(|&(_, batch, timeout)| {
                twitch_row(
                    format!("ablation/reroute/capacity{batch}"),
                    MechanismConfig {
                        reroute_batch: batch,
                        reroute_timeout: timeout,
                        ..MechanismConfig::drrs()
                    },
                )
            })
            .collect(),
    };

    let batches = [1usize, 4, 16, 64];
    let megaphone_batch = AblationSection {
        key: "megaphone_batch",
        title: "\n=== Ablation E: Megaphone batch size (naive-division granularity) ===",
        labels: batches
            .iter()
            .map(|b| format!("megaphone batch={b}"))
            .collect(),
        specs: batches
            .iter()
            .map(|&batch| {
                twitch_row(
                    format!("ablation/megaphone_batch/{batch}"),
                    MechanismConfig::megaphone(batch),
                )
            })
            .collect(),
    };

    let windows: [(&str, &str, SimTime); 2] = [
        ("sliding", "sliding 500ms (paper)", ms(500)),
        ("tumbling", "tumbling (slide=size)", secs(10)),
    ];
    let window = AblationSection {
        key: "window",
        title: "\n=== Ablation D: sliding vs tumbling windows under scaling (Q7) ===",
        labels: windows.iter().map(|(_, l, _)| l.to_string()).collect(),
        specs: windows
            .iter()
            .map(|&(key, _, slide)| {
                spec(
                    format!("ablation/window/{key}"),
                    EngineProfile::Nexmark,
                    77,
                    WorkloadSpec::Q7(Q7Params {
                        tps: if quick { 10_000.0 } else { 20_000.0 },
                        slide,
                        ..Default::default()
                    }),
                    MechanismSpec::Drrs,
                    Some(ScaleSpec {
                        at: scale_at,
                        to: 12,
                    }),
                    horizon,
                )
            })
            .collect(),
    };

    AblationPlan {
        scale_at,
        window_end,
        sections: vec![subscale, concurrency, reroute, megaphone_batch, window],
    }
}

/// Every registered scenario, across all groups. Names are globally unique
/// (enforced by test).
pub fn all(quick: bool) -> Vec<ScenarioSpec> {
    let mut out = perf_scenarios(quick);
    out.extend(fig02_plan(quick).specs);
    out.extend(fig10_11_plan(quick).specs);
    out.extend(fig12_13_plan(quick).specs);
    out.extend(fig14_plan(quick).specs);
    out.extend(fig15_plan(quick).specs);
    out.extend(
        ablation_plan(quick)
            .sections
            .into_iter()
            .flat_map(|s| s.specs),
    );
    out
}

/// Look up one scenario by its registry name.
pub fn find(name: &str, quick: bool) -> Option<ScenarioSpec> {
    all(quick).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_group_matches_the_recorded_trajectory_names() {
        let names: Vec<String> = perf_scenarios(false)
            .iter()
            .map(|s| s.short_name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "steady_50k",
                "drrs_rescale_4_to_6",
                "megaphone_rescale_4_to_6",
                "drrs_scale_in_6_to_3",
                "overload_backpressure",
                "cut_pipeline_100k",
                "twin_pipelines_100k",
            ]
        );
    }

    #[test]
    fn fig15_grid_is_mech_skew_gb_tps_major() {
        let plan = fig15_plan(false);
        assert_eq!(
            plan.specs.len(),
            plan.mechs.len() * plan.skews.len() * plan.sizes_gb.len() * plan.rates.len()
        );
        assert_eq!(plan.specs[0].name, "fig15/DRRS/skew0/gb5/tps5000");
        assert_eq!(plan.specs[1].name, "fig15/DRRS/skew0/gb5/tps10000");
        let per_mech = plan.specs.len() / plan.mechs.len();
        assert!(plan.specs[per_mech].name.starts_with("fig15/Megaphone/"));
    }

    #[test]
    fn find_resolves_quick_and_full_variants() {
        let q = find("perf/steady_50k", true).expect("quick");
        let f = find("perf/steady_50k", false).expect("full");
        assert!(q.horizon < f.horizon);
        assert_eq!(q.workload, f.workload);
        assert!(find("perf/nonexistent", false).is_none());
    }
}
