//! The scenario [`Runner`]: deterministic execution of spec grids, either
//! in-process (on [`crate::parallel_map`]) or sharded across processes.
//!
//! # Sharding model
//!
//! A sweep is a **canonically ordered** `Vec<ScenarioSpec>` (the registry
//! plan). Shard `K/N` owns every grid index `i` with `i % N == K` — a
//! striped assignment, so the expensive high-skew fig15 cells spread across
//! shards instead of clustering in one. Each shard process runs only its
//! cells and `--emit`s them as JSON tagged with their grid index; `--merge`
//! reads any number of shard files, verifies they belong to the same grid
//! and cover it exactly once, and returns the reports in canonical order —
//! at which point rendering is *byte-identical* to the unsharded run,
//! because every cell is a deterministic function of its spec and
//! `RunReport` JSON round-trips losslessly.

use std::path::Path;

use super::report::RunReport;
use super::ScenarioSpec;

/// One shard of a sweep: this process runs grid indices ≡ `index` mod
/// `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Which shard this is (0-based).
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parse the CLI form `K/N` (e.g. `0/2`). `K < N`, `N ≥ 1`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard {s:?} is not of the form K/N"))?;
        let index: usize = k.parse().map_err(|e| format!("shard index: {e}"))?;
        let count: usize = n.parse().map_err(|e| format!("shard count: {e}"))?;
        if count == 0 {
            return Err("shard count must be >= 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(Self { index, count })
    }

    /// Does this shard own grid index `i`?
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// The CLI form `K/N`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// Executes scenario grids. A `Runner` is either whole-grid (the default)
/// or restricted to one [`Shard`], and optionally pins its worker-thread
/// count (otherwise `SWEEP_THREADS` / `available_parallelism` decide).
#[derive(Clone, Copy, Debug, Default)]
pub struct Runner {
    shard: Option<Shard>,
    threads: Option<usize>,
}

impl Runner {
    /// A runner that executes the whole grid in this process.
    pub fn in_process() -> Self {
        Self::default()
    }

    /// A runner that executes only `shard`'s stripe of the grid.
    pub fn sharded(shard: Shard) -> Self {
        Self {
            shard: Some(shard),
            threads: None,
        }
    }

    /// Pin the worker-pool size for this runner (`--threads N`). Takes
    /// precedence over the `SWEEP_THREADS` env var; each worker still runs
    /// one single-threaded deterministic simulation at a time.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Run the owned subset of `specs` on the worker pool and return
    /// `(grid index, report)` pairs in canonical grid order.
    pub fn run_indexed(&self, specs: &[ScenarioSpec]) -> Vec<(usize, RunReport)> {
        let picked: Vec<(usize, ScenarioSpec)> = specs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.shard.map(|s| s.owns(*i)).unwrap_or(true))
            .map(|(i, s)| (i, s.clone()))
            .collect();
        crate::parallel_map_with(picked, self.threads, |(i, spec)| (i, spec.run()))
    }

    /// Run the full grid (requires an unsharded runner) and return reports
    /// in canonical order.
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<RunReport> {
        assert!(
            self.shard.is_none(),
            "Runner::run on a sharded runner would silently drop cells; \
             use run_indexed + merge"
        );
        self.run_indexed(specs)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }
}

/// Write one shard's results as a JSON file other processes can merge.
pub fn write_shard(
    path: &Path,
    sweep: &str,
    grid_len: usize,
    shard: Shard,
    runs: &[(usize, RunReport)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"sweep\": \"{sweep}\",");
    let _ = writeln!(json, "  \"grid_len\": {grid_len},");
    let _ = writeln!(json, "  \"shard\": \"{}\",", shard.label());
    let _ = writeln!(json, "  \"runs\": [");
    for (n, (i, r)) in runs.iter().enumerate() {
        let comma = if n + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"grid_index\": {i},");
        let _ = writeln!(json, "      \"report\":");
        let _ = write!(json, "{}", r.to_json("      "));
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(path, json)
}

/// One parsed shard file.
pub struct ShardFile {
    /// The sweep name the shard belongs to (e.g. `fig15`).
    pub sweep: String,
    /// The full grid length the shard was cut from.
    pub grid_len: usize,
    /// `(grid index, report)` pairs.
    pub runs: Vec<(usize, RunReport)>,
}

/// Parse a shard file written by [`write_shard`].
pub fn read_shard(path: &Path) -> Result<ShardFile, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut sweep = None;
    let mut grid_len = None;
    let mut runs = Vec::new();
    let mut cur_index: Option<usize> = None;
    let mut cur_report = String::new();
    let mut in_report = false;
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(v) = t.strip_prefix("\"sweep\":") {
            sweep = Some(v.trim().trim_matches('"').to_string());
        } else if let Some(v) = t.strip_prefix("\"grid_len\":") {
            grid_len = Some(v.trim().parse().map_err(|e| format!("grid_len: {e}"))?);
        } else if let Some(v) = t.strip_prefix("\"grid_index\":") {
            cur_index = Some(v.trim().parse().map_err(|e| format!("grid_index: {e}"))?);
        } else if t == "\"report\":" {
            in_report = true;
            cur_report.clear();
        } else if in_report {
            cur_report.push_str(line);
            cur_report.push('\n');
            if line.trim() == "}" {
                in_report = false;
                let idx = cur_index
                    .take()
                    .ok_or_else(|| "report without grid_index".to_string())?;
                let report = RunReport::parse(&cur_report)
                    .map_err(|e| format!("run at grid index {idx}: {e}"))?;
                runs.push((idx, report));
            }
        }
    }
    Ok(ShardFile {
        sweep: sweep.ok_or("missing sweep name")?,
        grid_len: grid_len.ok_or("missing grid_len")?,
        runs,
    })
}

/// Merge shard files back into a full grid. Verifies every file belongs to
/// `sweep` over `specs`' grid, every report's scenario name matches its
/// grid slot (catching quick/full or stale-grid mixups), and the union of
/// shards covers each index **exactly once**.
pub fn merge_shards(
    sweep: &str,
    specs: &[ScenarioSpec],
    paths: &[impl AsRef<Path>],
) -> Result<Vec<RunReport>, String> {
    let mut slots: Vec<Option<RunReport>> = vec![None; specs.len()];
    for p in paths {
        let p = p.as_ref();
        let file = read_shard(p)?;
        if file.sweep != sweep {
            return Err(format!(
                "{}: sweep {:?} does not match {sweep:?}",
                p.display(),
                file.sweep
            ));
        }
        if file.grid_len != specs.len() {
            return Err(format!(
                "{}: grid length {} does not match the current grid ({}) — \
                 was the shard produced with a different QUICK setting?",
                p.display(),
                file.grid_len,
                specs.len()
            ));
        }
        for (i, r) in file.runs {
            if i >= specs.len() {
                return Err(format!("{}: grid index {i} out of range", p.display()));
            }
            if r.scenario != specs[i].name {
                return Err(format!(
                    "{}: grid index {i} holds {:?}, expected {:?}",
                    p.display(),
                    r.scenario,
                    specs[i].name
                ));
            }
            if slots[i].is_some() {
                return Err(format!(
                    "{}: grid index {i} ({}) covered by more than one shard",
                    p.display(),
                    r.scenario
                ));
            }
            slots[i] = Some(r);
        }
    }
    let missing: Vec<String> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| format!("{i} ({})", specs[i].name))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "shards do not cover the grid: missing {} cell(s): {}",
            missing.len(),
            missing.join(", ")
        ));
    }
    Ok(slots.into_iter().map(|s| s.expect("verified")).collect())
}

/// How a sweep binary was asked to run.
pub enum SweepMode {
    /// Run the whole grid in this process and render.
    Full,
    /// Run one shard and emit its reports as JSON (no rendering).
    Shard {
        /// The stripe to run.
        shard: Shard,
        /// Where to write the shard file.
        emit: String,
    },
    /// Merge previously emitted shard files and render.
    Merge {
        /// The shard files.
        inputs: Vec<String>,
    },
}

/// Parse the standard sweep CLI: `[--shard K/N --emit FILE | --merge FILE...]`.
/// Exits with a usage message on malformed input (binary-friendly).
pub fn sweep_mode_from_args(bin: &str) -> SweepMode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_sweep_args(&args) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("{bin}: {e}");
            eprintln!(
                "usage: {bin} [--shard K/N --emit FILE | --merge FILE...]\n\
                 (QUICK=1 in the environment compresses the grid)"
            );
            std::process::exit(2);
        }
    }
}

/// The pure parser behind [`sweep_mode_from_args`].
pub fn parse_sweep_args(args: &[String]) -> Result<SweepMode, String> {
    let mut shard = None;
    let mut emit = None;
    let mut merge: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shard" => {
                let v = args.get(i + 1).ok_or("--shard takes K/N")?;
                shard = Some(Shard::parse(v)?);
                i += 2;
            }
            "--emit" => {
                let v = args.get(i + 1).ok_or("--emit takes a file path")?;
                emit = Some(v.clone());
                i += 2;
            }
            "--merge" => {
                let files: Vec<String> = args[i + 1..].to_vec();
                if files.is_empty() {
                    return Err("--merge takes one or more shard files".into());
                }
                merge = Some(files);
                i = args.len();
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    match (shard, emit, merge) {
        (None, None, None) => Ok(SweepMode::Full),
        (Some(shard), Some(emit), None) => Ok(SweepMode::Shard { shard, emit }),
        (Some(_), None, None) => Err("--shard requires --emit FILE (a sharded run \
             renders nothing; its output is the emitted JSON)"
            .into()),
        (None, Some(_), None) => Err("--emit requires --shard K/N".into()),
        (None, None, Some(inputs)) => Ok(SweepMode::Merge { inputs }),
        _ => Err("--merge cannot be combined with --shard/--emit".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parse_accepts_k_of_n_and_rejects_junk() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("4/5").unwrap(), Shard { index: 4, count: 5 });
        assert!(Shard::parse("2/2").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn shards_partition_the_grid() {
        for n in [1usize, 2, 3, 5, 7] {
            let mut owners = vec![0u32; 100];
            for k in 0..n {
                let s = Shard { index: k, count: n };
                for (i, o) in owners.iter_mut().enumerate() {
                    if s.owns(i) {
                        *o += 1;
                    }
                }
            }
            assert!(
                owners.iter().all(|&o| o == 1),
                "N={n}: some index owned != once"
            );
        }
    }

    #[test]
    fn sweep_args_modes() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(parse_sweep_args(&[]).unwrap(), SweepMode::Full));
        match parse_sweep_args(&s(&["--shard", "1/3", "--emit", "x.json"])).unwrap() {
            SweepMode::Shard { shard, emit } => {
                assert_eq!(shard, Shard { index: 1, count: 3 });
                assert_eq!(emit, "x.json");
            }
            _ => panic!("expected shard mode"),
        }
        match parse_sweep_args(&s(&["--merge", "a.json", "b.json"])).unwrap() {
            SweepMode::Merge { inputs } => assert_eq!(inputs.len(), 2),
            _ => panic!("expected merge mode"),
        }
        assert!(parse_sweep_args(&s(&["--shard", "0/2"])).is_err());
        assert!(parse_sweep_args(&s(&["--emit", "x"])).is_err());
        assert!(parse_sweep_args(&s(&["--merge"])).is_err());
    }
}
