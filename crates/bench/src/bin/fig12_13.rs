//! Fig. 12 + Fig. 13 — overhead decomposition of the three mechanisms:
//!
//! * Fig. 12a — cumulative propagation delay `Lp` (sum over signals of
//!   injection → first state migration),
//! * Fig. 12b — average dependency-related overhead `Ld` (mean over state
//!   units of injection → migration),
//! * Fig. 13 — cumulative suspension time `Ls` over time.
//!
//! Paper shape: Megaphone ≫ others on Lp and Ld (strict linear dependency
//! between migration units); Meces lowest Lp (single synchronization) but
//! highest suspension growth (fetch conflicts); DRRS low on all three.

use baselines::{megaphone, MecesPlugin};
use bench::{print_series, quick, run};
use drrs_core::FlexScaler;
use simcore::time::secs;
use streamflow::ScalePlugin;
use workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

fn main() {
    let scale_at = if quick() { secs(60) } else { secs(300) };
    let names = ["DRRS", "Meces", "Megaphone"];

    let wls: Vec<(&str, u64)> = if quick() {
        vec![("Q7", 150), ("Twitch", 150)]
    } else {
        vec![("Q7", 620), ("Q8", 900), ("Twitch", 650)]
    };

    let mut lp_rows: Vec<(String, Vec<f64>)> =
        names.iter().map(|n| (n.to_string(), vec![])).collect();
    let mut ld_rows = lp_rows.clone();
    let mut churn_rows: Vec<(String, Vec<(f64, u32)>)> =
        names.iter().map(|n| (n.to_string(), vec![])).collect();

    for (wname, horizon_s) in &wls {
        println!("=== {wname} ===");
        for (mi, mech) in names.iter().enumerate() {
            let (w, op) = match *wname {
                "Q7" => {
                    let p = if quick() {
                        Q7Params {
                            tps: 10_000.0,
                            ..Default::default()
                        }
                    } else {
                        Q7Params::default()
                    };
                    q7(nexmark_engine_config(7), &p)
                }
                "Q8" => q8(nexmark_engine_config(7), &Q8Params::default()),
                _ => {
                    let p = if quick() {
                        TwitchParams {
                            events: 1_200_000,
                            duration_s: 300,
                            ..Default::default()
                        }
                    } else {
                        TwitchParams::default()
                    };
                    twitch(twitch_engine_config(7), &p)
                }
            };
            let plugin: Box<dyn ScalePlugin> = match *mech {
                "DRRS" => Box::new(FlexScaler::drrs()),
                "Meces" => Box::new(MecesPlugin::new()),
                _ => Box::new(megaphone(1)),
            };
            let r = run(mech, w, op, plugin, scale_at, 12, secs(*horizon_s));
            println!(
                "-- {mech}: Lp={:.0} ms, Ld={:.0} ms, final suspension={:.0} ms, migration done at {:?} s",
                r.lp_ms(),
                r.ld_ms(),
                r.suspension_ms(),
                r.migration_done().map(|t| t / 1_000_000)
            );
            let susp: Vec<(u64, f64)> = r
                .sim
                .world
                .metrics
                .suspension
                .points()
                .iter()
                .map(|&(t, v)| (t / 1_000_000, v / 1_000.0))
                .collect();
            print_series(
                "Fig.13 cumulative suspension",
                &susp,
                if quick() { 10 } else { 25 },
                "ms",
            );
            lp_rows[mi].1.push(r.lp_ms());
            ld_rows[mi].1.push(r.ld_ms());
            churn_rows[mi]
                .1
                .push(r.sim.world.scale.metrics.migration_churn());
        }
        println!();
    }

    println!("=== Fig. 12a: cumulative propagation delay (ms) ===");
    print!("{:<10}", "");
    for (w, _) in &wls {
        print!(" {w:>12}");
    }
    println!();
    for (m, vals) in &lp_rows {
        print!("{m:<10}");
        for v in vals {
            print!(" {v:>12.1}");
        }
        println!();
    }
    println!("\n=== Fig. 12b: average dependency overhead (ms) ===");
    for (m, vals) in &ld_rows {
        print!("{m:<10}");
        for v in vals {
            print!(" {v:>12.1}");
        }
        println!();
    }
    println!("\n=== Meces back-and-forth (paper §V-B: Q7 avg 6.25x, max 46x) ===");
    for (m, vals) in &churn_rows {
        if m == "Meces" {
            for ((w, _), (avg, max)) in wls.iter().zip(vals) {
                println!("  {w}: avg {avg:.2} migrations/unit, max {max}");
            }
        }
    }
    println!("\npaper shape: Megaphone has the largest Lp and Ld (log-scale dominant);");
    println!("Meces has the smallest Lp; DRRS low everywhere; Meces suspension grows fastest.");
}
