//! Fig. 12 + Fig. 13 — overhead decomposition of the three mechanisms:
//!
//! * Fig. 12a — cumulative propagation delay `Lp` (sum over signals of
//!   injection → first state migration),
//! * Fig. 12b — average dependency-related overhead `Ld` (mean over state
//!   units of injection → migration),
//! * Fig. 13 — cumulative suspension time `Ls` over time.
//!
//! The rows are the `fig12_13/` group of `bench::scenario::registry`; every
//! statistic below (Lp, Ld, the suspension series, migration churn) is a
//! typed `RunReport` field.
//!
//! Paper shape: Megaphone ≫ others on Lp and Ld (strict linear dependency
//! between migration units); Meces lowest Lp (single synchronization) but
//! highest suspension growth (fetch conflicts); DRRS low on all three.

use bench::scenario::registry::fig12_13_plan;
use bench::scenario::Runner;
use bench::{print_series, quick};

fn main() {
    let plan = fig12_13_plan(quick());
    let reports = Runner::in_process().run(&plan.specs);

    let nmech = plan.mechs.len();
    let mut lp_rows: Vec<(String, Vec<f64>)> =
        plan.mechs.iter().map(|n| (n.to_string(), vec![])).collect();
    let mut ld_rows = lp_rows.clone();
    let mut churn_rows: Vec<(String, Vec<(f64, u32)>)> =
        plan.mechs.iter().map(|n| (n.to_string(), vec![])).collect();

    for (wi, (wname, _)) in plan.workloads.iter().enumerate() {
        println!("=== {wname} ===");
        for (mi, mech) in plan.mechs.iter().enumerate() {
            let r = &reports[wi * nmech + mi];
            // The index arithmetic must agree with the registry's loop
            // nesting — fail loudly if the grid order ever drifts.
            assert_eq!(
                r.scenario,
                format!("fig12_13/{wname}/{mech}"),
                "registry grid order drifted from the figure layout"
            );
            println!(
                "-- {mech}: Lp={:.0} ms, Ld={:.0} ms, final suspension={:.0} ms, migration done at {:?} s",
                r.lp_ms,
                r.ld_ms,
                r.suspension_ms,
                r.migration_done.map(|t| t / 1_000_000)
            );
            print_series(
                "Fig.13 cumulative suspension",
                &r.suspension_series_ms(),
                if quick() { 10 } else { 25 },
                "ms",
            );
            lp_rows[mi].1.push(r.lp_ms);
            ld_rows[mi].1.push(r.ld_ms);
            churn_rows[mi].1.push((r.churn_avg, r.churn_max));
        }
        println!();
    }

    println!("=== Fig. 12a: cumulative propagation delay (ms) ===");
    print!("{:<10}", "");
    for (w, _) in &plan.workloads {
        print!(" {w:>12}");
    }
    println!();
    for (m, vals) in &lp_rows {
        print!("{m:<10}");
        for v in vals {
            print!(" {v:>12.1}");
        }
        println!();
    }
    println!("\n=== Fig. 12b: average dependency overhead (ms) ===");
    for (m, vals) in &ld_rows {
        print!("{m:<10}");
        for v in vals {
            print!(" {v:>12.1}");
        }
        println!();
    }
    println!("\n=== Meces back-and-forth (paper §V-B: Q7 avg 6.25x, max 46x) ===");
    for (m, vals) in &churn_rows {
        if m == "Meces" {
            for ((w, _), (avg, max)) in plan.workloads.iter().zip(vals) {
                println!("  {w}: avg {avg:.2} migrations/unit, max {max}");
            }
        }
    }
    println!("\npaper shape: Megaphone has the largest Lp and Ld (log-scale dominant);");
    println!("Meces has the smallest Lp; DRRS low everywhere; Meces suspension grows fastest.");
}
