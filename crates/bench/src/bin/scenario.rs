//! `scenario` — the registry/runner CLI: list, run, and digest-check named
//! scenarios without going through a figure binary.
//!
//! ```bash
//! scenario --list                      # every registered name
//! scenario --run perf/steady_50k       # one run; prints a digest line
//! scenario --run NAME --emit report.json   # also write the RunReport JSON
//! scenario --group perf                # run a whole group, one line each
//! scenario --group perf --regions 2    # same grid on 2 scheduler regions
//! scenario --group perf --threads 4    # pin the worker pool to 4 threads
//! ```
//!
//! The digest lines on stdout are fully deterministic (`name digest events
//! sink_records`), so `scenario --group perf` run twice and diffed is a
//! process-level determinism smoke — CI's `digest-stability` job uses
//! exactly that, and diffs `--regions 1` against `--regions 2` to enforce
//! the region-count digest contract. `--threads N` pins the worker pool
//! (first-class form of the `SWEEP_THREADS` env var, which stays as the
//! fallback). `QUICK=1` compresses the grids as everywhere else.

use bench::quick;
use bench::scenario::registry;
use bench::scenario::Runner;

fn usage() -> ! {
    eprintln!(
        "usage: scenario --list | --run NAME [--emit FILE] | --group PREFIX\n\
         \x20       [--regions K] [--threads N]\n\
         (QUICK=1 in the environment compresses timelines)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().position(|a| a == name);
    let value = |name: &str| flag(name).and_then(|i| args.get(i + 1).cloned());
    let parsed = |name: &str| {
        value(name).map(|v| {
            v.parse::<usize>().unwrap_or_else(|e| {
                eprintln!("scenario: {name} {v:?}: {e}");
                std::process::exit(2);
            })
        })
    };
    let regions = parsed("--regions");
    let threads = parsed("--threads");

    if flag("--list").is_some() {
        for s in registry::all(quick()) {
            println!("{}", s.name);
        }
        return;
    }

    if let Some(name) = value("--run") {
        let Some(mut spec) = registry::find(&name, quick()) else {
            eprintln!("scenario: unknown scenario {name:?} (see --list)");
            std::process::exit(2);
        };
        if let Some(r) = regions {
            spec = spec.with_regions(r);
        }
        let report = spec.run();
        if let Some(path) = value("--emit") {
            std::fs::write(&path, report.to_json(""))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("scenario: wrote {path}");
        }
        println!(
            "{} digest 0x{:016x} events {} sink_records {}",
            report.scenario, report.digest, report.events, report.sink_records
        );
        return;
    }

    if let Some(prefix) = value("--group") {
        let specs: Vec<_> = registry::all(quick())
            .into_iter()
            .filter(|s| s.name.starts_with(&prefix))
            .map(|s| match regions {
                Some(r) => s.with_regions(r),
                None => s,
            })
            .collect();
        if specs.is_empty() {
            eprintln!("scenario: no scenarios match prefix {prefix:?} (see --list)");
            std::process::exit(2);
        }
        let reports = Runner::in_process().with_threads(threads).run(&specs);
        for r in &reports {
            println!(
                "{} digest 0x{:016x} events {} sink_records {}",
                r.scenario, r.digest, r.events, r.sink_records
            );
        }
        return;
    }

    usage()
}
