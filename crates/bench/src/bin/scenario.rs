//! `scenario` — the registry/runner CLI: list, run, and digest-check named
//! scenarios without going through a figure binary.
//!
//! ```bash
//! scenario --list                      # every registered name
//! scenario --run perf/steady_50k       # one run; prints a digest line
//! scenario --run NAME --emit report.json   # also write the RunReport JSON
//! scenario --group perf                # run a whole group, one line each
//! scenario --group perf --regions 2    # same grid on 2 scheduler regions
//! scenario --group perf --threads 4    # pin the worker pool to 4 threads
//! scenario --run NAME --regions 2 --resume-latency 100 --threads 2
//!                                      # thread-per-region parallel PDES run
//! scenario --run NAME --sync-stats     # also print region/sync accounting
//! ```
//!
//! The digest lines on stdout are fully deterministic (`name digest events
//! sink_records`), so `scenario --group perf` run twice and diffed is a
//! process-level determinism smoke — CI's `digest-stability` job uses
//! exactly that, and diffs `--regions 1` against `--regions 2` to enforce
//! the region-count digest contract. With `--run`, `--threads N` (N > 1)
//! executes on the thread-per-region parallel engine instead — the digest
//! line keeps the same format (events = merged processed count), so CI
//! diffs a threaded run directly against the sequential run at the same
//! `--regions`/`--resume-latency`. With `--group`, `--threads N` pins the
//! sweep worker pool (first-class form of the `SWEEP_THREADS` env var,
//! which stays as the fallback); each worker still runs one sequential sim.
//! `--sync-stats` appends a second, equally deterministic line per run with
//! the per-region event counts, the region-scheduler (sequential) or
//! epoch (parallel) synchronization counters, and the bus lag/drop
//! accounting — every number on it is reproducible, so two `--sync-stats`
//! runs diff clean. `--events FILE` turns on the event bus and writes the
//! published stream as JSONL: sequential runs stream through the attached
//! sink-worker thread; `--threads N` runs buffer per region and write the
//! `(at, region)`-merged stream after the join. Each engine's stream is
//! byte-deterministic across reruns (the two engines publish different —
//! but each individually reproducible — telemetry: the parallel executor
//! samples per-epoch sync counters and region-0 metrics ticks only).
//! `QUICK=1` compresses the grids as everywhere else.

use bench::quick;
use bench::scenario::registry;
use bench::scenario::Runner;

fn usage() -> ! {
    eprintln!(
        "usage: scenario --list | --run NAME [--emit FILE] [--events FILE] | --group PREFIX\n\
         \x20       [--regions K] [--threads N] [--resume-latency MICROS] [--sync-stats]\n\
         (QUICK=1 in the environment compresses timelines)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().position(|a| a == name);
    let value = |name: &str| flag(name).and_then(|i| args.get(i + 1).cloned());
    let parsed = |name: &str| {
        value(name).map(|v| {
            v.parse::<usize>().unwrap_or_else(|e| {
                eprintln!("scenario: {name} {v:?}: {e}");
                std::process::exit(2);
            })
        })
    };
    let regions = parsed("--regions");
    let threads = parsed("--threads");
    let resume_latency = parsed("--resume-latency").map(|v| v as u64);
    let sync_stats = flag("--sync-stats").is_some();

    if flag("--list").is_some() {
        for s in registry::all(quick()) {
            println!("{}", s.name);
        }
        return;
    }

    if let Some(name) = value("--run") {
        let Some(mut spec) = registry::find(&name, quick()) else {
            eprintln!("scenario: unknown scenario {name:?} (see --list)");
            std::process::exit(2);
        };
        if let Some(r) = regions {
            spec = spec.with_regions(r);
        }
        if let Some(rl) = resume_latency {
            spec = spec.with_resume_latency(rl);
        }
        let events_path = value("--events");
        if let Some(p) = &events_path {
            spec = spec.with_events_path(p.clone());
        }
        if threads.map(|t| t > 1).unwrap_or(false) {
            // Thread-per-region parallel execution. There is no merged
            // World to harvest a full RunReport from, so --emit has
            // nothing faithful to write — reject it instead of emitting
            // a partial report.
            if value("--emit").is_some() {
                eprintln!(
                    "scenario: --emit is not supported with --threads > 1 \
                     (no merged RunReport exists; drop --threads or --emit)"
                );
                std::process::exit(2);
            }
            let (report, _wall) = spec.run_threaded();
            if let Some(path) = &events_path {
                // Each replica buffered its own region's events; write the
                // (at, region)-merged stream serially — byte-identical to
                // what a sequential run streams through the sink worker.
                let file =
                    std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
                let mut out = std::io::BufWriter::new(file);
                for ev in &report.bus_events {
                    ev.write_jsonl(&mut out)
                        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                }
                use std::io::Write as _;
                out.flush()
                    .unwrap_or_else(|e| panic!("flushing {path}: {e}"));
                eprintln!(
                    "scenario: wrote {path} ({} events)",
                    report.bus_events.len()
                );
            }
            println!(
                "{} digest 0x{:016x} events {} sink_records {}",
                spec.name,
                report.digest(),
                report.obs.processed,
                report.obs.sink_records
            );
            if sync_stats {
                println!(
                    "{} threads {} region_events {:?} epochs {} busy_epochs {} \
                     msgs_sent {} msgs_overflowed {} bus_published {} bus_dropped {} \
                     bus_lag_max {}",
                    spec.name,
                    report.threads,
                    report.per_region_events,
                    report.stats.epochs,
                    report.stats.busy_epochs,
                    report.stats.msgs_sent,
                    report.stats.msgs_overflowed,
                    report.bus.published,
                    report.bus.dropped,
                    report.bus.lag_max
                );
            }
            return;
        }
        let report = spec.run();
        if let Some(path) = value("--emit") {
            std::fs::write(&path, report.to_json(""))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("scenario: wrote {path}");
        }
        println!(
            "{} digest 0x{:016x} events {} sink_records {}",
            report.scenario, report.digest, report.events, report.sink_records
        );
        if sync_stats {
            println!(
                "{} region_events {:?} sync_runs {} merged_runs {} \
                 min_rule_grants {} null_msgs {} bus_published {} \
                 bus_dropped {} bus_lag_max {}",
                report.scenario,
                report.region_events,
                report.sync_runs,
                report.merged_runs,
                report.min_rule_grants,
                report.null_msgs,
                report.bus_published,
                report.bus_dropped,
                report.bus_lag_max
            );
        }
        return;
    }

    if let Some(prefix) = value("--group") {
        if value("--events").is_some() {
            eprintln!(
                "scenario: --events needs a single run (the group's streams \
                 would clobber one file); use --run NAME --events FILE"
            );
            std::process::exit(2);
        }
        let specs: Vec<_> = registry::all(quick())
            .into_iter()
            .filter(|s| s.name.starts_with(&prefix))
            .map(|s| {
                let s = match regions {
                    Some(r) => s.with_regions(r),
                    None => s,
                };
                match resume_latency {
                    Some(rl) => s.with_resume_latency(rl),
                    None => s,
                }
            })
            .collect();
        if specs.is_empty() {
            eprintln!("scenario: no scenarios match prefix {prefix:?} (see --list)");
            std::process::exit(2);
        }
        let reports = Runner::in_process().with_threads(threads).run(&specs);
        for r in &reports {
            println!(
                "{} digest 0x{:016x} events {} sink_records {}",
                r.scenario, r.digest, r.events, r.sink_records
            );
            if sync_stats {
                println!(
                    "{} region_events {:?} sync_runs {} merged_runs {} \
                     min_rule_grants {} null_msgs {} bus_published {} \
                     bus_dropped {} bus_lag_max {}",
                    r.scenario,
                    r.region_events,
                    r.sync_runs,
                    r.merged_runs,
                    r.min_rule_grants,
                    r.null_msgs,
                    r.bus_published,
                    r.bus_dropped,
                    r.bus_lag_max
                );
            }
        }
        return;
    }

    usage()
}
