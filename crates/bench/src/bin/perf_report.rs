//! `perf_report` — the PR-over-PR performance trajectory harness.
//!
//! Runs a fixed scenario matrix (steady-state pipeline, DRRS rescale in
//! progress, Megaphone-style baseline rescale, high-skew overload) and
//! writes a JSON report with, per scenario:
//!
//! * simulated events dispatched and wall-clock time,
//! * events/second of simulated pipeline (the headline number),
//! * the deterministic metrics digest (same seed ⇒ same digest — any
//!   divergence between two builds signals a semantics change, not just a
//!   perf change),
//! * a peak-RSS proxy (`VmHWM` from `/proc/self/status`, 0 where absent).
//!
//! Usage: `perf_report [--out FILE] [--baseline FILE] [--quick]
//!                     [--backend heap|calendar|both]
//!                     [--dispatch single|batch|both]
//!                     [--regions 1|2|K|both] [--reps N]
//!                     [--sink null|mem|jsonl]
//!                     [--require-digest-match] [--no-parallel]`
//!
//! The scenario matrix is not private to this binary: it is the `perf/`
//! group of `bench::scenario::registry`, the same named specs the digest
//! tests consume — this binary only owns the timing/A-B logic on top.
//! `--require-digest-match` turns the baseline digest comparison into a
//! hard failure (exit 1), which CI uses to pin the current build's
//! scenario digests to the recorded `BENCH_PRn.json` trajectory.
//!
//! By default every scenario runs on the full {scheduler backend} ×
//! {dispatch mode} × {region count} grid — binary heap and calendar queue,
//! single-pop and batch drain, sequential (regions=1) and region-partitioned
//! (regions=2) scheduling — interleaved (so machine-load drift hits every
//! cell equally), and the process **hard-fails** if any scenario's digest
//! differs between any two cells: the calendar queue, batch dispatch and
//! region partitioning are all required to be behavior-preserving rewrites,
//! proven by digests, not assumed. `--reps N` repeats each cell N times and
//! reports the median events/sec (used for the recorded `BENCH_PRn.json`
//! A/Bs). `--backend` / `--dispatch` / `--regions` restrict the grid to one
//! axis value (used by CI's per-cell digest-stability job); `--regions both`
//! is the default `{1, 2}` pair, any integer `K` pins that region count.
//! The headline cell stays the sequential engine (regions=1) — the region
//! A/B is reported alongside, never silently substituted.
//!
//! With `--baseline`, the report embeds the baseline's events/sec and the
//! relative improvement, so `BENCH_PRn.json` carries the before/after pair
//! measured on the same machine. Because the scenario matrix grows over
//! PRs, the raw aggregate ratio can compare different scenario sets; the
//! report therefore also emits `comparable_improvement`, computed only
//! over the intersection of scenario names present in both the current
//! run and the baseline (summed events/sec on each side), which is the
//! honest PR-over-PR number.
//!
//! The report additionally carries the thread-per-region **parallel A/B
//! axis** (disable with `--no-parallel`): the fixed-parallelism 100k
//! scenarios run at `resume_latency = 100 µs` on regions ∈ {2, 4}, once
//! on the sequential PDES engine and once on `run_threaded` (one OS
//! thread per region over the SPSC rings), interleaved. The two engines
//! are required to produce identical digests — a mismatch is a hard
//! failure — and the measured seq/par events/sec pair plus `host_cpus`
//! are recorded as-is: on a single-core host the parallel engine is
//! expected to *lose* (barrier + ring traffic with no extra cores), and
//! the report records that honestly rather than hiding the axis.
//!
//! `--sink null|mem|jsonl` selects the engine event-bus sink for every
//! run (default `null` — bus disabled). Digests are required to be
//! sink-independent, so `--sink mem --require-digest-match` against a
//! `--sink null` baseline is the perf-scale digest-neutrality check, and
//! the events/sec delta against a null-sink report is the measured bus
//! overhead. `jsonl` streams each timed run's events to a temp file
//! through the sink-worker thread (the file is deleted after the run; the
//! point is to pay the real streaming cost, not to keep the stream).

use std::fmt::Write as _;
use std::time::Instant;

use bench::scenario::{registry, ScenarioSpec};
use simcore::time::secs;
use simcore::SchedulerBackend;
use streamflow::{BusSinkKind, DispatchMode};

/// One cell of the measurement grid.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Cell {
    backend: SchedulerBackend,
    dispatch: DispatchMode,
    regions: usize,
}

impl Cell {
    fn label(self) -> String {
        format!(
            "{}/{}/r{}",
            self.backend.name(),
            self.dispatch.name(),
            self.regions
        )
    }
}

/// One timed run of one scenario on one cell.
struct RunSample {
    events: u64,
    wall_secs: f64,
    sink_records: u64,
    digest: u64,
}

/// Aggregated per-scenario result: medians per cell, shared digest.
struct ScenarioResult {
    name: String,
    events: u64,
    /// Median wall seconds per cell, keyed like the `cells` slice.
    wall_secs: Vec<f64>,
    events_per_sec: Vec<f64>,
    sink_records: u64,
    digest: u64,
}

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n.is_multiple_of(2) {
        // True midpoint for even lengths: picking one middle element
        // would let wall_secs and events_per_sec medians come from
        // different runs and stop multiplying out.
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    } else {
        v[n / 2]
    }
}

fn time_run(spec: &ScenarioSpec, cell: Cell) -> RunSample {
    let (mut sim, _) = spec
        .clone()
        .with_cell(cell.backend, cell.dispatch)
        .with_regions(cell.regions)
        .build_sim();
    // A JSONL-sink run pays the real streaming cost: attach the
    // sink-worker thread on a throwaway temp file for the timed window.
    let jsonl_path = (spec.bus_sink == BusSinkKind::Jsonl).then(|| {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "perf_report_bus_{}_{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        sim.world
            .bus
            .attach_jsonl(&path)
            .unwrap_or_else(|e| panic!("attaching bus sink {}: {e}", path.display()));
        path
    });
    let start = Instant::now();
    sim.run_until(spec.horizon);
    let wall = start.elapsed().as_secs_f64();
    if let Some(path) = jsonl_path {
        sim.world.bus.finish().expect("flush bus sink");
        let _ = std::fs::remove_file(path);
    }
    RunSample {
        events: sim.world.q.processed(),
        wall_secs: wall,
        sink_records: sim.world.metrics.sink_records,
        digest: sim.world.metrics_digest(),
    }
}

/// Run one scenario `reps` times per grid cell, interleaved across cells.
/// Hard-fails the process on any digest divergence (across cells or across
/// repetitions — either breaks the determinism contract).
fn run_scenario(spec: &ScenarioSpec, cells: &[Cell], reps: usize) -> ScenarioResult {
    let name = spec.short_name();
    // One warmup run per cell (page in code, warm the allocator).
    for &c in cells {
        let (mut sim, _) = spec
            .clone()
            .with_cell(c.backend, c.dispatch)
            .with_regions(c.regions)
            .build_sim();
        sim.run_until(secs(1));
    }
    let mut samples: Vec<Vec<RunSample>> = cells.iter().map(|_| Vec::new()).collect();
    for _rep in 0..reps {
        for (i, &c) in cells.iter().enumerate() {
            samples[i].push(time_run(spec, c));
        }
    }
    let reference = &samples[0][0];
    for (i, &c) in cells.iter().enumerate() {
        for s in &samples[i] {
            if s.digest != reference.digest || s.events != reference.events {
                eprintln!(
                    "perf_report: FATAL: scenario {name} digest mismatch: \
                     {} run gave 0x{:016x} ({} events) vs reference 0x{:016x} ({} events)",
                    c.label(),
                    s.digest,
                    s.events,
                    reference.digest,
                    reference.events
                );
                eprintln!(
                    "perf_report: scheduler backends and dispatch modes are required \
                     to be behavior-identical — this is a correctness bug, not noise"
                );
                std::process::exit(1);
            }
        }
    }
    ScenarioResult {
        name: name.to_string(),
        events: reference.events,
        wall_secs: samples
            .iter()
            .map(|runs| median(&runs.iter().map(|s| s.wall_secs).collect::<Vec<_>>()))
            .collect(),
        events_per_sec: samples
            .iter()
            .map(|runs| {
                median(
                    &runs
                        .iter()
                        .map(|s| s.events as f64 / s.wall_secs.max(1e-9))
                        .collect::<Vec<_>>(),
                )
            })
            .collect(),
        sink_records: reference.sink_records,
        digest: reference.digest,
    }
}

fn scenario_matrix(
    quick: bool,
    cells: &[Cell],
    reps: usize,
    sink: BusSinkKind,
) -> Vec<ScenarioResult> {
    registry::perf_scenarios(quick)
        .into_iter()
        .map(|spec| run_scenario(&spec.with_bus_sink(sink), cells, reps))
        .collect()
}

#[derive(Default)]
struct Baseline {
    total_events_per_sec: f64,
    digests: Vec<(String, u64)>,
    /// Per-scenario headline events/sec, keyed by scenario name — feeds
    /// `comparable_improvement` over the name intersection.
    events_per_sec: Vec<(String, f64)>,
}

/// Minimal field extraction from our own JSON (no serde in the offline
/// container): finds `"name": ..., "events_per_sec": ..., "digest": ...`
/// triples in document order plus the top-level aggregate. The parallel
/// A/B entries deliberately key their scenario as `"scenario"` (not
/// `"name"`) so their PDES-mode digests and seq/par rates never shadow
/// the sequential trajectory parsed here.
fn parse_baseline(text: &str) -> Baseline {
    let mut b = Baseline::default();
    let grab_num = |line: &str| -> Option<f64> {
        line.split(':')
            .nth(1)?
            .trim()
            .trim_end_matches(',')
            .parse()
            .ok()
    };
    let grab_str = |line: &str| -> Option<String> {
        Some(
            line.split(':')
                .nth(1)?
                .trim()
                .trim_matches(|c| c == ',' || c == '"')
                .to_string(),
        )
    };
    let mut cur_name: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"aggregate_events_per_sec\"") {
            b.total_events_per_sec = grab_num(t).unwrap_or(0.0);
        } else if t.starts_with("\"name\"") {
            cur_name = grab_str(t);
        } else if t.starts_with("\"events_per_sec\"") {
            if let (Some(n), Some(v)) = (cur_name.clone(), grab_num(t)) {
                b.events_per_sec.push((n, v));
            }
        } else if t.starts_with("\"digest\"") {
            if let (Some(n), Some(d)) = (cur_name.take(), grab_str(t)) {
                if let Ok(d) = u64::from_str_radix(d.trim_start_matches("0x"), 16) {
                    b.digests.push((n, d));
                }
            }
        }
    }
    b
}

/// Resume latency (µs) used by the parallel A/B axis: enough reverse-edge
/// lookahead for real epochs without distorting the workload timeline.
const PARALLEL_RESUME_LATENCY: u64 = 100;

/// One (scenario × region count) row of the parallel A/B axis: the
/// sequential PDES engine vs the thread-per-region executor at the same
/// `resume_latency`, digest-checked against each other.
struct ParallelResult {
    name: String,
    regions: usize,
    threads: usize,
    events: u64,
    seq_events_per_sec: f64,
    par_events_per_sec: f64,
    digest: u64,
}

/// Run the parallel A/B axis: the fixed-parallelism (no mid-run rescale)
/// 100k scenarios at `resume_latency = 100 µs`, regions ∈ {2, 4}, each
/// rep one sequential run immediately followed by one threaded run (so
/// machine-load drift hits both engines equally). Hard-fails on any
/// seq/par digest or event-count divergence — the thread-per-region
/// executor is required to be an exact rewrite of the sequential PDES
/// loop, proven per rep, not assumed.
fn parallel_axis(quick: bool, reps: usize, sink: BusSinkKind) -> Vec<ParallelResult> {
    let names = ["perf/cut_pipeline_100k", "perf/twin_pipelines_100k"];
    let mut out = Vec::new();
    for name in names {
        let Some(base) = registry::find(name, quick) else {
            continue;
        };
        for k in [2usize, 4] {
            // The parallel A/B never attaches a writer — under `jsonl`
            // both engines stage to the in-memory log, which still
            // exercises publish/drain symmetrically on both sides.
            let spec = base
                .clone()
                .with_regions(k)
                .with_resume_latency(PARALLEL_RESUME_LATENCY)
                .with_bus_sink(sink);
            // Warm both engines on a shortened horizon (page in code,
            // spawn threads once) before any timed rep.
            {
                let w = spec.clone().with_horizon(secs(1));
                let _ = w.run();
                let _ = w.run_threaded();
            }
            let mut seq_eps = Vec::new();
            let mut par_eps = Vec::new();
            let mut threads = 0;
            let mut reference: Option<(u64, u64)> = None;
            for _rep in 0..reps {
                // Sequential side timed symmetrically with run_threaded:
                // both include building the Sim(s) inside the window.
                let start = Instant::now();
                let (mut sim, _) = spec.build_sim();
                sim.run_until(spec.horizon);
                let seq_wall = start.elapsed().as_secs_f64();
                let seq_events = sim.world.q.processed();
                let seq_digest = sim.world.metrics_digest();
                drop(sim);
                let (par, par_wall) = spec.run_threaded();
                if par.digest() != seq_digest || par.obs.processed != seq_events {
                    eprintln!(
                        "perf_report: FATAL: parallel A/B {name} r{k}: threaded run gave \
                         0x{:016x} ({} events) vs sequential 0x{seq_digest:016x} ({seq_events} events)",
                        par.digest(),
                        par.obs.processed,
                    );
                    eprintln!(
                        "perf_report: the thread-per-region executor is required to be \
                         digest-exact against the sequential PDES engine — correctness bug"
                    );
                    std::process::exit(1);
                }
                if let Some((e, d)) = reference {
                    if (seq_events, seq_digest) != (e, d) {
                        eprintln!(
                            "perf_report: FATAL: parallel A/B {name} r{k}: digest drifted \
                             across repetitions (determinism bug)"
                        );
                        std::process::exit(1);
                    }
                } else {
                    reference = Some((seq_events, seq_digest));
                }
                threads = par.threads;
                seq_eps.push(seq_events as f64 / seq_wall.max(1e-9));
                par_eps.push(par.obs.processed as f64 / par_wall.max(1e-9));
            }
            let (events, digest) = reference.expect("reps >= 1");
            out.push(ParallelResult {
                name: base.short_name().to_string(),
                regions: k,
                threads,
                events,
                seq_events_per_sec: median(&seq_eps),
                par_events_per_sec: median(&par_eps),
                digest,
            });
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name);
    let out_path = flag("--out")
        .and_then(|i| args.get(i + 1).cloned())
        // Deliberately NOT a BENCH_PRn.json name: a bare run must never
        // overwrite the committed perf-trajectory artifacts.
        .unwrap_or_else(|| "perf_report.json".to_string());
    let baseline_path = flag("--baseline").and_then(|i| args.get(i + 1).cloned());
    let quick = flag("--quick").is_some() || bench::quick();
    let reps = flag("--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize)
        .max(1);
    let require_digest_match = flag("--require-digest-match").is_some();
    let no_parallel = flag("--no-parallel").is_some();
    let backend_arg = flag("--backend").and_then(|i| args.get(i + 1).cloned());
    let backends: Vec<SchedulerBackend> = match backend_arg.as_deref() {
        None | Some("both") => vec![SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar],
        Some(s) => match SchedulerBackend::parse(s) {
            Some(b) => vec![b],
            None => {
                eprintln!("perf_report: unknown --backend {s} (want heap|calendar|both)");
                std::process::exit(2);
            }
        },
    };
    let dispatch_arg = flag("--dispatch").and_then(|i| args.get(i + 1).cloned());
    let dispatches: Vec<DispatchMode> = match dispatch_arg.as_deref() {
        None | Some("both") => vec![DispatchMode::SinglePop, DispatchMode::Batch],
        Some(s) => match DispatchMode::parse(s) {
            Some(m) => vec![m],
            None => {
                eprintln!("perf_report: unknown --dispatch {s} (want single|batch|both)");
                std::process::exit(2);
            }
        },
    };
    let sink_arg = flag("--sink").and_then(|i| args.get(i + 1).cloned());
    let bus_sink = match sink_arg.as_deref() {
        None => BusSinkKind::Null,
        Some(s) => match BusSinkKind::parse(s) {
            Some(k) => k,
            None => {
                eprintln!("perf_report: unknown --sink {s} (want null|mem|jsonl)");
                std::process::exit(2);
            }
        },
    };
    let regions_arg = flag("--regions").and_then(|i| args.get(i + 1).cloned());
    let region_counts: Vec<usize> = match regions_arg.as_deref() {
        None | Some("both") => vec![1, 2],
        Some(s) => match s.parse::<usize>() {
            Ok(k) if k >= 1 => vec![k],
            _ => {
                eprintln!("perf_report: unknown --regions {s} (want 1|2|K|both)");
                std::process::exit(2);
            }
        },
    };
    // The grid, backend-major so repetitions interleave across backends
    // first (the historically noisier axis).
    let mut cells: Vec<Cell> = Vec::new();
    for &backend in &backends {
        for &dispatch in &dispatches {
            for &regions in &region_counts {
                cells.push(Cell {
                    backend,
                    dispatch,
                    regions,
                });
            }
        }
    }
    let cells = cells;
    // The report's headline numbers come from the engine's defaults
    // (calendar queue, batch dispatch, sequential regions=1) when they're
    // in the grid; on a restricted grid, from the cell closest to the
    // defaults — a `--backend heap` run must still headline batch dispatch
    // (and emit the batch-vs-single A/B), not silently fall back to the
    // first cell. The region-partitioned cells never headline: regions=1
    // stays the reference engine.
    let find = |b: SchedulerBackend, d: DispatchMode, r: usize| {
        cells
            .iter()
            .position(|c| c.backend == b && c.dispatch == d && c.regions == r)
    };
    let headline = find(SchedulerBackend::default(), DispatchMode::default(), 1)
        .or_else(|| {
            cells
                .iter()
                .position(|c| c.dispatch == DispatchMode::default() && c.regions == 1)
        })
        .or_else(|| {
            cells
                .iter()
                .position(|c| c.backend == SchedulerBackend::default() && c.regions == 1)
        })
        .or_else(|| cells.iter().position(|c| c.regions == 1))
        .unwrap_or(0);
    // Reference cells for the three A/B axes, when present.
    let heap_ref = find(
        SchedulerBackend::BinaryHeap,
        cells[headline].dispatch,
        cells[headline].regions,
    );
    let single_ref = find(
        cells[headline].backend,
        DispatchMode::SinglePop,
        cells[headline].regions,
    )
    .filter(|_| cells[headline].dispatch == DispatchMode::Batch);
    // The region A/B compares the headline (sequential) cell against the
    // largest partitioned region count sharing its backend/dispatch.
    let regions_ref = region_counts
        .iter()
        .copied()
        .filter(|&r| r > cells[headline].regions)
        .max()
        .and_then(|r| find(cells[headline].backend, cells[headline].dispatch, r));

    eprintln!(
        "perf_report: running scenario matrix (quick={quick}, reps={reps}, sink={}, cells={})...",
        bus_sink.name(),
        cells
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let results = scenario_matrix(quick, &cells, reps, bus_sink);

    let parallel = if no_parallel {
        Vec::new()
    } else {
        eprintln!(
            "perf_report: running parallel A/B axis (resume_latency={PARALLEL_RESUME_LATENCY}us, \
             regions 2 and 4, seq vs threaded)..."
        );
        parallel_axis(quick, reps, bus_sink)
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let total_events: u64 = results.iter().map(|r| r.events).sum();
    let aggregate_for = |cell_idx: usize| {
        let wall: f64 = results.iter().map(|r| r.wall_secs[cell_idx]).sum();
        total_events as f64 / wall.max(1e-9)
    };
    let aggregate = aggregate_for(headline);

    let baseline = baseline_path.as_deref().and_then(|p| {
        let Ok(text) = std::fs::read_to_string(p) else {
            eprintln!("perf_report: warning: baseline {p} unreadable — skipping comparison");
            return None;
        };
        let b = parse_baseline(&text);
        if b.total_events_per_sec <= 0.0 {
            eprintln!("perf_report: warning: baseline {p} has no aggregate_events_per_sec — skipping comparison");
            return None;
        }
        Some(b)
    });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"report\": \"drrs-repro perf trajectory\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"scheduler\": \"{}\",",
        cells[headline].backend.name()
    );
    let _ = writeln!(
        json,
        "  \"dispatch\": \"{}\",",
        cells[headline].dispatch.name()
    );
    let _ = writeln!(json, "  \"regions\": {},", cells[headline].regions);
    let _ = writeln!(json, "  \"bus_sink\": \"{}\",", bus_sink.name());
    let _ = writeln!(json, "  \"aggregate_events_per_sec\": {aggregate:.0},");
    if let Some(h) = heap_ref.filter(|&h| h != headline) {
        let agg_heap = aggregate_for(h);
        let gain = aggregate / agg_heap.max(1e-9) - 1.0;
        let _ = writeln!(json, "  \"aggregate_events_per_sec_heap\": {agg_heap:.0},");
        let _ = writeln!(json, "  \"calendar_vs_heap_improvement\": {gain:.4},");
        eprintln!(
            "perf_report: scheduler A/B ({} dispatch): calendar {:.0} ev/s vs heap {:.0} ev/s ({:+.1}%), digests identical",
            cells[headline].dispatch.name(),
            aggregate,
            agg_heap,
            gain * 100.0
        );
    }
    if let Some(s) = single_ref {
        let agg_single = aggregate_for(s);
        let gain = aggregate / agg_single.max(1e-9) - 1.0;
        let _ = writeln!(
            json,
            "  \"aggregate_events_per_sec_single_pop\": {agg_single:.0},"
        );
        let _ = writeln!(json, "  \"batch_dispatch_improvement\": {gain:.4},");
        eprintln!(
            "perf_report: dispatch A/B ({} backend): batch {:.0} ev/s vs single-pop {:.0} ev/s ({:+.1}%), digests identical",
            cells[headline].backend.name(),
            aggregate,
            agg_single,
            gain * 100.0
        );
    }
    if let Some(rr) = regions_ref {
        let agg_regions = aggregate_for(rr);
        let gain = agg_regions / aggregate.max(1e-9) - 1.0;
        let k = cells[rr].regions;
        let _ = writeln!(
            json,
            "  \"aggregate_events_per_sec_regions{k}\": {agg_regions:.0},"
        );
        let _ = writeln!(json, "  \"region_partitioning_improvement\": {gain:.4},");
        eprintln!(
            "perf_report: regions A/B ({}/{}): {k} regions {:.0} ev/s vs sequential {:.0} ev/s ({:+.1}%), digests identical",
            cells[headline].backend.name(),
            cells[headline].dispatch.name(),
            agg_regions,
            aggregate,
            gain * 100.0
        );
    }
    if cells.len() > 1 {
        let _ = writeln!(json, "  \"cross_cell_digests_match\": true,");
    }
    let _ = writeln!(json, "  \"total_simulated_events\": {total_events},");
    let _ = writeln!(
        json,
        "  \"total_wall_secs\": {:.3},",
        results.iter().map(|r| r.wall_secs[headline]).sum::<f64>()
    );
    let _ = writeln!(json, "  \"peak_rss_kb\": {},", peak_rss_kb());
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    if let Some(b) = &baseline {
        let improvement = if b.total_events_per_sec > 0.0 {
            aggregate / b.total_events_per_sec - 1.0
        } else {
            0.0
        };
        let digest_match = results.iter().all(|r| {
            b.digests
                .iter()
                .find(|(n, _)| *n == r.name)
                .is_none_or(|(_, d)| *d == r.digest)
        });
        let _ = writeln!(
            json,
            "  \"baseline_events_per_sec\": {:.0},",
            b.total_events_per_sec
        );
        let _ = writeln!(json, "  \"improvement_over_baseline\": {improvement:.4},");
        // Apples-to-apples PR-over-PR number: summed headline events/sec
        // over only the scenarios present in BOTH reports, so growing the
        // matrix can never inflate (or dilute) the trajectory.
        let shared: Vec<(f64, f64)> = results
            .iter()
            .filter_map(|r| {
                b.events_per_sec
                    .iter()
                    .find(|(n, _)| *n == r.name)
                    .map(|(_, base_eps)| (r.events_per_sec[headline], *base_eps))
            })
            .collect();
        if !shared.is_empty() {
            let cur: f64 = shared.iter().map(|(eps, _)| *eps).sum();
            let base: f64 = shared.iter().map(|(_, base)| *base).sum();
            let comparable = cur / base.max(1e-9) - 1.0;
            let _ = writeln!(json, "  \"comparable_scenarios\": {},", shared.len());
            let _ = writeln!(json, "  \"comparable_improvement\": {comparable:.4},");
            eprintln!(
                "perf_report: comparable improvement over {} shared scenarios: {:+.1}%",
                shared.len(),
                comparable * 100.0
            );
        }
        let _ = writeln!(json, "  \"digest_match_with_baseline\": {digest_match},");
        eprintln!(
            "perf_report: {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%), digests match: {}",
            aggregate,
            b.total_events_per_sec,
            improvement * 100.0,
            digest_match
        );
    }
    if !parallel.is_empty() {
        let _ = writeln!(
            json,
            "  \"parallel_resume_latency_us\": {PARALLEL_RESUME_LATENCY},"
        );
        let _ = writeln!(json, "  \"parallel\": [");
        for (i, p) in parallel.iter().enumerate() {
            let comma = if i + 1 < parallel.len() { "," } else { "" };
            let speedup = p.par_events_per_sec / p.seq_events_per_sec.max(1e-9);
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"scenario\": \"{}\",", p.name);
            let _ = writeln!(json, "      \"regions\": {},", p.regions);
            let _ = writeln!(json, "      \"threads\": {},", p.threads);
            let _ = writeln!(json, "      \"events\": {},", p.events);
            let _ = writeln!(
                json,
                "      \"events_per_sec_seq\": {:.0},",
                p.seq_events_per_sec
            );
            let _ = writeln!(
                json,
                "      \"events_per_sec_par\": {:.0},",
                p.par_events_per_sec
            );
            let _ = writeln!(json, "      \"parallel_speedup\": {speedup:.4},");
            let _ = writeln!(json, "      \"digest_match\": true,");
            let _ = writeln!(json, "      \"digest\": \"0x{:016x}\"", p.digest);
            let _ = writeln!(json, "    }}{comma}");
            eprintln!(
                "perf_report: parallel A/B {} r{}: seq {:.0} ev/s vs par {:.0} ev/s \
                 ({speedup:.2}x on {} threads, host_cpus={host_cpus}), digests identical",
                p.name, p.regions, p.seq_events_per_sec, p.par_events_per_sec, p.threads
            );
        }
        let _ = writeln!(json, "  ],");
    }
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let eps = r.events_per_sec[headline];
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"events\": {},", r.events);
        let _ = writeln!(json, "      \"wall_secs\": {:.4},", r.wall_secs[headline]);
        let _ = writeln!(json, "      \"events_per_sec\": {eps:.0},");
        if let Some(h) = heap_ref.filter(|&h| h != headline) {
            let heap_eps = r.events_per_sec[h];
            let gain = eps / heap_eps.max(1e-9) - 1.0;
            let _ = writeln!(json, "      \"events_per_sec_heap\": {heap_eps:.0},");
            let _ = writeln!(json, "      \"calendar_vs_heap\": {gain:.4},");
        }
        if let Some(s) = single_ref {
            let single_eps = r.events_per_sec[s];
            let gain = eps / single_eps.max(1e-9) - 1.0;
            let _ = writeln!(
                json,
                "      \"events_per_sec_single_pop\": {single_eps:.0},"
            );
            let _ = writeln!(json, "      \"batch_vs_single\": {gain:.4},");
        }
        if let Some(rr) = regions_ref {
            let region_eps = r.events_per_sec[rr];
            let gain = region_eps / eps.max(1e-9) - 1.0;
            let k = cells[rr].regions;
            let _ = writeln!(
                json,
                "      \"events_per_sec_regions{k}\": {region_eps:.0},"
            );
            let _ = writeln!(json, "      \"regions_vs_sequential\": {gain:.4},");
        }
        let _ = writeln!(json, "      \"sink_records\": {},", r.sink_records);
        let _ = writeln!(json, "      \"digest\": \"0x{:016x}\"", r.digest);
        let _ = writeln!(json, "    }}{comma}");
        let mut line = format!("  {:<26} {:>12} events ", r.name, r.events);
        for (ci, c) in cells.iter().enumerate() {
            let _ = write!(line, " {} {:>11.0} ev/s ", c.label(), r.events_per_sec[ci]);
        }
        let _ = write!(line, " digest 0x{:016x}", r.digest);
        eprintln!("{line}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("perf_report: wrote {out_path}");

    if require_digest_match {
        // Strict mode for CI: every scenario must be present in the
        // baseline AND digest-equal — the port/refactor under test is
        // required to be behavior-preserving against the recorded
        // trajectory, proven, not assumed.
        let Some(b) = &baseline else {
            eprintln!("perf_report: FATAL: --require-digest-match needs a readable --baseline");
            std::process::exit(1);
        };
        let mut ok = true;
        for r in &results {
            match b.digests.iter().find(|(n, _)| *n == r.name) {
                Some((_, d)) if *d == r.digest => {}
                Some((_, d)) => {
                    eprintln!(
                        "perf_report: FATAL: scenario {} digest 0x{:016x} != baseline 0x{d:016x}",
                        r.name, r.digest
                    );
                    ok = false;
                }
                None => {
                    eprintln!(
                        "perf_report: FATAL: scenario {} missing from the baseline",
                        r.name
                    );
                    ok = false;
                }
            }
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!(
            "perf_report: all {} scenario digests byte-identical to the baseline",
            results.len()
        );
    }
}
