//! `perf_report` — the PR-over-PR performance trajectory harness.
//!
//! Runs a fixed scenario matrix (steady-state pipeline, DRRS rescale in
//! progress, Megaphone-style baseline rescale, high-skew overload) and
//! writes a JSON report with, per scenario:
//!
//! * simulated events dispatched and wall-clock time,
//! * events/second of simulated pipeline (the headline number),
//! * the deterministic metrics digest (same seed ⇒ same digest — any
//!   divergence between two builds signals a semantics change, not just a
//!   perf change),
//! * a peak-RSS proxy (`VmHWM` from `/proc/self/status`, 0 where absent).
//!
//! Usage: `perf_report [--out FILE] [--baseline FILE] [--quick]`
//!
//! With `--baseline`, the report embeds the baseline's events/sec and the
//! relative improvement, so `BENCH_PR1.json` carries the before/after pair
//! measured on the same machine.

use std::fmt::Write as _;
use std::time::Instant;

use simcore::time::secs;
use streamflow::world::tests_support::tiny_job;
use streamflow::world::Sim;
use streamflow::{EngineConfig, NoScale, ScalePlugin};

struct ScenarioResult {
    name: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    sink_records: u64,
    digest: u64,
}

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn run_scenario(name: &'static str, horizon_secs: u64, build: impl Fn() -> Sim) -> ScenarioResult {
    // One warmup run (page in code, warm the allocator), then the timed run.
    {
        let mut sim = build();
        sim.run_until(secs(1));
    }
    let mut sim = build();
    let start = Instant::now();
    sim.run_until(secs(horizon_secs));
    let wall = start.elapsed().as_secs_f64();
    let events = sim.world.q.processed();
    ScenarioResult {
        name,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-9),
        sink_records: sim.world.metrics.sink_records,
        digest: sim.world.metrics_digest(),
    }
}

fn scenario_matrix(quick: bool) -> Vec<ScenarioResult> {
    let horizon = if quick { 4 } else { 10 };
    let mut cfg = EngineConfig::test();
    cfg.max_key_groups = 128;
    cfg.check_semantics = false;

    let steady_cfg = cfg.clone();
    let steady = run_scenario("steady_50k", horizon, move || {
        let (w, _) = tiny_job(steady_cfg.clone(), 50_000.0, 4_096, 4);
        Sim::new(w, Box::new(NoScale))
    });

    let drrs_cfg = cfg.clone();
    let drrs = run_scenario("drrs_rescale_4_to_6", horizon, move || {
        let (mut w, agg) = tiny_job(drrs_cfg.clone(), 50_000.0, 4_096, 4);
        w.schedule_scale(secs(2), agg, 6);
        Sim::new(w, drrs_plugin())
    });

    let mega_cfg = cfg.clone();
    let megaphone = run_scenario("megaphone_rescale_4_to_6", horizon, move || {
        let (mut w, agg) = tiny_job(mega_cfg.clone(), 50_000.0, 4_096, 4);
        w.schedule_scale(secs(2), agg, 6);
        Sim::new(w, megaphone_plugin())
    });

    let scalein_cfg = cfg.clone();
    let scale_in = run_scenario("drrs_scale_in_6_to_3", horizon, move || {
        let (mut w, agg) = tiny_job(scalein_cfg.clone(), 30_000.0, 4_096, 6);
        w.schedule_scale(secs(2), agg, 3);
        Sim::new(w, drrs_plugin())
    });

    let overload_cfg = cfg;
    let overload = run_scenario("overload_backpressure", horizon, move || {
        let (w, _) = tiny_job(overload_cfg.clone(), 120_000.0, 1_024, 2);
        Sim::new(w, Box::new(NoScale))
    });

    vec![steady, drrs, megaphone, scale_in, overload]
}

fn drrs_plugin() -> Box<dyn ScalePlugin> {
    Box::new(drrs_core::FlexScaler::drrs())
}

fn megaphone_plugin() -> Box<dyn ScalePlugin> {
    Box::new(baselines::megaphone(8))
}

#[derive(Default)]
struct Baseline {
    total_events_per_sec: f64,
    digests: Vec<(String, u64)>,
}

/// Minimal field extraction from our own JSON (no serde in the offline
/// container): finds `"name": ..., "events_per_sec": ..., "digest": ...`
/// triples in document order plus the top-level aggregate.
fn parse_baseline(text: &str) -> Baseline {
    let mut b = Baseline::default();
    let grab_num = |line: &str| -> Option<f64> {
        line.split(':')
            .nth(1)?
            .trim()
            .trim_end_matches(',')
            .parse()
            .ok()
    };
    let grab_str = |line: &str| -> Option<String> {
        Some(
            line.split(':')
                .nth(1)?
                .trim()
                .trim_matches(|c| c == ',' || c == '"')
                .to_string(),
        )
    };
    let mut cur_name: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"aggregate_events_per_sec\"") {
            b.total_events_per_sec = grab_num(t).unwrap_or(0.0);
        } else if t.starts_with("\"name\"") {
            cur_name = grab_str(t);
        } else if t.starts_with("\"digest\"") {
            if let (Some(n), Some(d)) = (cur_name.take(), grab_str(t)) {
                if let Ok(d) = u64::from_str_radix(d.trim_start_matches("0x"), 16) {
                    b.digests.push((n, d));
                }
            }
        }
    }
    b
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name);
    let out_path = flag("--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let baseline_path = flag("--baseline").and_then(|i| args.get(i + 1).cloned());
    let quick = flag("--quick").is_some() || bench::quick();

    eprintln!("perf_report: running scenario matrix (quick={quick})...");
    let results = scenario_matrix(quick);

    let total_events: u64 = results.iter().map(|r| r.events).sum();
    let total_wall: f64 = results.iter().map(|r| r.wall_secs).sum();
    let aggregate = total_events as f64 / total_wall.max(1e-9);

    let baseline = baseline_path.as_deref().and_then(|p| {
        let Ok(text) = std::fs::read_to_string(p) else {
            eprintln!("perf_report: warning: baseline {p} unreadable — skipping comparison");
            return None;
        };
        let b = parse_baseline(&text);
        if b.total_events_per_sec <= 0.0 {
            eprintln!("perf_report: warning: baseline {p} has no aggregate_events_per_sec — skipping comparison");
            return None;
        }
        Some(b)
    });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"report\": \"drrs-repro perf trajectory\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"aggregate_events_per_sec\": {aggregate:.0},");
    let _ = writeln!(json, "  \"total_simulated_events\": {total_events},");
    let _ = writeln!(json, "  \"total_wall_secs\": {total_wall:.3},");
    let _ = writeln!(json, "  \"peak_rss_kb\": {},", peak_rss_kb());
    if let Some(b) = &baseline {
        let improvement = if b.total_events_per_sec > 0.0 {
            aggregate / b.total_events_per_sec - 1.0
        } else {
            0.0
        };
        let digest_match = results.iter().all(|r| {
            b.digests
                .iter()
                .find(|(n, _)| n == r.name)
                .is_none_or(|(_, d)| *d == r.digest)
        });
        let _ = writeln!(
            json,
            "  \"baseline_events_per_sec\": {:.0},",
            b.total_events_per_sec
        );
        let _ = writeln!(json, "  \"improvement_over_baseline\": {improvement:.4},");
        let _ = writeln!(json, "  \"digest_match_with_baseline\": {digest_match},");
        eprintln!(
            "perf_report: {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%), digests match: {}",
            aggregate,
            b.total_events_per_sec,
            improvement * 100.0,
            digest_match
        );
    }
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"events\": {},", r.events);
        let _ = writeln!(json, "      \"wall_secs\": {:.4},", r.wall_secs);
        let _ = writeln!(json, "      \"events_per_sec\": {:.0},", r.events_per_sec);
        let _ = writeln!(json, "      \"sink_records\": {},", r.sink_records);
        let _ = writeln!(json, "      \"digest\": \"0x{:016x}\"", r.digest);
        let _ = writeln!(json, "    }}{comma}");
        eprintln!(
            "  {:<26} {:>12} events  {:>8.3}s  {:>12.0} ev/s  digest 0x{:016x}",
            r.name, r.events, r.wall_secs, r.events_per_sec, r.digest
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("perf_report: wrote {out_path}");
}
