//! Design-choice ablations beyond the paper's Fig. 14 — the knobs DESIGN.md
//! calls out:
//!
//! * **subscale count** (§III-C: granularity of division),
//! * **per-instance concurrency threshold** (§IV-A: default 2 — parallel
//!   acceleration vs contention),
//! * **Re-route Manager strategy** (§IV-A B4: capacity- vs timeout-based
//!   flushing).
//!
//! Run on the Twitch workload under the fig-14 protocol. The rows are the
//! `ablation/` group of `bench::scenario::registry` (one named
//! `ScenarioSpec` per cell, grouped into sections); each section's rows run
//! on the scenario `Runner`'s thread pool and print in canonical row order
//! regardless of finish order.

use bench::quick;
use bench::scenario::registry::ablation_plan;
use bench::scenario::{RunReport, Runner};

fn main() {
    let plan = ablation_plan(quick());
    let (scale_at, window_end) = (plan.scale_at, plan.window_end);

    let print_row = |label: &str, r: &RunReport| {
        let (peak, avg) = r.latency_ms(scale_at, window_end);
        println!(
            "{label:<34} peak {peak:>8.0} ms  avg {avg:>7.0} ms  migration {:>6.1} s  susp {:>8.0} ms",
            r.migration_secs(),
            r.suspension_ms
        );
    };

    let runner = Runner::in_process();
    for section in &plan.sections {
        println!("{}", section.title);
        let rows = runner.run(&section.specs);
        match section.key {
            "megaphone_batch" => {
                for (label, r) in section.labels.iter().zip(&rows) {
                    let (peak, avg) = r.latency_ms(scale_at, window_end);
                    println!(
                        "{label:<34} peak {peak:>8.0} ms  avg {avg:>7.0} ms  migration {:>6.1} s",
                        r.migration_secs()
                    );
                }
            }
            // §V-A: the paper swaps Tumbling for Sliding windows because
            // tumbling windows' periodic state accumulation destabilizes
            // scaling (reproduced on Q7: same total window, slide = size vs
            // 500 ms slides).
            "window" => {
                for (label, r) in section.labels.iter().zip(&rows) {
                    let (peak, avg) = r.latency_ms(scale_at, window_end);
                    println!("{label:<34} peak {peak:>8.0} ms  avg {avg:>7.0} ms");
                }
            }
            _ => {
                for (label, r) in section.labels.iter().zip(&rows) {
                    print_row(label, r);
                }
            }
        }
    }

    println!("\nFindings: subscale division is floored by (source,destination) pairing —");
    println!("counts beyond the pair count change nothing; concurrency 1 slows migration");
    println!("but trims suspension; unbounded concurrency adds contention for no gain");
    println!("(supporting the paper's default threshold of 2); tumbling windows spike");
    println!("harder than sliding ones under the same scale (the paper's §V-A rationale).");
}
