//! Design-choice ablations beyond the paper's Fig. 14 — the knobs DESIGN.md
//! calls out:
//!
//! * **subscale count** (§III-C: granularity of division),
//! * **per-instance concurrency threshold** (§IV-A: default 2 — parallel
//!   acceleration vs contention),
//! * **Re-route Manager strategy** (§IV-A B4: capacity- vs timeout-based
//!   flushing).
//!
//! Run on the Twitch workload under the fig-14 protocol. Every ablation row
//! is an independent simulation, so each section's rows run on a thread
//! pool (`bench::parallel_map`, one single-threaded deterministic sim per
//! thread) and print in canonical row order regardless of finish order.

use bench::{parallel_map, quick, run};
use drrs_core::{FlexScaler, MechanismConfig};
use simcore::time::{ms, secs, SimTime};
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

/// One ablation row's measurements.
struct Row {
    peak: f64,
    avg: f64,
    migration_s: f64,
    susp_ms: f64,
}

fn main() {
    let (scale_at, window_end) = if quick() {
        (secs(60), secs(140))
    } else {
        (secs(300), secs(475))
    };
    let horizon = window_end + secs(40);
    let params = if quick() {
        TwitchParams {
            events: 1_200_000,
            duration_s: 300,
            ..Default::default()
        }
    } else {
        TwitchParams::default()
    };

    let go = |mech: &'static str, cfg: MechanismConfig| -> Row {
        let (w, op) = twitch(twitch_engine_config(99), &params);
        let r = run(
            mech,
            w,
            op,
            Box::new(FlexScaler::new(cfg)),
            scale_at,
            12,
            horizon,
        );
        let (peak, avg) = r.latency_ms(scale_at, window_end);
        let done = r
            .migration_done()
            .map(|t| t as f64 / 1e6 - scale_at as f64 / 1e6);
        Row {
            peak,
            avg,
            migration_s: done.unwrap_or(f64::NAN),
            susp_ms: r.suspension_ms(),
        }
    };
    let print_row = |label: &str, row: &Row| {
        println!(
            "{label:<34} peak {:>8.0} ms  avg {:>7.0} ms  migration {:>6.1} s  susp {:>8.0} ms",
            row.peak, row.avg, row.migration_s, row.susp_ms
        );
    };

    println!("=== Ablation A: subscale count (concurrency 2) ===");
    let subscales = [1usize, 2, 4, 8, 16, 32];
    let rows = parallel_map(subscales.to_vec(), |n| {
        go(
            "DRRS",
            MechanismConfig {
                subscale_count: n,
                ..MechanismConfig::drrs()
            },
        )
    });
    for (n, row) in subscales.iter().zip(&rows) {
        print_row(&format!("subscales={n}"), row);
    }

    println!("\n=== Ablation B: concurrency threshold (8 subscales) ===");
    let limits = [1usize, 2, 4, 64];
    let rows = parallel_map(limits.to_vec(), |limit| {
        go(
            "DRRS",
            MechanismConfig {
                concurrency_limit: limit,
                ..MechanismConfig::drrs()
            },
        )
    });
    for (limit, row) in limits.iter().zip(&rows) {
        print_row(&format!("concurrency={limit}"), row);
    }

    println!("\n=== Ablation C: Re-route Manager strategy ===");
    let strategies: [(&str, usize, SimTime); 3] = [
        ("capacity=1 (immediate)", 1, ms(50)),
        ("capacity=32, timeout=5ms (default)", 32, ms(5)),
        ("capacity=256, timeout=50ms (lazy)", 256, ms(50)),
    ];
    let rows = parallel_map(strategies.to_vec(), |(_, batch, timeout)| {
        go(
            "DRRS",
            MechanismConfig {
                reroute_batch: batch,
                reroute_timeout: timeout,
                ..MechanismConfig::drrs()
            },
        )
    });
    for ((label, _, _), row) in strategies.iter().zip(&rows) {
        print_row(label, row);
    }

    println!("\n=== Ablation E: Megaphone batch size (naive-division granularity) ===");
    let batches = [1usize, 4, 16, 64];
    let rows = parallel_map(batches.to_vec(), |batch| {
        go("Megaphone", MechanismConfig::megaphone(batch))
    });
    for (batch, row) in batches.iter().zip(&rows) {
        println!(
            "megaphone batch={batch:<3}                peak {:>8.0} ms  avg {:>7.0} ms  migration {:>6.1} s",
            row.peak, row.avg, row.migration_s
        );
    }

    // §V-A: the paper swaps Tumbling for Sliding windows because tumbling
    // windows' periodic state accumulation destabilizes scaling. Reproduce
    // on Q7: same total window, slide = size (tumbling) vs 500 ms slides.
    println!("\n=== Ablation D: sliding vs tumbling windows under scaling (Q7) ===");
    use workloads::nexmark::{nexmark_engine_config, q7, Q7Params};
    let windows: [(&str, SimTime); 2] = [
        ("sliding 500ms (paper)", ms(500)),
        ("tumbling (slide=size)", secs(10)),
    ];
    let rows = parallel_map(windows.to_vec(), |(_, slide)| {
        let p = Q7Params {
            tps: if quick() { 10_000.0 } else { 20_000.0 },
            slide,
            ..Default::default()
        };
        let (w, op) = q7(nexmark_engine_config(77), &p);
        let r = run(
            "DRRS",
            w,
            op,
            Box::new(FlexScaler::drrs()),
            scale_at,
            12,
            horizon,
        );
        r.latency_ms(scale_at, window_end)
    });
    for ((label, _), (peak, avg)) in windows.iter().zip(&rows) {
        println!("{label:<34} peak {peak:>8.0} ms  avg {avg:>7.0} ms");
    }

    println!("\nFindings: subscale division is floored by (source,destination) pairing —");
    println!("counts beyond the pair count change nothing; concurrency 1 slows migration");
    println!("but trims suspension; unbounded concurrency adds contention for no gain");
    println!("(supporting the paper's default threshold of 2); tumbling windows spike");
    println!("harder than sliding ones under the same scale (the paper's §V-A rationale).");
}
