//! Fig. 10 + Fig. 11 — fundamental effectiveness: end-to-end latency and
//! throughput during scaling for **DRRS**, **Meces** and **Megaphone** on
//! NEXMark Q7, Q8 and Twitch.
//!
//! Protocol (paper §V-B): 300 s warm-up, scale the bottleneck operator from
//! 8 to 12 instances (migrating 111 of 128 key-groups, uniform
//! re-partitioning), then a stabilization period. The scaling period ends
//! when latency stays within 110% of the pre-scaling level for 100 s.
//!
//! The rows are the `fig10_11/` group of `bench::scenario::registry`
//! (workload × mechanism × seed, each a named `ScenarioSpec`); they run on
//! the scenario `Runner` and all statistics come from the typed
//! `RunReport` — the latency/throughput series, the per-run scaling-period
//! end, and the order-violation counter.
//!
//! Paper reference (Fig. 10): on Q7 DRRS peak 15.8 s / avg 1.7 s vs Meces
//! 80.2 s / 29.4 s vs Megaphone 83.5 s / 37.8 s; Twitch shows Megaphone
//! with competitive latency but a 5.6× longer scaling period.

use bench::scenario::registry::fig10_11_plan;
use bench::scenario::{RunReport, Runner};
use bench::{pm, print_series, quick};
use simcore::time::secs;

fn main() {
    let plan = fig10_11_plan(quick());
    let scale_at = plan.scale_at;
    let per_workload = plan.mechs.len() * plan.seeds.len();
    let all_reports = Runner::in_process().run(&plan.specs);

    for (wi, &(wname, horizon)) in plan.workloads.iter().enumerate() {
        println!(
            "=== {} (scale at {} s, 8 -> 12 instances) ===",
            wname,
            scale_at / 1_000_000
        );
        // The paper uses "the longest observed scaling period among all
        // three methods as the statistical basis".
        let reports = &all_reports[wi * per_workload..(wi + 1) * per_workload];
        let mut longest_end = scale_at + secs(30);
        for r in reports {
            longest_end = longest_end.max(r.scaling_period_end.unwrap_or(horizon));
        }
        println!(
            "statistical window: [{}, {}] s (longest scaling period)\n",
            scale_at / 1_000_000,
            longest_end / 1_000_000
        );
        #[allow(clippy::type_complexity)]
        let mut table: Vec<(String, Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
        for (mi, mech) in plan.mechs.iter().enumerate() {
            let per_seed: &[RunReport] =
                &reports[mi * plan.seeds.len()..(mi + 1) * plan.seeds.len()];
            let mut peaks = Vec::new();
            let mut avgs = Vec::new();
            let mut periods = Vec::new();
            for (si, r) in per_seed.iter().enumerate() {
                // The slice arithmetic above must agree with the registry's
                // loop nesting — fail loudly if the grid order ever drifts.
                assert_eq!(
                    r.scenario,
                    format!("fig10_11/{wname}/{mech}/seed{}", plan.seeds[si]),
                    "registry grid order drifted from the figure layout"
                );
                let end = r.scaling_period_end.unwrap_or(horizon);
                let (peak, avg) = r.latency_ms(scale_at, longest_end);
                peaks.push(peak);
                avgs.push(avg);
                periods.push((end.saturating_sub(scale_at)) as f64 / 1_000_000.0);
                if si == 0 {
                    println!("-- {mech} (seed {})", plan.seeds[0]);
                    print_series(
                        "Fig.10 latency",
                        &r.latency_series_ms(),
                        if quick() { 10 } else { 25 },
                        "ms",
                    );
                    print_series(
                        "Fig.11 throughput",
                        &r.throughput,
                        if quick() { 10 } else { 25 },
                        "rec/s",
                    );
                    println!(
                        "  migration done: {:?} s, stabilized at: {:?} s, order violations: {}",
                        r.migration_done.map(|t| t / 1_000_000),
                        r.scaling_period_end.map(|t| t / 1_000_000),
                        r.violations
                    );
                }
            }
            table.push((mech.to_string(), peaks, avgs, periods));
        }
        println!("\nIn scaling window          Peak(ms)           Average(ms)    Period(s)");
        for (m, p, a, d) in &table {
            println!("{:<10} {} {} {}", m, pm(p), pm(a), pm(d));
        }
        let drrs_avg = table[0].2.iter().sum::<f64>() / table[0].2.len() as f64;
        for (m, _, a, d) in table.iter().skip(1) {
            let avg = a.iter().sum::<f64>() / a.len() as f64;
            let dd = d.iter().sum::<f64>() / d.len() as f64;
            let d0 = table[0].3.iter().sum::<f64>() / table[0].3.len() as f64;
            println!(
                "  DRRS vs {m}: avg latency -{:.1}%, scaling time -{:.1}%",
                (1.0 - drrs_avg / avg.max(1e-9)) * 100.0,
                (1.0 - d0 / dd.max(1e-9)) * 100.0
            );
        }
        println!();
    }
    println!("paper Q7: DRRS 15760/1705, Meces 80172/29439, Megaphone 83482/37791 (peak/avg ms)");
    println!("paper Q8: DRRS 45562/4501, Meces 122373/38266, Megaphone 194566/70182");
    println!("paper Twitch: DRRS 21651/5300, Meces 59978/33293, Megaphone 18422/5598");
}
