//! Fig. 10 + Fig. 11 — fundamental effectiveness: end-to-end latency and
//! throughput during scaling for **DRRS**, **Meces** and **Megaphone** on
//! NEXMark Q7, Q8 and Twitch.
//!
//! Protocol (paper §V-B): 300 s warm-up, scale the bottleneck operator from
//! 8 to 12 instances (migrating 111 of 128 key-groups, uniform
//! re-partitioning), then a stabilization period. The scaling period ends
//! when latency stays within 110% of the pre-scaling level for 100 s.
//!
//! Paper reference (Fig. 10): on Q7 DRRS peak 15.8 s / avg 1.7 s vs Meces
//! 80.2 s / 29.4 s vs Megaphone 83.5 s / 37.8 s; Twitch shows Megaphone
//! with competitive latency but a 5.6× longer scaling period.

use baselines::{megaphone, MecesPlugin};
use bench::{pm, print_series, quick, run};
use drrs_core::FlexScaler;
use simcore::time::{secs, SimTime};
use streamflow::{OpId, ScalePlugin, World};
use workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

fn mechanisms() -> Vec<&'static str> {
    vec!["DRRS", "Meces", "Megaphone"]
}

fn plugin_for(name: &str) -> Box<dyn ScalePlugin> {
    match name {
        "DRRS" => Box::new(FlexScaler::drrs()),
        "Meces" => Box::new(MecesPlugin::new()),
        "Megaphone" => Box::new(megaphone(1)),
        _ => unreachable!(),
    }
}

struct Workload {
    name: &'static str,
    build: Box<dyn Fn(u64) -> (World, OpId)>,
    horizon: SimTime,
}

fn workloads_under_test() -> Vec<Workload> {
    if quick() {
        vec![
            Workload {
                name: "Q7",
                build: Box::new(|seed| {
                    q7(
                        nexmark_engine_config(seed),
                        &Q7Params {
                            tps: 10_000.0,
                            ..Default::default()
                        },
                    )
                }),
                horizon: secs(200),
            },
            Workload {
                name: "Twitch",
                build: Box::new(|seed| {
                    twitch(
                        twitch_engine_config(seed),
                        &TwitchParams {
                            events: 1_200_000,
                            duration_s: 300,
                            ..Default::default()
                        },
                    )
                }),
                horizon: secs(200),
            },
        ]
    } else {
        vec![
            Workload {
                name: "Q7",
                build: Box::new(|seed| q7(nexmark_engine_config(seed), &Q7Params::default())),
                horizon: secs(620),
            },
            Workload {
                name: "Q8",
                build: Box::new(|seed| q8(nexmark_engine_config(seed), &Q8Params::default())),
                horizon: secs(900),
            },
            Workload {
                name: "Twitch",
                build: Box::new(|seed| {
                    twitch(twitch_engine_config(seed), &TwitchParams::default())
                }),
                horizon: secs(650),
            },
        ]
    }
}

fn main() {
    let scale_at = if quick() { secs(60) } else { secs(300) };
    let seeds: Vec<u64> = if quick() { vec![1] } else { vec![1, 2] };

    for wl in workloads_under_test() {
        println!(
            "=== {} (scale at {} s, 8 -> 12 instances) ===",
            wl.name,
            scale_at / 1_000_000
        );
        // First pass: run everything and find the longest scaling period —
        // the paper uses "the longest observed scaling period among all
        // three methods as the statistical basis".
        let mut runs: Vec<(String, Vec<bench::RunResult>)> = Vec::new();
        let mut longest_end = scale_at + secs(30);
        for mech in mechanisms() {
            let mut per_seed = Vec::new();
            for &seed in &seeds {
                let (w, op) = (wl.build)(seed);
                let r = run(mech, w, op, plugin_for(mech), scale_at, 12, wl.horizon);
                let end = r.scaling_period_end().unwrap_or(wl.horizon);
                longest_end = longest_end.max(end);
                per_seed.push(r);
            }
            runs.push((mech.to_string(), per_seed));
        }
        println!(
            "statistical window: [{}, {}] s (longest scaling period)\n",
            scale_at / 1_000_000,
            longest_end / 1_000_000
        );
        #[allow(clippy::type_complexity)]
        let mut table: Vec<(String, Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
        for (mech, per_seed) in &runs {
            let mut peaks = Vec::new();
            let mut avgs = Vec::new();
            let mut periods = Vec::new();
            for (si, r) in per_seed.iter().enumerate() {
                let end = r.scaling_period_end().unwrap_or(wl.horizon);
                let (peak, avg) = r.latency_ms(scale_at, longest_end);
                peaks.push(peak);
                avgs.push(avg);
                periods.push((end.saturating_sub(scale_at)) as f64 / 1_000_000.0);
                if si == 0 {
                    println!("-- {mech} (seed {})", seeds[0]);
                    print_series(
                        "Fig.10 latency",
                        &bench::latency_series_ms(r),
                        if quick() { 10 } else { 25 },
                        "ms",
                    );
                    print_series(
                        "Fig.11 throughput",
                        &r.sim.world.metrics.throughput(),
                        if quick() { 10 } else { 25 },
                        "rec/s",
                    );
                    println!(
                        "  migration done: {:?} s, stabilized at: {:?} s, order violations: {}",
                        r.migration_done().map(|t| t / 1_000_000),
                        r.scaling_period_end().map(|t| t / 1_000_000),
                        r.violations()
                    );
                }
            }
            table.push((mech.clone(), peaks, avgs, periods));
        }
        println!("\nIn scaling window          Peak(ms)           Average(ms)    Period(s)");
        for (m, p, a, d) in &table {
            println!("{:<10} {} {} {}", m, pm(p), pm(a), pm(d));
        }
        let drrs_avg = table[0].2.iter().sum::<f64>() / table[0].2.len() as f64;
        for (m, _, a, d) in table.iter().skip(1) {
            let avg = a.iter().sum::<f64>() / a.len() as f64;
            let dd = d.iter().sum::<f64>() / d.len() as f64;
            let d0 = table[0].3.iter().sum::<f64>() / table[0].3.len() as f64;
            println!(
                "  DRRS vs {m}: avg latency -{:.1}%, scaling time -{:.1}%",
                (1.0 - drrs_avg / avg.max(1e-9)) * 100.0,
                (1.0 - d0 / dd.max(1e-9)) * 100.0
            );
        }
        println!();
    }
    println!("paper Q7: DRRS 15760/1705, Meces 80172/29439, Megaphone 83482/37791 (peak/avg ms)");
    println!("paper Q8: DRRS 45562/4501, Meces 122373/38266, Megaphone 194566/70182");
    println!("paper Twitch: DRRS 21651/5300, Meces 59978/33293, Megaphone 18422/5598");
}
