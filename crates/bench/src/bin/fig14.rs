//! Fig. 14 — design-rationale validation: ablation of DRRS's mechanisms on
//! the Twitch workload. Four variants: the complete **DRRS** system and
//! three variants each enabling only one core design — Decoupling &
//! Re-routing (**DR**), Record Scheduling (**Schedule**), Subscale Division
//! (**Subscale**).
//!
//! The variants are the `fig14/` group of `bench::scenario::registry`,
//! executed through the scenario `Runner`.
//!
//! Paper reference (during 300–475 s, ms): peaks DRRS 20008 / DR 25963 /
//! Schedule 23625 / Subscale 24652; averages 7187 / 8779 / 8234 / 8511.
//! Shape: full DRRS lowest on both; every single-mechanism variant is
//! 15–30% worse; Subscale shows the largest fluctuations (synchronization
//! interference).

use bench::scenario::registry::fig14_plan;
use bench::scenario::Runner;
use bench::{print_series, quick};

fn main() {
    let plan = fig14_plan(quick());
    let (scale_at, window_end) = (plan.scale_at, plan.window_end);

    println!("=== Fig. 14: DRRS mechanism ablation (Twitch) ===\n");
    let reports = Runner::in_process().run(&plan.specs);
    let mut rows = Vec::new();
    for r in &reports {
        let name = r.mechanism.clone();
        let (peak, avg) = r.latency_ms(scale_at, window_end);
        println!(
            "-- {name}: peak {peak:.0} ms, avg {avg:.0} ms, violations {}",
            r.violations
        );
        print_series(
            "latency",
            &r.latency_series_ms(),
            if quick() { 10 } else { 20 },
            "ms",
        );
        rows.push((name, peak, avg));
        println!();
    }
    println!(
        "During {}-{} s",
        scale_at / 1_000_000,
        window_end / 1_000_000
    );
    println!("---------------------");
    println!("{:<10} {:>10} {:>10}", "", "Peak(ms)", "Avg(ms)");
    for (n, p, a) in &rows {
        println!("{n:<10} {p:>10.0} {a:>10.0}");
    }
    let full = rows[0].clone();
    println!("---------------------");
    for (n, p, a) in rows.iter().skip(1) {
        println!(
            "{n} vs DRRS: peak +{:.0}%, avg +{:.0}%  (paper: DR +30/+22, Schedule +18/+15, Subscale +23/+18)",
            (p / full.1 - 1.0) * 100.0,
            (a / full.2 - 1.0) * 100.0
        );
    }
}
