//! Fig. 14 — design-rationale validation: ablation of DRRS's mechanisms on
//! the Twitch workload. Four variants: the complete **DRRS** system and
//! three variants each enabling only one core design — Decoupling &
//! Re-routing (**DR**), Record Scheduling (**Schedule**), Subscale Division
//! (**Subscale**).
//!
//! Paper reference (during 300–475 s, ms): peaks DRRS 20008 / DR 25963 /
//! Schedule 23625 / Subscale 24652; averages 7187 / 8779 / 8234 / 8511.
//! Shape: full DRRS lowest on both; every single-mechanism variant is
//! 15–30% worse; Subscale shows the largest fluctuations (synchronization
//! interference).

use bench::{print_series, quick, run};
use drrs_core::{FlexScaler, MechanismConfig};
use simcore::time::secs;
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

fn main() {
    let (scale_at, window_end) = if quick() {
        (secs(60), secs(140))
    } else {
        (secs(300), secs(475))
    };
    let horizon = window_end + secs(60);
    let params = if quick() {
        TwitchParams {
            events: 1_200_000,
            duration_s: 300,
            ..Default::default()
        }
    } else {
        TwitchParams::default()
    };

    println!("=== Fig. 14: DRRS mechanism ablation (Twitch) ===\n");
    let variants = [
        MechanismConfig::drrs(),
        MechanismConfig::dr_only(),
        MechanismConfig::schedule_only(),
        MechanismConfig::subscale_only(),
    ];
    let mut rows = Vec::new();
    for cfg in variants {
        let name = cfg.name;
        let (w, op) = twitch(twitch_engine_config(14), &params);
        let r = run(
            name,
            w,
            op,
            Box::new(FlexScaler::new(cfg)),
            scale_at,
            12,
            horizon,
        );
        let (peak, avg) = r.latency_ms(scale_at, window_end);
        println!(
            "-- {name}: peak {peak:.0} ms, avg {avg:.0} ms, violations {}",
            r.violations()
        );
        print_series(
            "latency",
            &bench::latency_series_ms(&r),
            if quick() { 10 } else { 20 },
            "ms",
        );
        rows.push((name, peak, avg));
        println!();
    }
    println!(
        "During {}-{} s",
        scale_at / 1_000_000,
        window_end / 1_000_000
    );
    println!("---------------------");
    println!("{:<10} {:>10} {:>10}", "", "Peak(ms)", "Avg(ms)");
    for (n, p, a) in &rows {
        println!("{n:<10} {p:>10.0} {a:>10.0}");
    }
    let full = rows[0];
    println!("---------------------");
    for (n, p, a) in rows.iter().skip(1) {
        println!(
            "{n} vs DRRS: peak +{:.0}%, avg +{:.0}%  (paper: DR +30/+22, Schedule +18/+15, Subscale +23/+18)",
            (p / full.1 - 1.0) * 100.0,
            (a / full.2 - 1.0) * 100.0
        );
    }
}
