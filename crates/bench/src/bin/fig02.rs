//! Fig. 2 — the overhead-decomposition motivation experiment:
//! latency over time for **Unbound**, **OTFS** (generalized on-the-fly
//! scaling with fluid migration) and **No Scale** on the Twitch workload
//! under a fixed input rate, scaling during [250, 450] s.
//!
//! The rows are the `fig02/` group of `bench::scenario::registry`, executed
//! through the scenario `Runner` (the No-Scale row is simply a spec without
//! a scale plan).
//!
//! Paper reference values (ms): peak — OTFS 18682, Unbound 4448, No Scale
//! 3893; average — OTFS 4399, Unbound 1583, No Scale 1266. The claim to
//! reproduce: Unbound ≈ No Scale ≪ OTFS, confirming `L = Lp + Ls + Ld + Lo`
//! is dominated by the three mechanism-addressable terms.

use bench::scenario::registry::fig02_plan;
use bench::scenario::Runner;
use bench::{print_series, quick};

fn main() {
    let plan = fig02_plan(quick());
    let (scale_at, end) = (plan.scale_at, plan.end);

    println!("=== Fig. 2: Unbound vs OTFS vs No Scale (Twitch, fixed rate) ===");
    println!(
        "scaling during [{}, {}] s, 8 -> 12 instances\n",
        scale_at / 1_000_000,
        end / 1_000_000
    );

    let reports = Runner::in_process().run(&plan.specs);
    let mut rows = Vec::new();
    for r in &reports {
        let name = r.mechanism.clone();
        let (peak, avg) = r.latency_ms(scale_at, end);
        println!("-- {name}");
        print_series(
            "latency",
            &r.latency_series_ms(),
            if quick() { 10 } else { 20 },
            "ms",
        );
        println!("  order violations: {}", r.violations);
        rows.push((name, peak, avg, r.violations));
        println!();
    }

    println!("During: [{}, {}] s", scale_at / 1_000_000, end / 1_000_000);
    println!("--------------------------------------------");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "", "Peak(ms)", "Average(ms)", "OrderViol"
    );
    for (n, p, a, v) in &rows {
        println!("{n:<10} {p:>12.0} {a:>12.0} {v:>10}");
    }
    println!("--------------------------------------------");
    println!("paper:      peak OTFS 18682 / Unbound 4448 / NoScale 3893");
    println!("            avg  OTFS  4399 / Unbound 1583 / NoScale 1266");
    let otfs = rows.iter().find(|r| r.0 == "OTFS").expect("otfs row");
    let unb = rows.iter().find(|r| r.0 == "Unbound").expect("unbound row");
    let ns = rows
        .iter()
        .find(|r| r.0 == "No Scale")
        .expect("noscale row");
    println!(
        "shape check: OTFS/NoScale avg = {:.2}x (paper 3.47x), Unbound/NoScale avg = {:.2}x (paper 1.25x)",
        otfs.2 / ns.2.max(1.0),
        unb.2 / ns.2.max(1.0)
    );
}
