//! Fig. 2 — the overhead-decomposition motivation experiment:
//! latency over time for **Unbound**, **OTFS** (generalized on-the-fly
//! scaling with fluid migration) and **No Scale** on the Twitch workload
//! under a fixed input rate, scaling during [250, 450] s.
//!
//! Paper reference values (ms): peak — OTFS 18682, Unbound 4448, No Scale
//! 3893; average — OTFS 4399, Unbound 1583, No Scale 1266. The claim to
//! reproduce: Unbound ≈ No Scale ≪ OTFS, confirming `L = Lp + Ls + Ld + Lo`
//! is dominated by the three mechanism-addressable terms.

use baselines::{otfs_fluid, UnboundPlugin};
use bench::{print_series, quick, run};
use simcore::time::secs;
use streamflow::NoScale;
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

fn main() {
    let (scale_at, end) = if quick() {
        (secs(60), secs(140))
    } else {
        (secs(250), secs(450))
    };
    let horizon = end + secs(30);
    let params = if quick() {
        TwitchParams {
            events: 800_000,
            duration_s: 200,
            ..TwitchParams::default()
        }
    } else {
        TwitchParams::default()
    };

    println!("=== Fig. 2: Unbound vs OTFS vs No Scale (Twitch, fixed rate) ===");
    println!(
        "scaling during [{}, {}] s, 8 -> 12 instances\n",
        scale_at / 1_000_000,
        end / 1_000_000
    );

    let mut rows = Vec::new();
    for (name, mk) in [("Unbound", 0usize), ("OTFS", 1), ("No Scale", 2)] {
        let mut cfg = twitch_engine_config(42);
        cfg.check_semantics = true; // order violations are part of this figure's story
        let (w, op) = twitch(cfg, &params);
        let plugin: Box<dyn streamflow::ScalePlugin> = match mk {
            0 => Box::new(UnboundPlugin::new()),
            1 => Box::new(otfs_fluid()),
            _ => Box::new(NoScale),
        };
        let new_par = if mk == 2 { 0 } else { 12 };
        let r = run(name, w, op, plugin, scale_at, new_par, horizon);
        let (peak, avg) = r.latency_ms(scale_at, end);
        println!("-- {name}");
        print_series(
            "latency",
            &bench::latency_series_ms(&r),
            if quick() { 10 } else { 20 },
            "ms",
        );
        println!("  order violations: {}", r.violations());
        rows.push((name, peak, avg, r.violations()));
        println!();
    }

    println!("During: [{}, {}] s", scale_at / 1_000_000, end / 1_000_000);
    println!("--------------------------------------------");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "", "Peak(ms)", "Average(ms)", "OrderViol"
    );
    for (n, p, a, v) in &rows {
        println!("{n:<10} {p:>12.0} {a:>12.0} {v:>10}");
    }
    println!("--------------------------------------------");
    println!("paper:      peak OTFS 18682 / Unbound 4448 / NoScale 3893");
    println!("            avg  OTFS  4399 / Unbound 1583 / NoScale 1266");
    let otfs = rows.iter().find(|r| r.0 == "OTFS").expect("otfs row");
    let unb = rows.iter().find(|r| r.0 == "Unbound").expect("unbound row");
    let ns = rows
        .iter()
        .find(|r| r.0 == "No Scale")
        .expect("noscale row");
    println!(
        "shape check: OTFS/NoScale avg = {:.2}x (paper 3.47x), Unbound/NoScale avg = {:.2}x (paper 1.25x)",
        otfs.2 / ns.2.max(1.0),
        unb.2 / ns.2.max(1.0)
    );
}
