//! Fig. 15 — sensitivity analysis on the cluster configuration: throughput
//! deviation from the input rate across input rates (5K–20K tps), total
//! state sizes (5–30 GB) and Zipf skewness (0.0/0.5/1.0/1.5) for DRRS,
//! Megaphone and Meces.
//!
//! Cluster setup per the paper §V-D: 256 key-groups, the aggregator scales
//! 25 → 30 instances (migrating 229 key-groups), throughput collected over
//! a 10-minute window (latency is unreliable under heavy skew backlogs).
//!
//! The grid's cells are mutually independent simulations, so they run on a
//! thread pool (`bench::parallel_map`, one single-threaded deterministic
//! sim per thread) and are joined back in canonical configuration order —
//! output bytes never depend on which cell finishes first.
//!
//! Paper shape: deviation grows with rate/state/skew; DRRS dominates every
//! cell and is up to 89% better at <20K tps, 30 GB>; Megaphone and Meces
//! show skew anomalies (incomplete migrations / fetch instability).

use baselines::{megaphone, MecesPlugin};
use bench::{parallel_map, quick, run};
use drrs_core::FlexScaler;
use simcore::time::secs;
use streamflow::ScalePlugin;
use workloads::custom::{cluster_engine_config, custom, CustomParams};

/// One grid cell's configuration, in canonical order.
#[derive(Clone, Copy)]
struct Cell {
    mech: &'static str,
    skew: f64,
    gb: u64,
    tps: f64,
}

/// One grid cell's results: throughput deviation and the fraction of the
/// planned migration that actually settled.
struct CellResult {
    deviation: f64,
    settled_pct: usize,
}

fn run_cell(cell: Cell, scale_at: u64, measure: u64, horizon: u64) -> CellResult {
    let p = CustomParams {
        tps: cell.tps,
        total_state_bytes: cell.gb * 1_000_000_000,
        skew: cell.skew,
        ..Default::default()
    };
    let (w, op) = custom(cluster_engine_config(15), &p);
    let plugin: Box<dyn ScalePlugin> = match cell.mech {
        "DRRS" => Box::new(FlexScaler::drrs()),
        "Megaphone" => Box::new(megaphone(4)),
        _ => Box::new(MecesPlugin::new()),
    };
    let r = run(cell.mech, w, op, plugin, scale_at, 30, horizon);
    let lo = scale_at / 1_000_000;
    let hi = (scale_at + measure) / 1_000_000;
    let measured = r.sim.world.metrics.mean_throughput(lo, hi);
    let deviation = (cell.tps - measured).max(0.0);
    // The paper's Megaphone anomaly: low deviation can mean the migration
    // never finished in the window — report the completed fraction
    // alongside.
    let planned = r
        .sim
        .world
        .scale
        .plan
        .as_ref()
        .map(|p| p.moves.len())
        .unwrap_or(0);
    let settled = r
        .sim
        .world
        .scale
        .plan
        .as_ref()
        .map(|plan| {
            plan.moves
                .iter()
                .filter(|m| r.sim.world.insts[m.to.0 as usize].state.holds_group(m.kg))
                .count()
        })
        .unwrap_or(0);
    CellResult {
        deviation,
        settled_pct: (settled * 100).checked_div(planned).unwrap_or(100),
    }
}

fn main() {
    let (rates, sizes_gb, skews): (Vec<f64>, Vec<u64>, Vec<f64>) = if quick() {
        (vec![5_000.0, 20_000.0], vec![5, 30], vec![0.0, 1.5])
    } else {
        (
            vec![5_000.0, 10_000.0, 15_000.0, 20_000.0],
            vec![5, 10, 20, 30],
            vec![0.0, 0.5, 1.0, 1.5],
        )
    };
    let (scale_at, measure) = if quick() {
        (secs(40), secs(120))
    } else {
        (secs(120), secs(600)) // 10-minute collection window
    };
    let horizon = scale_at + measure + secs(10);
    let mechs = ["DRRS", "Megaphone", "Meces"];

    // Canonical cell order: mech, then skew, then GB, then tps — exactly
    // the print order below, so results are joined by a running index.
    let mut cells: Vec<Cell> = Vec::new();
    for mech in mechs {
        for &skew in &skews {
            for &gb in &sizes_gb {
                for &tps in &rates {
                    cells.push(Cell {
                        mech,
                        skew,
                        gb,
                        tps,
                    });
                }
            }
        }
    }
    let results = parallel_map(cells, |cell| run_cell(cell, scale_at, measure, horizon));

    println!("=== Fig. 15: throughput deviation (input rate - measured, rec/s) ===");
    println!(
        "25 -> 30 instances, 256 key-groups (229 migrated), {}s window\n",
        measure / 1_000_000
    );

    let mut idx = 0;
    for mech in mechs {
        println!("--- {mech} ---");
        for &skew in &skews {
            println!("Skewness {skew}:");
            print!("{:>8}", "GB\\tps");
            for r in &rates {
                print!(" {:>12}", *r as u64);
            }
            println!("   (deviation rec/s | migration completed %)");
            for &gb in &sizes_gb {
                print!("{gb:>8}");
                for _ in &rates {
                    let r = &results[idx];
                    idx += 1;
                    print!(" {:>7.0}/{:>3}%", r.deviation, r.settled_pct);
                }
                println!();
            }
        }
        println!();
    }
    println!("paper shape: purple (low deviation) everywhere for DRRS; degradation grows");
    println!("with rate/state/skew; baselines show anomalies at high skew.");
}
