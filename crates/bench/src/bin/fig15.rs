//! Fig. 15 — sensitivity analysis on the cluster configuration: throughput
//! deviation from the input rate across input rates (5K–20K tps), total
//! state sizes (5–30 GB) and Zipf skewness (0.0/0.5/1.0/1.5) for DRRS,
//! Megaphone and Meces.
//!
//! Cluster setup per the paper §V-D: 256 key-groups, the aggregator scales
//! 25 → 30 instances (migrating 229 key-groups), throughput collected over
//! a 10-minute window (latency is unreliable under heavy skew backlogs).
//!
//! The grid is `bench::scenario::registry::fig15_plan` — every cell a named
//! `ScenarioSpec` — and runs through the scenario `Runner`:
//!
//! * `fig15` — run every cell in-process (thread pool, canonical-order
//!   join) and render the figure;
//! * `fig15 --shard K/N --emit FILE` — run only grid indices ≡ K mod N and
//!   write their `RunReport`s as JSON (cluster sharding: each process takes
//!   one stripe);
//! * `fig15 --merge FILE...` — recombine shard files, verify they cover the
//!   grid exactly once, and render **byte-identically** to the unsharded
//!   run (reports round-trip losslessly; CI enforces the equality).
//!
//! Paper shape: deviation grows with rate/state/skew; DRRS dominates every
//! cell and is up to 89% better at <20K tps, 30 GB>; Megaphone and Meces
//! show skew anomalies (incomplete migrations / fetch instability).

use bench::quick;
use bench::scenario::registry::{fig15_plan, Fig15Plan};
use bench::scenario::{runner, RunReport, Runner, SweepMode};

/// Render the full figure from canonically ordered cell reports.
fn render(plan: &Fig15Plan, results: &[RunReport]) {
    println!("=== Fig. 15: throughput deviation (input rate - measured, rec/s) ===");
    println!(
        "25 -> 30 instances, 256 key-groups (229 migrated), {}s window\n",
        plan.measure / 1_000_000
    );

    let lo = plan.scale_at / 1_000_000;
    let hi = (plan.scale_at + plan.measure) / 1_000_000;
    let mut idx = 0;
    for mech in &plan.mechs {
        println!("--- {mech} ---");
        for &skew in &plan.skews {
            println!("Skewness {skew}:");
            print!("{:>8}", "GB\\tps");
            for r in &plan.rates {
                print!(" {:>12}", *r as u64);
            }
            println!("   (deviation rec/s | migration completed %)");
            for &gb in &plan.sizes_gb {
                print!("{gb:>8}");
                for &tps in &plan.rates {
                    let r = &results[idx];
                    idx += 1;
                    let deviation = (tps - r.mean_throughput(lo, hi)).max(0.0);
                    // The paper's Megaphone anomaly: low deviation can mean
                    // the migration never finished in the window — report
                    // the completed fraction alongside.
                    print!(" {:>7.0}/{:>3}%", deviation, r.settled_pct());
                }
                println!();
            }
        }
        println!();
    }
    println!("paper shape: purple (low deviation) everywhere for DRRS; degradation grows");
    println!("with rate/state/skew; baselines show anomalies at high skew.");
}

fn main() {
    let plan = fig15_plan(quick());
    match runner::sweep_mode_from_args("fig15") {
        SweepMode::Full => {
            let results = Runner::in_process().run(&plan.specs);
            render(&plan, &results);
        }
        SweepMode::Shard { shard, emit } => {
            let runs = Runner::sharded(shard).run_indexed(&plan.specs);
            runner::write_shard(emit.as_ref(), "fig15", plan.specs.len(), shard, &runs)
                .unwrap_or_else(|e| panic!("writing {emit}: {e}"));
            eprintln!(
                "fig15: shard {} ran {} of {} cells -> {emit}",
                shard.label(),
                runs.len(),
                plan.specs.len()
            );
        }
        SweepMode::Merge { inputs } => {
            let results = runner::merge_shards("fig15", &plan.specs, &inputs)
                .unwrap_or_else(|e| panic!("merge failed: {e}"));
            render(&plan, &results);
        }
    }
}
