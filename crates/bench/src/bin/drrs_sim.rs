//! `drrs-sim` — a small CLI for running any workload × mechanism × scale
//! combination and printing a full report. The tool a downstream user
//! reaches for before wiring the library into their own harness.
//!
//! ```bash
//! cargo run --release -p bench --bin drrs_sim -- \
//!     --workload q7 --mechanism drrs --rate 10000 \
//!     --from 8 --to 12 --scale-at 60 --horizon 180 --seed 1
//! ```

use baselines::{
    megaphone, otfs_all_at_once, otfs_fluid, MecesPlugin, StopRestartPlugin, UnboundPlugin,
};
use drrs_core::{FlexScaler, MechanismConfig};
use simcore::time::secs;
use streamflow::world::Sim;
use streamflow::{NoScale, OpId, ScalePlugin, World};
use workloads::custom::{cluster_engine_config, custom, CustomParams};
use workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};

struct Args {
    workload: String,
    mechanism: String,
    rate: f64,
    from: usize,
    to: usize,
    scale_at: u64,
    horizon: u64,
    seed: u64,
    skew: f64,
    state_gb: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        workload: "q7".into(),
        mechanism: "drrs".into(),
        rate: 10_000.0,
        from: 8,
        to: 12,
        scale_at: 60,
        horizon: 180,
        seed: 1,
        skew: 0.0,
        state_gb: 5,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = argv.get(i + 1).cloned().unwrap_or_default();
        match key {
            "--workload" => a.workload = val,
            "--mechanism" => a.mechanism = val,
            "--rate" => a.rate = val.parse().expect("--rate takes a number"),
            "--from" => a.from = val.parse().expect("--from takes a count"),
            "--to" => a.to = val.parse().expect("--to takes a count"),
            "--scale-at" => a.scale_at = val.parse().expect("--scale-at takes seconds"),
            "--horizon" => a.horizon = val.parse().expect("--horizon takes seconds"),
            "--seed" => a.seed = val.parse().expect("--seed takes a number"),
            "--skew" => a.skew = val.parse().expect("--skew takes a float"),
            "--state-gb" => a.state_gb = val.parse().expect("--state-gb takes GB"),
            "--help" | "-h" => {
                println!(
                    "usage: drrs_sim [--workload q7|q8|twitch|custom] \
                     [--mechanism drrs|dr|schedule|subscale|otfs|otfs-aao|megaphone|meces|unbound|stop-restart|none] \
                     [--rate N] [--from N] [--to N] [--scale-at S] [--horizon S] \
                     [--seed N] [--skew F] [--state-gb N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
        i += 2;
    }
    a
}

fn build_workload(a: &Args) -> (World, OpId) {
    match a.workload.as_str() {
        "q7" => {
            let mut cfg = nexmark_engine_config(a.seed);
            cfg.check_semantics = true;
            q7(
                cfg,
                &Q7Params {
                    tps: a.rate,
                    parallelism: a.from,
                    ..Default::default()
                },
            )
        }
        "q8" => {
            let mut cfg = nexmark_engine_config(a.seed);
            cfg.check_semantics = true;
            q8(
                cfg,
                &Q8Params {
                    tps: a.rate,
                    parallelism: a.from,
                    ..Default::default()
                },
            )
        }
        "twitch" => {
            let mut cfg = twitch_engine_config(a.seed);
            cfg.check_semantics = true;
            twitch(
                cfg,
                &TwitchParams {
                    events: (a.rate * a.horizon as f64) as u64,
                    duration_s: a.horizon,
                    parallelism: a.from,
                    batch: 2,
                },
            )
        }
        "custom" => {
            let mut cfg = cluster_engine_config(a.seed);
            cfg.check_semantics = true;
            custom(
                cfg,
                &CustomParams {
                    tps: a.rate,
                    total_state_bytes: a.state_gb * 1_000_000_000,
                    skew: a.skew,
                    parallelism: a.from,
                    ..Default::default()
                },
            )
        }
        other => panic!("unknown workload {other} (q7|q8|twitch|custom)"),
    }
}

fn build_mechanism(name: &str) -> Box<dyn ScalePlugin> {
    match name {
        "drrs" => Box::new(FlexScaler::drrs()),
        "dr" => Box::new(FlexScaler::new(MechanismConfig::dr_only())),
        "schedule" => Box::new(FlexScaler::new(MechanismConfig::schedule_only())),
        "subscale" => Box::new(FlexScaler::new(MechanismConfig::subscale_only())),
        "otfs" => Box::new(otfs_fluid()),
        "otfs-aao" => Box::new(otfs_all_at_once()),
        "megaphone" => Box::new(megaphone(1)),
        "meces" => Box::new(MecesPlugin::new()),
        "unbound" => Box::new(UnboundPlugin::new()),
        "stop-restart" => Box::new(StopRestartPlugin::new()),
        "none" => Box::new(NoScale),
        other => panic!("unknown mechanism {other} (try --help)"),
    }
}

fn main() {
    let a = parse_args();
    let (mut world, op) = build_workload(&a);
    if a.mechanism != "none" && a.to != a.from {
        world.schedule_scale(secs(a.scale_at), op, a.to);
    }
    let mut sim = Sim::new(world, build_mechanism(&a.mechanism));
    sim.run_until(secs(a.horizon));

    let w = &sim.world;
    let sm = &w.scale.metrics;
    println!("== drrs-sim report ==");
    println!(
        "workload {} · mechanism {} · {} -> {} instances at {} s · seed {}",
        a.workload,
        sim.plugin.name(),
        a.from,
        a.to,
        a.scale_at,
        a.seed
    );
    println!();
    println!("sink records            : {}", w.metrics.sink_records);
    let (peak, avg) = w
        .metrics
        .latency_stats_ms(secs(a.scale_at), secs(a.horizon));
    println!("latency (scaling window): peak {peak:.1} ms, avg {avg:.1} ms");
    for q in [0.5, 0.9, 0.99] {
        if let Some(v) = w.metrics.latency_quantile_ms(q) {
            println!("latency p{:<4}           : {v:.1} ms", (q * 100.0) as u32);
        }
    }
    if a.mechanism != "none" {
        println!(
            "migration               : {} key-groups, {:.1} MB, done at {:?} s",
            w.scale.plan.as_ref().map(|p| p.moves.len()).unwrap_or(0),
            sm.bytes_transferred as f64 / 1e6,
            sm.migration_done.map(|t| t / 1_000_000)
        );
        println!(
            "propagation delay  (Lp) : {:.1} ms",
            sm.cumulative_propagation_delay() as f64 / 1e3
        );
        println!(
            "dependency overhead(Ld) : {:.1} ms",
            sm.avg_dependency_overhead() / 1e3
        );
        let susp: u64 = w.ops[op.0 as usize]
            .instances
            .iter()
            .map(|&i| w.insts[i.0 as usize].suspension_as_of(w.now()))
            .sum();
        println!("suspension         (Ls) : {:.1} ms", susp as f64 / 1e3);
        let (churn_avg, churn_max) = sm.migration_churn();
        if churn_max > 1 {
            println!("migration churn         : avg {churn_avg:.2}x, max {churn_max}x");
        }
    }
    println!("order violations        : {}", w.semantics.violations());
}
