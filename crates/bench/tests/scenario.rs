//! Integration tests for the scenario subsystem: registry integrity, the
//! shard partition, shard-file round-trips, and merged-vs-sequential
//! equality — the contracts the process-level sweep sharder stands on.

use bench::scenario::{registry, runner, Runner, ScenarioSpec, Shard};
use simcore::time::secs;

#[test]
fn registry_names_are_unique() {
    for quick in [false, true] {
        let specs = registry::all(quick);
        let mut seen = std::collections::HashSet::new();
        for s in &specs {
            assert!(
                seen.insert(s.name.clone()),
                "duplicate registry name (quick={quick}): {}",
                s.name
            );
        }
        let floor = if quick { 50 } else { 200 };
        assert!(
            specs.len() > floor,
            "registry suspiciously small (quick={quick}): {} specs",
            specs.len()
        );
    }
}

#[test]
fn registry_covers_every_experiment_group() {
    let specs = registry::all(false);
    for group in [
        "perf/",
        "fig02/",
        "fig10_11/",
        "fig12_13/",
        "fig14/",
        "fig15/",
        "ablation/",
    ] {
        assert!(
            specs.iter().any(|s| s.name.starts_with(group)),
            "no specs registered under {group}"
        );
    }
}

#[test]
fn shard_union_is_the_full_grid_with_no_overlap() {
    // Over the real fig15 grid: for several shard counts, the union of
    // shards 0/N..N-1/N must select every cell exactly once.
    let grid = registry::fig15_plan(false).specs;
    for n in [1usize, 2, 3, 4, 7, 16] {
        let mut owned = vec![0u32; grid.len()];
        for k in 0..n {
            let shard = Shard { index: k, count: n };
            for (i, o) in owned.iter_mut().enumerate() {
                if shard.owns(i) {
                    *o += 1;
                }
            }
        }
        assert!(
            owned.iter().all(|&o| o == 1),
            "N={n}: shard union does not cover the grid exactly once"
        );
    }
}

/// A small, fast grid for end-to-end runner tests: real registry specs
/// with shortened horizons.
fn tiny_grid() -> Vec<ScenarioSpec> {
    registry::perf_scenarios(true)
        .into_iter()
        .map(|s| s.with_horizon(secs(2)))
        .collect()
}

#[test]
fn merged_sharded_run_equals_the_sequential_run() {
    let grid = tiny_grid();
    let sequential = Runner::in_process().run(&grid);

    let dir = std::env::temp_dir().join(format!("drrs_shard_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let mut paths = Vec::new();
    for k in 0..2 {
        let shard = Shard { index: k, count: 2 };
        let runs = Runner::sharded(shard).run_indexed(&grid);
        // Sharded runs must be strict subsets, in canonical order.
        assert!(runs.iter().all(|(i, _)| shard.owns(*i)));
        let path = dir.join(format!("shard_{k}.json"));
        runner::write_shard(&path, "test", grid.len(), shard, &runs).expect("write shard");
        paths.push(path);
    }
    let merged = runner::merge_shards("test", &grid, &paths).expect("merge");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(merged.len(), sequential.len());
    for (m, s) in merged.iter().zip(&sequential) {
        // Everything except wall-clock timing must be identical — the
        // shard boundary is not allowed to perturb a single bit.
        let mut m = m.clone();
        let mut s = s.clone();
        m.wall_secs = 0.0;
        s.wall_secs = 0.0;
        assert_eq!(
            m, s,
            "scenario {} drifted across the shard boundary",
            m.scenario
        );
    }
}

#[test]
fn merge_rejects_overlap_gaps_and_grid_mismatch() {
    let grid = tiny_grid();
    let dir = std::env::temp_dir().join(format!("drrs_merge_reject_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let shard0 = Shard { index: 0, count: 2 };
    let runs0 = Runner::sharded(shard0).run_indexed(&grid);
    let p0 = dir.join("s0.json");
    runner::write_shard(&p0, "test", grid.len(), shard0, &runs0).expect("write");

    // Gap: shard 1 missing.
    let err = runner::merge_shards("test", &grid, &[&p0]).unwrap_err();
    assert!(err.contains("missing"), "{err}");

    // Overlap: shard 0 supplied twice.
    let err = runner::merge_shards("test", &grid, &[&p0, &p0]).unwrap_err();
    assert!(err.contains("more than one shard"), "{err}");

    // Wrong sweep name.
    let err = runner::merge_shards("other", &grid, &[&p0]).unwrap_err();
    assert!(err.contains("does not match"), "{err}");

    // Wrong grid (e.g. quick shard merged into a full-grid run).
    let bigger: Vec<ScenarioSpec> = registry::perf_scenarios(false);
    let err = runner::merge_shards("test", &bigger[..4], &[&p0]).unwrap_err();
    assert!(err.contains("grid length"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_report_round_trips_through_shard_files() {
    // A report harvested from a real run (with a scale, so the migration
    // fields are populated) must survive write_shard -> read_shard
    // bit-exactly, wall clock included.
    let spec = registry::find("perf/drrs_rescale_4_to_6", true)
        .expect("registered")
        .with_horizon(secs(3));
    let report = spec.run();
    assert!(report.planned_moves > 0, "scale produced no plan");

    let dir = std::env::temp_dir().join(format!("drrs_report_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let path = dir.join("one.json");
    let shard = Shard { index: 0, count: 1 };
    runner::write_shard(&path, "rt", 1, shard, &[(0, report.clone())]).expect("write");
    let back = runner::read_shard(&path).expect("read");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(back.runs.len(), 1);
    assert_eq!(back.runs[0].0, 0);
    assert_eq!(
        back.runs[0].1, report,
        "shard round-trip perturbed the report"
    );
}
