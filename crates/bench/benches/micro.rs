//! Criterion micro-benchmarks for the engine's hot paths: the event queue,
//! key-group routing, the state backend's migration primitives, sliding-
//! window panes, the Zipf sampler, and a small end-to-end simulation
//! throughput benchmark (events/second of simulated pipeline).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use simcore::time::secs;
use simcore::{DetRng, EventQueue, FutureEventList, SchedulerBackend, Zipf};
use streamflow::ids::{key_group_of, InstId, KeyGroup};
use streamflow::keygroup::{uniform_repartition, RoutingTable};
use streamflow::state::{StateBackend, StateValue};
use streamflow::window::{Agg, PaneSet};
use streamflow::world::tests_support::tiny_job;
use streamflow::world::Sim;
use streamflow::{EngineConfig, NoScale};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    // Pinned to the heap backend: this series predates the pluggable
    // future-event list and stays on the backend it has always measured,
    // so recorded numbers remain an apples-to-apples trend. The
    // scheduler_backends group below measures both backends explicitly.
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> =
                FutureEventList::with_backend(SchedulerBackend::BinaryHeap, 0);
            for i in 0..10_000u64 {
                q.schedule(i % 97, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// A delay from the simulator's short-horizon-heavy mix: mostly sub-ms
/// deliveries/quanta, some 10 ms-scale ticks, a few far-future timers
/// (checkpoints, deploys) — the distribution the calendar queue is tuned
/// for.
#[inline]
fn sim_like_delay(rng: &mut DetRng) -> u64 {
    match rng.below(100) {
        0..=79 => 20 + rng.below(1_000),      // deliveries, service quanta
        80..=97 => 5_000 + rng.below(20_000), // ticks, markers, samples
        _ => 500_000 + rng.below(3_000_000),  // checkpoints, deploy delays
    }
}

fn bench_scheduler_backends(c: &mut Criterion) {
    // Steady-state churn at a fixed pending population: pop one, schedule
    // one. This is the future-event list's life inside the dispatch loop —
    // the population stays put while time advances, which is where the
    // heap pays O(log n) per event and the calendar queue aims at O(1).
    const CHURN: u64 = 10_000;
    let mut g = c.benchmark_group("scheduler_backends");
    g.throughput(Throughput::Elements(CHURN));
    for backend in [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar] {
        for pending in [1_000usize, 100_000] {
            let name = format!("churn_{}_{}_pending", backend.name(), pending);
            g.bench_function(&name, |b| {
                b.iter_with_setup(
                    || {
                        let mut q: FutureEventList<u64> =
                            FutureEventList::with_backend(backend, pending);
                        let mut rng = DetRng::seed(7);
                        for i in 0..pending as u64 {
                            q.schedule(sim_like_delay(&mut rng), i);
                        }
                        (q, rng)
                    },
                    |(mut q, mut rng)| {
                        let mut acc = 0u64;
                        for i in 0..CHURN {
                            let (_, e) = q.pop().expect("pending events");
                            acc = acc.wrapping_add(e);
                            q.schedule(sim_like_delay(&mut rng), i);
                        }
                        black_box((acc, q.len()))
                    },
                )
            });
        }
    }
    g.finish();
}

fn bench_batch_drain(c: &mut Criterion) {
    // Massed-instant churn: the engine's pending set is bursty — hundreds
    // of deliveries at a handful of instants, then a lull — so the batch
    // drain's claim is amortizing the cursor walk and per-pop bookkeeping
    // over a whole same-instant run. Compare popping such runs one event
    // at a time against `pop_run_at_most`, at steady pending populations
    // of 1k and 100k, on both backends.
    const CHURN: u64 = 10_000;
    /// Events per massed instant (≈ one 10 ms source tick's deliveries in
    /// the 50K rec/s scenarios).
    const RUN: u64 = 100;
    let mut g = c.benchmark_group("batch_drain");
    g.throughput(Throughput::Elements(CHURN));
    for backend in [SchedulerBackend::BinaryHeap, SchedulerBackend::Calendar] {
        for pending in [1_000usize, 100_000] {
            let setup = move || {
                let mut q: FutureEventList<u64> = FutureEventList::with_backend(backend, pending);
                let mut rng = DetRng::seed(11);
                // Massed mix: bursts of RUN events at shared instants,
                // instants a few hundred µs apart, plus a sprinkle of
                // stragglers and far-future timers.
                let mut at = 0u64;
                let mut i = 0u64;
                while (i as usize) < pending {
                    at += 100 + rng.below(400);
                    let n = match rng.below(10) {
                        0 => 1,       // straggler
                        1 => RUN / 4, // partial burst
                        _ => RUN,     // full massed instant
                    };
                    for _ in 0..n {
                        q.schedule_at(at, i);
                        i += 1;
                    }
                }
                // The drain buffer is setup state, like the driver's
                // persistent scratch buffer — its warm-up allocation must
                // not be charged to the timed batch loop.
                (q, Vec::with_capacity(RUN as usize))
            };
            let name = |mode: &str| format!("{mode}_{}_{}_pending", backend.name(), pending);
            // Reschedule offset derived from the instant, not an RNG: both
            // loops must evolve the *same* schedule (a per-pop RNG draw
            // would fragment massed runs on the single-pop side only, and
            // the A/B would measure workload divergence, not dispatch
            // cost). Same offset for every event of an instant keeps each
            // run massed at its new instant.
            let re_offset = |at: u64| 50_000 + (at % 3) * 400;
            g.bench_function(&name("single_pop"), |b| {
                b.iter_with_setup(setup, |(mut q, _buf)| {
                    let mut acc = 0u64;
                    let mut popped = 0u64;
                    while popped < CHURN {
                        let (at, e) = q.pop().expect("pending events");
                        acc = acc.wrapping_add(e);
                        popped += 1;
                        // Keep the population and the massing steady:
                        // reschedule into a future massed instant.
                        q.schedule_at(at + re_offset(at), e);
                    }
                    black_box((acc, q.len()))
                })
            });
            g.bench_function(&name("batch"), |b| {
                b.iter_with_setup(setup, |(mut q, mut buf)| {
                    let mut acc = 0u64;
                    let mut popped = 0u64;
                    // The final run may overshoot CHURN by up to RUN-1
                    // pops (a run drains whole); both arms are credited
                    // CHURN elements, so the ≤1% overshoot biases
                    // *against* batch — the reported gain is conservative.
                    while popped < CHURN {
                        let at = q
                            .pop_run_at_most(u64::MAX, &mut buf)
                            .expect("pending events");
                        popped += buf.len() as u64;
                        let re_at = at + re_offset(at);
                        for &e in &buf {
                            acc = acc.wrapping_add(e);
                            q.schedule_at(re_at, e);
                        }
                    }
                    black_box((acc, q.len()))
                })
            });
        }
    }
    g.finish();
}

fn bench_region_sync(c: &mut Criterion) {
    // The region-partitioned scheduler's overheads in isolation, next to
    // `batch_drain` (its single-queue counterpart):
    //
    // * `spsc_ring_*` — the cross-region transport: cost of moving 8-byte
    //   record handles through the bounded SPSC ring in burst-sized chunks
    //   (the shape a region drain produces).
    // * `churn_rK_*` — steady-state pop/schedule churn on the region
    //   scheduler at 1 and 2 regions, at 1k and 100k pending events. The
    //   r2 cells pay the full conservative-sync accounting per pop (region
    //   clocks, safe-until bounds from the lookahead matrix, min-rule
    //   grants, null-message counting), so r2-minus-r1 at equal pending is
    //   the null-message/synchronization overhead per event.
    const CHURN: u64 = 10_000;
    let mut g = c.benchmark_group("region_sync");
    g.throughput(Throughput::Elements(CHURN));
    for burst in [64usize, 512] {
        g.bench_function(&format!("spsc_ring_burst_{burst}"), |b| {
            b.iter_with_setup(
                || simcore::spsc::ring::<u64>(burst),
                |(mut tx, mut rx)| {
                    let mut acc = 0u64;
                    let mut sent = 0u64;
                    while sent < CHURN {
                        for _ in 0..burst as u64 {
                            tx.push(sent).expect("ring sized to burst");
                            sent += 1;
                        }
                        while let Some(v) = rx.pop() {
                            acc = acc.wrapping_add(v);
                        }
                    }
                    black_box(acc)
                },
            )
        });
    }
    for regions in [1usize, 2] {
        for pending in [1_000usize, 100_000] {
            let name = format!("churn_r{regions}_{pending}_pending");
            g.bench_function(&name, |b| {
                b.iter_with_setup(
                    || {
                        let mut q: FutureEventList<u64> = FutureEventList::with_backend_regions(
                            SchedulerBackend::Calendar,
                            pending,
                            regions,
                        );
                        if regions == 2 {
                            // A cut with one 500 µs data channel each way
                            // of the partition (finite lookahead: the
                            // accounting must actually bound progress and
                            // mint null-message grants, not short-circuit
                            // on SimTime::MAX).
                            q.set_region_lookahead(&[0, 500, 500, 0]);
                        }
                        let mut rng = DetRng::seed(7);
                        for i in 0..pending as u64 {
                            let r = (i as usize) % regions;
                            q.schedule_tagged(r, sim_like_delay(&mut rng), i);
                        }
                        (q, rng)
                    },
                    |(mut q, mut rng)| {
                        let mut acc = 0u64;
                        for i in 0..CHURN {
                            let (_, e) = q.pop().expect("pending events");
                            acc = acc.wrapping_add(e);
                            let r = (i as usize) % regions;
                            q.schedule_tagged(r, sim_like_delay(&mut rng), i);
                        }
                        black_box((acc, q.len(), q.region_sync_stats().null_msgs))
                    },
                )
            });
        }
    }
    g.finish();
}

fn bench_parallel_epochs(c: &mut Criterion) {
    // The thread-per-region executor's fixed costs in isolation, next to
    // `region_sync` (the sequential conservative-sync accounting):
    //
    // * `epoch_barrier_kK` — the two-barrier epoch protocol at K worker
    //   threads: publish the region clock, barrier, compute the global
    //   minimum, barrier. This is the floor every epoch pays even when no
    //   region dispatches anything, so epochs/sec here bounds how finely
    //   lookahead can slice the horizon before synchronization dominates.
    //   (On a host with fewer cores than K the barriers context-switch,
    //   which is the honest cost on that host.)
    // * `ring_drain_kK_N` — consumer-side drain of a full K×(K-1) cross-cut
    //   mailbox holding N 8-byte handles, the shape one epoch's "drain
    //   rings" step sees after a bursty epoch. Rings are sized to hold
    //   their share so this isolates the SPSC pop path (the executor's
    //   overflow spill is measured implicitly by perf_report, not here).
    use simcore::spsc::EpochBarrier;
    use std::sync::atomic::{AtomicU64, Ordering};

    const EPOCHS: u64 = 1_000;
    let mut g = c.benchmark_group("parallel_epochs");
    for k in [2usize, 4] {
        g.throughput(Throughput::Elements(EPOCHS));
        g.bench_function(&format!("epoch_barrier_k{k}"), |b| {
            b.iter(|| {
                let barrier = EpochBarrier::new(k);
                let next: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
                std::thread::scope(|s| {
                    for r in 0..k {
                        let barrier = &barrier;
                        let next = &next;
                        s.spawn(move || {
                            let mut acc = 0u64;
                            for e in 0..EPOCHS {
                                next[r].store(e, Ordering::SeqCst);
                                barrier.wait();
                                let m = next
                                    .iter()
                                    .map(|n| n.load(Ordering::SeqCst))
                                    .min()
                                    .expect("k >= 1");
                                acc = acc.wrapping_add(m);
                                barrier.wait();
                            }
                            black_box(acc);
                        });
                    }
                });
            })
        });
    }
    for k in [2usize, 4] {
        let rings = k * (k - 1);
        for msgs in [1_000usize, 100_000] {
            g.throughput(Throughput::Elements(msgs as u64));
            g.bench_function(&format!("ring_drain_k{k}_{msgs}_msgs"), |b| {
                b.iter_with_setup(
                    || {
                        let per_ring = msgs.div_ceil(rings);
                        let mut mailbox = Vec::with_capacity(rings);
                        let mut sent = 0usize;
                        for _ in 0..rings {
                            let (mut tx, rx) = simcore::spsc::ring::<u64>(per_ring);
                            for _ in 0..per_ring.min(msgs - sent) {
                                tx.push(sent as u64).expect("ring sized to share");
                                sent += 1;
                            }
                            mailbox.push((tx, rx));
                        }
                        mailbox
                    },
                    |mut mailbox| {
                        let mut acc = 0u64;
                        for (_tx, rx) in &mut mailbox {
                            while let Some(v) = rx.pop() {
                                acc = acc.wrapping_add(v);
                            }
                        }
                        black_box(acc)
                    },
                )
            });
        }
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let targets: Vec<InstId> = (0..12).map(InstId).collect();
    let table = RoutingTable::uniform(128, &targets);
    let mut g = c.benchmark_group("routing");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("key_to_instance_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in 0..1_000u64 {
                let kg = key_group_of(black_box(k), 128);
                acc = acc.wrapping_add(table.route(kg).0);
            }
            black_box(acc)
        })
    });
    g.bench_function("uniform_repartition_8_to_12", |b| {
        let old = RoutingTable::uniform(128, &(0..8).map(InstId).collect::<Vec<_>>());
        let new: Vec<InstId> = (0..12).map(InstId).collect();
        b.iter(|| black_box(uniform_repartition(&old, &new)))
    });
    g.finish();
}

fn bench_state_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_backend");
    g.bench_function("update_1k_keys", |b| {
        let mut backend = StateBackend::new(128, 1);
        for kg in 0..128 {
            backend.ensure_group(KeyGroup(kg));
        }
        b.iter(|| {
            for k in 0..1_000u64 {
                let kg = key_group_of(k, 128);
                if let StateValue::Count(c) = backend.entry_or(kg, k, || StateValue::Count(0)) {
                    *c += 1;
                }
            }
        })
    });
    g.bench_function("extract_install_128_groups", |b| {
        b.iter_with_setup(
            || {
                let mut backend = StateBackend::new(128, 1);
                for kg in 0..128 {
                    backend.ensure_group(KeyGroup(kg));
                }
                for k in 0..10_000u64 {
                    let kg = key_group_of(k, 128);
                    backend.entry_or(kg, k, || StateValue::Count(1));
                }
                backend
            },
            |mut backend| {
                let mut dst = StateBackend::new(128, 1);
                for kg in 0..128 {
                    for u in backend.extract_group(KeyGroup(kg)) {
                        dst.install(u, true);
                    }
                }
                black_box(dst.total_keys())
            },
        )
    });
    g.finish();
}

fn bench_panes(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_panes");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("add_and_fire_sliding", |b| {
        b.iter(|| {
            let mut p = PaneSet::default();
            for t in 0..1_000u64 {
                p.add(t * 500, (t % 97) as i64, 1, 500_000, Agg::Max);
            }
            black_box(p.window_agg(500_000, 10_000_000, Agg::Max))
        })
    });
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(200_000, 1.0);
    let mut rng = DetRng::seed(1);
    let mut g = c.benchmark_group("zipf");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("sample_200k_universe", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("pipeline_5s_at_10ktps", |b| {
        b.iter(|| {
            let (w, _) = tiny_job(EngineConfig::test(), 10_000.0, 256, 4);
            let mut sim = Sim::new(w, Box::new(NoScale));
            sim.run_until(secs(5));
            black_box(sim.world.metrics.sink_records)
        })
    });
    g.bench_function("drrs_rescale_5s", |b| {
        b.iter(|| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 10_000.0, 256, 4);
            w.schedule_scale(secs(1), agg, 6);
            let mut sim = Sim::new(w, Box::new(drrs_core::FlexScaler::drrs()));
            sim.run_until(secs(5));
            black_box(sim.world.scale.metrics.migration_done)
        })
    });
    // Scaling-in-progress paths: these spend most of the run with a plan
    // active, exercising admission filters, re-routed records, migration
    // links and the retirement sweep — the paths the dispatch-loop
    // optimisations must not regress.
    g.bench_function("megaphone_rescale_5s", |b| {
        b.iter(|| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 10_000.0, 256, 4);
            w.schedule_scale(secs(1), agg, 6);
            let mut sim = Sim::new(w, Box::new(baselines::megaphone(4)));
            sim.run_until(secs(5));
            black_box(sim.world.scale.metrics.migration_done)
        })
    });
    g.bench_function("drrs_scale_in_5s", |b| {
        b.iter(|| {
            let (mut w, agg) = tiny_job(EngineConfig::test(), 10_000.0, 256, 6);
            w.schedule_scale(secs(1), agg, 3);
            let mut sim = Sim::new(w, Box::new(drrs_core::FlexScaler::drrs()));
            sim.run_until(secs(5));
            black_box((
                sim.world.scale.metrics.migration_done,
                sim.world.metrics.sink_records,
            ))
        })
    });
    g.finish();
}

fn bench_dense_backend_hot_access(c: &mut Criterion) {
    // The per-record state path in isolation: key-group lookup + dense
    // slot indexing + FxHash entry access, mirroring what `apply_record`
    // does per data record.
    let mut g = c.benchmark_group("state_backend");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hot_path_update_10k", |b| {
        let mut backend = StateBackend::new(128, 1);
        for kg in 0..128 {
            backend.ensure_group(KeyGroup(kg));
        }
        // Realistic key universe: many more keys than groups.
        b.iter(|| {
            for k in 0..10_000u64 {
                let kg = key_group_of(k, 128);
                if let StateValue::Count(c) = backend.entry_or(kg, k, || StateValue::Count(0)) {
                    *c += 1;
                }
                backend.add_bytes(kg, k, 1);
            }
            black_box(backend.total_keys())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_scheduler_backends,
    bench_batch_drain,
    bench_region_sync,
    bench_parallel_epochs,
    bench_routing,
    bench_state_backend,
    bench_dense_backend_hot_access,
    bench_panes,
    bench_zipf,
    bench_end_to_end
);
criterion_main!(benches);
