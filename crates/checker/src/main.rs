//! Repo-wide determinism and unsafe-concurrency invariant lint.
//!
//! A deliberately dependency-free line/token scanner (no `syn`, no
//! crates.io): the rules below are structural enough that stripping
//! comments and string literals from each line gives a reliable token
//! stream, and keeping the checker trivial means it can gate CI without
//! itself needing review infrastructure.
//!
//! # Rules
//!
//! | id | rule |
//! |----|------|
//! | `U1` | `unsafe` only in allowlisted files |
//! | `U2` | every `unsafe` is annotated with a `// SAFETY:` comment |
//! | `D1` | no `Instant::now` / `SystemTime` in scheduling paths (`crates/simcore/src`, `crates/engine/src`) — wall-clock reads break replay determinism |
//! | `D2` | no std `HashMap`/`HashSet` in scheduling paths outside the allowlist — their iteration order is seeded per-process |
//! | `A1` | no direct `std::sync::atomic` outside the facade allowlist — concurrency primitives must go through `simcore::sync` so the interleave checker can see them |
//! | `A2` | non-`SeqCst` memory orderings only in allowlisted (reviewed, model-checked) files |
//! | `H1` | no allocation (`Vec::new`, `vec![]`, `Box::new`, `String::new`, `format!`, `.to_vec()`, `.to_string()`) inside functions marked `// checker:hot-path` |
//!
//! # Usage
//!
//! * `cargo run -p checker` — scan the repository; exit 1 on findings.
//! * `cargo run -p checker -- --scan <path>` — scan a specific tree with
//!   scopes and allowlists disabled (every rule applies everywhere).
//! * `cargo run -p checker -- --self-test` — scan the committed fixture
//!   of seeded violations and require **every** rule to fire: proves the
//!   checker still detects what it claims to.

use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a file:line.
#[derive(Debug, Clone, PartialEq)]
struct Finding {
    rule: &'static str,
    file: String,
    line: usize,
    msg: String,
}

/// All rule ids, in report order. `--self-test` requires each to fire.
const ALL_RULES: &[&str] = &["U1", "U2", "D1", "D2", "A1", "A2", "H1"];

/// Files allowed to contain `unsafe` (each use still needs `SAFETY:`).
const UNSAFE_ALLOW: &[&str] = &[
    "crates/simcore/src/spsc.rs",
    "crates/simcore/tests/interleave.rs",
    "crates/simcore/tests/ring_model.rs",
    "crates/shims/interleave/src/",
    "crates/shims/interleave/tests/",
];

/// Files allowed to use `std::sync::atomic` directly instead of the
/// `simcore::sync` facade: the facade's two personalities themselves,
/// and the measurement harness (not engine concurrency).
const ATOMIC_ALLOW: &[&str] = &[
    "crates/shims/interleave/src/",
    "crates/simcore/src/sync.rs",
    "crates/bench/",
];

/// Files allowed to use non-SeqCst orderings: the model runtime, the
/// facade, the model-checked lock-free code and its checker suites, and
/// the measurement harness.
const ORDERING_ALLOW: &[&str] = &[
    "crates/shims/interleave/",
    "crates/simcore/src/sync.rs",
    "crates/simcore/src/spsc.rs",
    "crates/simcore/tests/interleave.rs",
    "crates/bench/",
];

/// Scheduling-path files allowed to hold a std HashMap/HashSet: keyed
/// *state* (never iterated on an ordering-sensitive path) and the
/// deterministic-hasher wrappers themselves.
const HASH_ALLOW: &[&str] = &[
    "crates/simcore/src/hash.rs",
    "crates/engine/src/scaling.rs",
    "crates/engine/src/state.rs",
    "crates/engine/src/semantics.rs",
    "crates/engine/src/keygroup.rs",
    "crates/engine/src/ids.rs",
];

/// Deterministic-scheduling scope for the D-rules.
const SCHED_SCOPE: &[&str] = &["crates/simcore/src/", "crates/engine/src/"];

/// Allocation tokens banned inside `checker:hot-path` functions.
const HOT_BANNED: &[&str] = &[
    "Vec::new",
    "vec!",
    "Box::new",
    "String::new",
    "format!",
    ".to_vec()",
    ".to_string()",
];

/// The hot-path marker. Built by concatenation so this source file never
/// contains the literal marker and cannot mark its own functions.
const MARKER: &str = concat!("checker:", "hot-path");

fn path_matches(rel: &str, list: &[&str]) -> bool {
    list.iter()
        .any(|a| rel == *a || (a.ends_with('/') && rel.starts_with(a)))
}

/// Whether `code` contains `ident` as a standalone identifier (not as a
/// substring of a longer identifier like `FxHashMap`).
fn has_ident(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let i = start + pos;
        let before_ok = i == 0 || {
            let c = bytes[i - 1] as char;
            !c.is_ascii_alphanumeric() && c != '_'
        };
        let end = i + ident.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !c.is_ascii_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Strip comments and string/char-literal *contents* from source lines,
/// leaving everything else (including the quotes) in place. Tracks block
/// comments across lines. Lifetimes (`'a`) are distinguished from char
/// literals by a lookahead for the closing quote.
fn strip_lines(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_block = 0usize;
    for line in src.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            if in_block > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    in_block -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    in_block += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => break,
                '/' if chars.get(i + 1) == Some(&'*') => {
                    in_block += 1;
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            i += 2;
                        } else if chars[i] == '"' {
                            code.push('"');
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                '\'' => {
                    // Char literal iff a closing quote follows within the
                    // escape window; otherwise it is a lifetime.
                    let is_char = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        code.push('\'');
                        i += 1;
                        if chars.get(i) == Some(&'\\') {
                            i += 2;
                        }
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        code.push('\'');
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(code);
    }
    out
}

/// Scan one file. `rel` uses forward slashes relative to the repo root.
/// With `all_scope`, every rule applies to every file and allowlists are
/// ignored (used for `--scan` / `--self-test` on fixtures).
fn scan_file(rel: &str, src: &str, all_scope: bool) -> Vec<Finding> {
    let raw: Vec<&str> = src.lines().collect();
    let code = strip_lines(src);
    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: usize, msg: String| {
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: line + 1,
            msg,
        });
    };

    let in_sched = all_scope || SCHED_SCOPE.iter().any(|p| rel.starts_with(p));
    // Hot-path tracking state: Some(depth) while inside a marked fn body.
    let mut hot_depth: Option<i64> = None;
    let mut hot_pending = false;

    for (i, code_line) in code.iter().enumerate() {
        // U1/U2 — unsafe allowlist + SAFETY annotation.
        if has_ident(code_line, "unsafe") {
            if all_scope || !path_matches(rel, UNSAFE_ALLOW) {
                push(
                    "U1",
                    i,
                    "`unsafe` outside the allowlist; extend UNSAFE_ALLOW only with review"
                        .to_string(),
                );
            }
            let window = raw[i.saturating_sub(5)..=i].join("\n");
            if !window.contains("SAFETY:") {
                push(
                    "U2",
                    i,
                    "`unsafe` without a `// SAFETY:` comment in the 5 lines above".to_string(),
                );
            }
        }

        // D1/D2 — wall-clock and unordered-map determinism hazards.
        if in_sched {
            for tok in ["Instant::now", "SystemTime"] {
                if code_line.contains(tok) {
                    push(
                        "D1",
                        i,
                        format!("`{tok}` in a scheduling path breaks replay determinism"),
                    );
                }
            }
            if all_scope || !path_matches(rel, HASH_ALLOW) {
                for tok in ["HashMap", "HashSet"] {
                    if has_ident(code_line, tok) {
                        push(
                            "D2",
                            i,
                            format!(
                                "std `{tok}` in a scheduling path: iteration order is \
                                 per-process; use simcore::hash::Fx{tok} or allowlist"
                            ),
                        );
                    }
                }
            }
        }

        // A1 — atomics must go through the facade.
        if code_line.contains("std::sync::atomic")
            && (all_scope || !path_matches(rel, ATOMIC_ALLOW))
        {
            push(
                "A1",
                i,
                "direct std::sync::atomic use: go through simcore::sync so the \
                 interleave checker can model it"
                    .to_string(),
            );
        }

        // A2 — weak orderings only where model-checked.
        if all_scope || !path_matches(rel, ORDERING_ALLOW) {
            for ord in ["Relaxed", "Acquire", "Release", "AcqRel"] {
                if code_line.contains("Ordering::") && has_ident(code_line, ord) {
                    push(
                        "A2",
                        i,
                        format!(
                            "Ordering::{ord} outside the model-checked allowlist; \
                             use SeqCst or add the file to ORDERING_ALLOW with a \
                             checker test"
                        ),
                    );
                }
            }
        }

        // H1 — allocation in hot paths.
        if raw[i].contains(MARKER) {
            hot_pending = true;
        }
        if let Some(depth) = hot_depth.as_mut() {
            for tok in HOT_BANNED {
                if code_line.contains(tok) {
                    push(
                        "H1",
                        i,
                        format!("allocation `{tok}` inside a `{MARKER}` function"),
                    );
                }
            }
            *depth += braces(code_line);
            if *depth <= 0 {
                hot_depth = None;
            }
        } else if hot_pending && code_line.contains('{') {
            // First `{` after the marker opens the marked function's
            // body (signatures may span several lines).
            hot_pending = false;
            for tok in HOT_BANNED {
                if code_line.contains(tok) {
                    push(
                        "H1",
                        i,
                        format!("allocation `{tok}` inside a `{MARKER}` function"),
                    );
                }
            }
            let d = braces(code_line);
            if d > 0 {
                hot_depth = Some(d);
            }
        }
    }
    findings
}

/// Net brace depth contribution of a comment/string-stripped line.
fn braces(code: &str) -> i64 {
    code.chars().fold(0, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    out.sort();
}

fn repo_root() -> PathBuf {
    // crates/checker -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("checker sits two levels under the repo root")
        .to_path_buf()
}

fn scan_tree(root: &Path, all_scope: bool) -> Vec<Finding> {
    let mut files = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
    } else {
        collect_rs(root, &mut files);
    }
    let mut findings = Vec::new();
    let rel_base = repo_root();
    for f in &files {
        let rel = f
            .strip_prefix(&rel_base)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("checker: cannot read {}: {e}", f.display());
                continue;
            }
        };
        findings.extend(scan_file(&rel, &src, all_scope));
    }
    findings
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (target, all_scope, self_test) = match args.first().map(String::as_str) {
        Some("--self-test") => (repo_root().join("crates/checker/fixtures"), true, true),
        Some("--scan") => {
            let p = args.get(1).expect("--scan needs a path");
            (PathBuf::from(p), true, false)
        }
        None => (repo_root(), false, false),
        Some(other) => {
            eprintln!("checker: unknown argument {other}");
            std::process::exit(2);
        }
    };

    let findings = scan_tree(&target, all_scope);
    for f in &findings {
        println!("[{}] {}:{}: {}", f.rule, f.file, f.line, f.msg);
    }

    if self_test {
        let fired: Vec<&str> = ALL_RULES
            .iter()
            .copied()
            .filter(|r| findings.iter().any(|f| f.rule == *r))
            .collect();
        let missing: Vec<&str> = ALL_RULES
            .iter()
            .copied()
            .filter(|r| !fired.contains(r))
            .collect();
        if missing.is_empty() {
            println!(
                "checker self-test OK: all {} rules fired on the fixture",
                ALL_RULES.len()
            );
        } else {
            eprintln!("checker self-test FAILED: rules {missing:?} did not fire on the fixture");
            std::process::exit(1);
        }
        return;
    }

    if findings.is_empty() {
        println!("checker OK: no determinism or unsafe-concurrency violations");
    } else {
        eprintln!("checker: {} violation(s)", findings.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str, all: bool) -> Vec<&'static str> {
        scan_file(rel, src, all)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn stripping_removes_comments_and_string_contents() {
        let s = strip_lines("let x = \"unsafe\"; // unsafe\nlet y = 'a';");
        assert_eq!(s[0], "let x = \"\"; ");
        assert_eq!(s[1], "let y = '';");
    }

    #[test]
    fn stripping_tracks_block_comments_and_lifetimes() {
        let s = strip_lines("a /* unsafe\nstill comment */ b\nfn f<'a>(x: &'a str) {}");
        assert_eq!(s[0], "a ");
        assert_eq!(s[1], " b");
        assert_eq!(s[2], "fn f<'a>(x: &'a str) {}");
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("use simcore::hash::FxHashMap;", "HashMap"));
        assert!(!has_ident("HashMapLike", "HashMap"));
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety() {
        let src = "// SAFETY: fine\nunsafe { x() }\n";
        assert_eq!(
            rules("crates/simcore/src/spsc.rs", src, false),
            Vec::<&str>::new()
        );
        assert_eq!(rules("crates/engine/src/world.rs", src, false), vec!["U1"]);
        let bare = "unsafe { x() }\n";
        assert_eq!(rules("crates/simcore/src/spsc.rs", bare, false), vec!["U2"]);
    }

    #[test]
    fn commented_unsafe_does_not_fire() {
        let src = "// this mentions unsafe in prose\nlet s = \"unsafe\";\n";
        assert_eq!(
            rules("crates/engine/src/world.rs", src, false),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn wall_clock_fires_only_in_scheduling_scope() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules("crates/simcore/src/queue.rs", src, false), vec!["D1"]);
        assert_eq!(
            rules("crates/bench/src/lib.rs", src, false),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn hashmap_fires_outside_allowlist() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules("crates/engine/src/world.rs", src, false), vec!["D2"]);
        assert_eq!(
            rules("crates/engine/src/state.rs", src, false),
            Vec::<&str>::new()
        );
        let fx = "use simcore::hash::FxHashMap;\n";
        assert_eq!(
            rules("crates/engine/src/world.rs", fx, false),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn raw_atomics_and_weak_orderings_fire() {
        let src = "use std::sync::atomic::AtomicU64;\nx.store(1, Ordering::Relaxed);\n";
        assert_eq!(
            rules("crates/engine/src/parallel.rs", src, false),
            vec!["A1", "A2"]
        );
        assert_eq!(
            rules("crates/simcore/src/sync.rs", src, false),
            Vec::<&str>::new()
        );
        let seqcst = "x.store(1, Ordering::SeqCst);\n";
        assert_eq!(
            rules("crates/engine/src/parallel.rs", seqcst, false),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn hot_path_allocation_is_flagged() {
        let src = format!(
            "// {MARKER}\nfn hot(&mut self) -> u64 {{\n    let v = Vec::new();\n    0\n}}\n\
             fn cold() {{ let _ = Vec::new(); }}\n"
        );
        let f = scan_file("crates/simcore/src/queue.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "H1");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn hot_path_multiline_signature_is_tracked() {
        let src = format!(
            "// {MARKER}\nfn hot(\n    a: u64,\n) -> u64 {{\n    a.to_string();\n    0\n}}\n"
        );
        let f = scan_file("crates/simcore/src/queue.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "H1");
    }

    #[test]
    fn all_scope_ignores_allowlists() {
        let src = "unsafe { x() }\n";
        let r = rules("crates/checker/fixtures/x.rs", src, true);
        assert!(r.contains(&"U1") && r.contains(&"U2"));
    }
}
