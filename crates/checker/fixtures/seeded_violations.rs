//! Committed fixture of seeded rule violations — NOT compiled into any
//! crate (the `fixtures` directory is excluded from `src/`). CI runs
//! `cargo run -p checker -- --self-test`, which scans this file with
//! scopes and allowlists disabled and fails unless **every** rule fires.
//! If you add a rule to the checker, seed its violation here.

use std::collections::HashMap; // D2
use std::sync::atomic::{AtomicU64, Ordering}; // A1

// U1 + U2: unsafe outside any allowlist, missing its annotation.
fn seeded_unsafe(p: *const u64) -> u64 {
    unsafe { *p }
}

// D1: wall-clock read in (per --self-test scoping) a scheduling path.
fn seeded_wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

// A2: weakened ordering outside the model-checked allowlist.
fn seeded_weak_ordering(x: &AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}

// H1: allocation inside a marked hot-path function.
// checker:hot-path
fn seeded_hot_alloc() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(HashMap::<u64, u64>::new().len() as u64);
    v
}
