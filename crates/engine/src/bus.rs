//! The engine event/metrics bus: typed event classes, bounded per-class
//! channels with explicit drop policies, and pluggable sinks.
//!
//! Until now every metric left the engine *after* the run, scraped out of
//! `RunReport`. The bus is the in-flight observation layer: the world
//! publishes typed events (per-instance metrics ticks, scale-plan
//! decisions, checkpoint lifecycle, backpressure transitions, sync-stats
//! epochs) as they happen, and a configured sink consumes them — without
//! perturbing a single digest bit.
//!
//! # Event classes, capacities and drop rules
//!
//! Every event belongs to exactly one [`BusClass`], and each class is a
//! bounded channel with an explicit capacity and [`DropPolicy`], following
//! the bounded-channel capacity guidelines the exemplars converged on
//! (unit signals 1, control 8–16, value data 32–64, bursty events 64–128):
//!
//! | class | rate | capacity | policy |
//! |-------|------|----------|--------|
//! | [`BusClass::Metrics`] | one event per instance per sample | 64 | drop-oldest |
//! | [`BusClass::Scale`] | a handful per rescale | 16 | block |
//! | [`BusClass::Checkpoint`] | two per checkpoint | 16 | block |
//! | [`BusClass::Backpressure`] | bursty (block/resume transitions) | 128 | drop-oldest |
//! | [`BusClass::Sync`] | one per sample / parallel epoch | 32 | block |
//!
//! **Block** means must-deliver: when the channel is full the producer
//! "blocks" by synchronously draining the class to the sink before
//! admitting (the honest single-threaded analogue of a blocking send —
//! the producer pays the consumer's latency; `blocking_flushes` counts
//! how often). **Drop-oldest** means high-rate telemetry: the oldest
//! queued event is discarded and counted in `dropped`. Both counters —
//! plus the per-class occupancy high-water mark — are deterministic
//! functions of the simulation and are surfaced in `RunReport`, so a lossy
//! run *says* it was lossy, diffably, across reruns.
//!
//! # Sinks
//!
//! * [`BusSinkKind::Null`] — the default. The bus is disabled: `publish`
//!   is a single branch, the channels are never even allocated, and the
//!   steady-state dispatch path allocates and hashes nothing. Digests are
//!   byte-identical to a build without the bus.
//! * [`BusSinkKind::Mem`] — events accumulate in an in-memory log
//!   ([`Bus::take_log`]); for tests and for the thread-per-region
//!   executor's per-replica buffers.
//! * [`BusSinkKind::Jsonl`] — streaming: a dedicated sink-worker thread is
//!   attached with [`Bus::attach_jsonl`] and fed over a bounded
//!   [`simcore::spsc`] ring (the Lamport ring the PDES executor already
//!   uses); the worker serializes each event to one JSON line. Memory
//!   stays flat on arbitrarily long runs: channels are bounded, the ring
//!   is bounded, and the file absorbs the stream. Until a writer is
//!   attached a `Jsonl` bus stages into the in-memory log (this is what
//!   parallel replicas do — see below).
//!
//! # Drain points
//!
//! Channels drain to the sink at deliberately *low-rate* points, never on
//! the per-record hot path: every [`DRAIN_EVERY_SAMPLES`]-th metrics
//! sample ([`Bus::on_sample`]), at each parallel epoch end, when a
//! block-class channel fills, and at [`Bus::finish`]. Between drains a
//! drop-oldest class that overflows genuinely drops — the counters are
//! the honest record of it.
//!
//! # Determinism and parallel merged emission
//!
//! Publishing never touches metrics, RNG or event ordering, so the bus is
//! digest-neutral by construction (enforced by proptests: `Null` vs `Mem`
//! produce byte-identical digests, sequentially and under `run_parallel`).
//! Every counter is a function of the deterministic event timeline, so two
//! runs of the same spec report identical drop/lag numbers.
//!
//! Under the thread-per-region executor each replica buffers its own
//! region's events in memory (never attaching a writer), and
//! [`merge_region_logs`] folds the per-region buffers in region order by
//! stable-sorting on `(at, region)` — exactly mirroring
//! [`Observables::merge`](crate::world::Observables::merge), whose
//! `(t, region)` key reproduces the sequential region-major recording
//! order. The periodic sampler is pinned to region 0, so in parallel runs
//! per-instance metrics ticks cover region-0 instances only (ticks for
//! other regions' instances would read state frozen at replica pruning
//! time); whole-fleet snapshots come from `Observables`, which merges
//! exactly.
//!
//! The nondeterministic parts — how often the JSONL ring momentarily
//! fills, how fast the worker drains — affect only wall-clock, never the
//! stream content or the counters.

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::sync::Arc;

use simcore::spsc::{ring, Consumer, Producer};
use simcore::sync::{thread, AtomicU32, Ordering};
use simcore::time::SimTime;

/// Number of event classes (see the table in the module docs).
pub const CLASS_COUNT: usize = 5;

/// Drain the channels to the sink every this many `Sample` events (plus
/// at block-class overflow, parallel epoch ends, and `finish`). The sink
/// service interval is deliberately coarser than the publish rate so the
/// drop/lag accounting exercises real bounded-channel behavior.
pub const DRAIN_EVERY_SAMPLES: u32 = 8;

/// Capacity of the ring feeding the JSONL sink-worker thread, in events.
const JSONL_RING_CAP: usize = 1024;

/// The typed event classes (one bounded channel each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusClass {
    /// Per-instance metrics ticks (published at each `Ev::Sample`).
    Metrics,
    /// Scale-plan decisions and deployment completions.
    Scale,
    /// Checkpoint/barrier lifecycle (barrier injection, sink completion).
    Checkpoint,
    /// Backpressure transitions (sender blocked / resumed).
    Backpressure,
    /// Synchronization accounting epochs (region scheduler / parallel
    /// executor).
    Sync,
}

impl BusClass {
    /// All classes, in channel-index order.
    pub const ALL: [BusClass; CLASS_COUNT] = [
        BusClass::Metrics,
        BusClass::Scale,
        BusClass::Checkpoint,
        BusClass::Backpressure,
        BusClass::Sync,
    ];

    /// Stable lowercase name (used in JSONL output and counters).
    pub fn name(self) -> &'static str {
        match self {
            BusClass::Metrics => "metrics",
            BusClass::Scale => "scale",
            BusClass::Checkpoint => "checkpoint",
            BusClass::Backpressure => "backpressure",
            BusClass::Sync => "sync",
        }
    }

    /// Channel capacity, per the module-docs table.
    pub fn capacity(self) -> usize {
        match self {
            BusClass::Metrics => 64,
            BusClass::Scale => 16,
            BusClass::Checkpoint => 16,
            BusClass::Backpressure => 128,
            BusClass::Sync => 32,
        }
    }

    /// Drop policy, per the module-docs table.
    pub fn policy(self) -> DropPolicy {
        match self {
            BusClass::Metrics | BusClass::Backpressure => DropPolicy::DropOldest,
            BusClass::Scale | BusClass::Checkpoint | BusClass::Sync => DropPolicy::Block,
        }
    }
}

/// What a full channel does with the next event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Must-deliver: synchronously drain the class to the sink, then
    /// admit. Nothing is ever lost; `blocking_flushes` counts the stalls.
    Block,
    /// High-rate telemetry: discard the oldest queued event and count it.
    DropOldest,
}

/// One published event. Plain `Copy` data — publishing never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Scheduler region whose dispatch recorded it (0 on single-region
    /// runs). The merge key for parallel folding, like
    /// `Observables::merge`.
    pub region: u8,
    /// The payload.
    pub kind: BusEventKind,
}

/// The typed payloads. All variants are fixed-size plain data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BusEventKind {
    /// Per-instance progress snapshot at a metrics sample.
    MetricsTick {
        /// Instance id.
        inst: u32,
        /// Records processed so far.
        processed: u64,
        /// Nominal state bytes held.
        state_bytes: u64,
        /// Operator watermark.
        watermark: SimTime,
    },
    /// A scale plan was computed and committed (scaling period begins).
    ScalePlanned {
        /// The scaled operator.
        op: u32,
        /// Parallelism before.
        old_par: u32,
        /// Parallelism after.
        new_par: u32,
        /// Key-group moves in the plan.
        moves: u64,
        /// Scale epoch.
        epoch: u32,
    },
    /// Newly deployed containers became operational (`DeployDone`).
    ScaleDeployed {
        /// Scale epoch.
        epoch: u32,
    },
    /// A checkpoint's barriers were injected at the sources.
    CheckpointStart {
        /// Checkpoint id.
        id: u64,
    },
    /// A sink instance completed barrier alignment for this checkpoint.
    CheckpointDone {
        /// Checkpoint id.
        id: u64,
    },
    /// A sender's output backlog crossed the block watermark.
    BackpressureBlock {
        /// The blocked sender instance.
        inst: u32,
    },
    /// A blocked sender drained below the resume watermark.
    BackpressureResume {
        /// The resumed sender instance.
        inst: u32,
    },
    /// Synchronization accounting. Sequential multi-region runs publish
    /// the cumulative region-scheduler `SyncStats` at each sample drain;
    /// the thread-per-region executor publishes per-worker cumulative
    /// counters at each epoch end (`merged` = cross messages shipped,
    /// `grants` = busy epochs).
    SyncEpoch {
        /// Barrier rounds (parallel) or dispatched runs (sequential).
        epochs: u64,
        /// Events dispatched so far.
        dispatched: u64,
        /// Merged runs (sequential) / cross messages shipped (parallel).
        merged: u64,
        /// Min-rule grants (sequential) / busy epochs (parallel).
        grants: u64,
    },
}

impl BusEvent {
    /// The class (and therefore channel) this event belongs to.
    pub fn class(&self) -> BusClass {
        match self.kind {
            BusEventKind::MetricsTick { .. } => BusClass::Metrics,
            BusEventKind::ScalePlanned { .. } | BusEventKind::ScaleDeployed { .. } => {
                BusClass::Scale
            }
            BusEventKind::CheckpointStart { .. } | BusEventKind::CheckpointDone { .. } => {
                BusClass::Checkpoint
            }
            BusEventKind::BackpressureBlock { .. } | BusEventKind::BackpressureResume { .. } => {
                BusClass::Backpressure
            }
            BusEventKind::SyncEpoch { .. } => BusClass::Sync,
        }
    }

    /// Serialize as one JSON line (the JSONL sink format). Field order is
    /// fixed, so the output is byte-deterministic.
    pub fn write_jsonl(&self, w: &mut impl io::Write) -> io::Result<()> {
        let head = (self.at, self.region, self.class().name());
        match self.kind {
            BusEventKind::MetricsTick {
                inst,
                processed,
                state_bytes,
                watermark,
            } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"metrics_tick\",\
                 \"inst\":{inst},\"processed\":{processed},\"state_bytes\":{state_bytes},\
                 \"watermark\":{watermark}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::ScalePlanned {
                op,
                old_par,
                new_par,
                moves,
                epoch,
            } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"scale_planned\",\
                 \"op\":{op},\"old_par\":{old_par},\"new_par\":{new_par},\"moves\":{moves},\
                 \"epoch\":{epoch}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::ScaleDeployed { epoch } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"scale_deployed\",\
                 \"epoch\":{epoch}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::CheckpointStart { id } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"checkpoint_start\",\
                 \"id\":{id}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::CheckpointDone { id } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"checkpoint_done\",\
                 \"id\":{id}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::BackpressureBlock { inst } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"backpressure_block\",\
                 \"inst\":{inst}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::BackpressureResume { inst } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"backpressure_resume\",\
                 \"inst\":{inst}}}",
                head.0, head.1, head.2
            ),
            BusEventKind::SyncEpoch {
                epochs,
                dispatched,
                merged,
                grants,
            } => writeln!(
                w,
                "{{\"at\":{},\"region\":{},\"class\":\"{}\",\"kind\":\"sync_epoch\",\
                 \"epochs\":{epochs},\"dispatched\":{dispatched},\"merged\":{merged},\
                 \"grants\":{grants}}}",
                head.0, head.1, head.2
            ),
        }
    }
}

/// Which sink the bus feeds (selected from `EngineConfig`/`ScenarioSpec`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BusSinkKind {
    /// Bus disabled: `publish` is a single branch, nothing is allocated.
    #[default]
    Null,
    /// In-memory event log (tests, parallel per-replica buffers).
    Mem,
    /// Streaming JSONL via an attached sink-worker thread
    /// ([`Bus::attach_jsonl`]); stages to the in-memory log until one is
    /// attached.
    Jsonl,
}

impl BusSinkKind {
    /// Parse a CLI flag value (`null` / `mem` / `jsonl`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "null" | "none" | "off" => Some(Self::Null),
            "mem" | "memory" => Some(Self::Mem),
            "jsonl" | "json" => Some(Self::Jsonl),
            _ => None,
        }
    }

    /// The flag-style name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Null => "null",
            Self::Mem => "mem",
            Self::Jsonl => "jsonl",
        }
    }
}

/// Deterministic lag/drop accounting, summed over classes where scalar.
/// Every field is a pure function of the simulated timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusSummary {
    /// Events admitted to a channel (drop-oldest discards still count —
    /// they were published; `dropped` says what never reached the sink).
    pub published: u64,
    /// Admitted events discarded by drop-oldest overflow.
    pub dropped: u64,
    /// Synchronous block-class drains forced by a full channel.
    pub blocking_flushes: u64,
    /// Highest channel occupancy observed across all classes.
    pub lag_max: u64,
    /// `dropped`, broken out per class (indexed like [`BusClass::ALL`]).
    pub class_drops: [u64; CLASS_COUNT],
}

impl BusSummary {
    /// Fold another replica's summary into this one (counters sum, the
    /// high-water mark takes the max).
    pub fn absorb(&mut self, o: &BusSummary) {
        self.published += o.published;
        self.dropped += o.dropped;
        self.blocking_flushes += o.blocking_flushes;
        self.lag_max = self.lag_max.max(o.lag_max);
        for (a, b) in self.class_drops.iter_mut().zip(o.class_drops.iter()) {
            *a += b;
        }
    }
}

/// One bounded per-class channel.
struct Chan {
    buf: VecDeque<BusEvent>,
    cap: usize,
    policy: DropPolicy,
    published: u64,
    dropped: u64,
    blocking_flushes: u64,
    max_depth: u64,
}

/// The attached JSONL sink worker: a bounded SPSC ring into a writer
/// thread. Shutdown is flag + drain: `finish` raises `done`, the worker
/// drains the ring empty and exits.
struct JsonlWriter {
    tx: Producer<BusEvent>,
    done: Arc<AtomicU32>,
    handle: Option<thread::JoinHandle<io::Result<u64>>>,
}

fn writer_loop(
    mut rx: Consumer<BusEvent>,
    done: Arc<AtomicU32>,
    mut out: io::BufWriter<std::fs::File>,
) -> io::Result<u64> {
    let mut written = 0u64;
    loop {
        match rx.pop() {
            Some(ev) => {
                ev.write_jsonl(&mut out)?;
                written += 1;
            }
            None => {
                // The producer publishes `done` *before* its final push
                // could be missed: it only raises the flag after its last
                // push, and we re-check emptiness after reading the flag.
                if done.load(Ordering::SeqCst) == 1 && rx.is_empty() {
                    break;
                }
                thread::yield_now();
            }
        }
    }
    out.flush()?;
    Ok(written)
}

/// The event/metrics bus owned by a `World`. See the module docs.
pub struct Bus {
    kind: BusSinkKind,
    /// Per-class channels, indexed like [`BusClass::ALL`]. Empty when the
    /// bus is disabled (`Null`): the disabled bus owns no buffers at all.
    chans: Vec<Chan>,
    /// The in-memory sink log (`Mem`, and `Jsonl` before attach).
    log: Vec<BusEvent>,
    /// The attached streaming sink worker, if any.
    writer: Option<JsonlWriter>,
    /// Samples since the last periodic drain.
    samples: u32,
}

impl Bus {
    /// Build a bus for the configured sink. `Null` allocates nothing.
    pub fn new(kind: BusSinkKind) -> Self {
        let chans = if kind == BusSinkKind::Null {
            Vec::new()
        } else {
            BusClass::ALL
                .iter()
                .map(|c| Chan {
                    buf: VecDeque::with_capacity(c.capacity()),
                    cap: c.capacity(),
                    policy: c.policy(),
                    published: 0,
                    dropped: 0,
                    blocking_flushes: 0,
                    max_depth: 0,
                })
                .collect()
        };
        Self {
            kind,
            chans,
            log: Vec::new(),
            writer: None,
            samples: 0,
        }
    }

    /// Is the bus publishing (any sink but `Null`)?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.kind != BusSinkKind::Null
    }

    /// The configured sink kind.
    pub fn sink_kind(&self) -> BusSinkKind {
        self.kind
    }

    /// Publish one event. With the `Null` sink this is a single branch —
    /// the steady-state dispatch path pays one predictable-not-taken
    /// compare and nothing else.
    // checker:hot-path
    #[inline]
    pub fn publish(&mut self, at: SimTime, region: u8, kind: BusEventKind) {
        if self.kind == BusSinkKind::Null {
            return;
        }
        self.admit(BusEvent { at, region, kind });
    }

    /// Admit an event to its class channel, applying the drop policy.
    /// Allocation-free: channels are pre-sized to their capacity and the
    /// occupancy invariant (`len <= cap <= buf.capacity()`) means the
    /// push below can never grow the buffer.
    // checker:hot-path
    fn admit(&mut self, ev: BusEvent) {
        let ci = ev.class() as usize;
        debug_assert!(
            self.chans[ci].buf.capacity() >= self.chans[ci].cap,
            "bus channel under-sized: an admit on the dispatch hot path would allocate"
        );
        if self.chans[ci].buf.len() == self.chans[ci].cap {
            match self.chans[ci].policy {
                DropPolicy::DropOldest => {
                    self.chans[ci].buf.pop_front();
                    self.chans[ci].dropped += 1;
                }
                DropPolicy::Block => {
                    self.chans[ci].blocking_flushes += 1;
                    self.flush_class(ci);
                }
            }
        }
        let c = &mut self.chans[ci];
        c.buf.push_back(ev);
        c.published += 1;
        if c.buf.len() as u64 > c.max_depth {
            c.max_depth = c.buf.len() as u64;
        }
    }

    /// Drain one class to the sink (block-policy overflow, and `drain`).
    fn flush_class(&mut self, ci: usize) {
        while let Some(ev) = self.chans[ci].buf.pop_front() {
            self.emit(ev);
        }
    }

    /// Hand one event to the sink: the attached writer's ring, or the
    /// in-memory log. A full ring is a *blocking* send (all drops already
    /// happened at admission): spin-yield until the worker frees a slot.
    fn emit(&mut self, ev: BusEvent) {
        match &mut self.writer {
            Some(w) => {
                let mut pending = ev;
                while let Err(back) = w.tx.push(pending) {
                    pending = back;
                    thread::yield_now();
                }
            }
            None => self.log.push(ev),
        }
    }

    /// Periodic drain pacing: called once per `Ev::Sample`; every
    /// [`DRAIN_EVERY_SAMPLES`]-th call drains all channels to the sink.
    pub fn on_sample(&mut self) {
        if !self.enabled() {
            return;
        }
        self.samples += 1;
        if self.samples >= DRAIN_EVERY_SAMPLES {
            self.samples = 0;
            self.drain();
        }
    }

    /// Drain every class to the sink, in class order (FIFO within each).
    pub fn drain(&mut self) {
        for ci in 0..self.chans.len() {
            self.flush_class(ci);
        }
    }

    /// Attach the streaming JSONL sink-worker: open `path`, spawn the
    /// writer thread, and forward everything staged in the log so far.
    /// Only meaningful for a [`BusSinkKind::Jsonl`] bus.
    pub fn attach_jsonl(&mut self, path: &std::path::Path) -> io::Result<()> {
        assert_eq!(
            self.kind,
            BusSinkKind::Jsonl,
            "attach_jsonl on a {:?} bus",
            self.kind
        );
        assert!(self.writer.is_none(), "JSONL writer already attached");
        let file = std::fs::File::create(path)?;
        let (tx, rx) = ring::<BusEvent>(JSONL_RING_CAP);
        let done = Arc::new(AtomicU32::new(0));
        let done2 = Arc::clone(&done);
        let handle = thread::spawn(move || writer_loop(rx, done2, io::BufWriter::new(file)));
        self.writer = Some(JsonlWriter {
            tx,
            done,
            handle: Some(handle),
        });
        let staged = std::mem::take(&mut self.log);
        for ev in staged {
            self.emit(ev);
        }
        Ok(())
    }

    /// Final drain: flush every channel, then shut the writer down (raise
    /// the done flag, join, surface its I/O result as the number of lines
    /// written). Idempotent; returns 0 lines when no writer was attached.
    pub fn finish(&mut self) -> io::Result<u64> {
        self.drain();
        match self.writer.take() {
            Some(mut w) => {
                w.done.store(1, Ordering::SeqCst);
                let handle = w.handle.take().expect("writer joined twice");
                handle.join().expect("bus sink worker panicked")
            }
            None => Ok(0),
        }
    }

    /// Take the in-memory event log (`Mem` sink, or `Jsonl` before
    /// attach). Call [`Bus::finish`] first so the channels are drained.
    pub fn take_log(&mut self) -> Vec<BusEvent> {
        std::mem::take(&mut self.log)
    }

    /// The deterministic lag/drop accounting.
    pub fn summary(&self) -> BusSummary {
        let mut s = BusSummary::default();
        for (ci, c) in self.chans.iter().enumerate() {
            s.published += c.published;
            s.dropped += c.dropped;
            s.blocking_flushes += c.blocking_flushes;
            s.lag_max = s.lag_max.max(c.max_depth);
            s.class_drops[ci] = c.dropped;
        }
        s
    }
}

impl Drop for Bus {
    fn drop(&mut self) {
        // Backstop: if `finish` was never called, shut the worker down
        // anyway so the thread and file handle are not leaked (I/O errors
        // are swallowed here — call `finish` to observe them).
        if self.writer.is_some() {
            let _ = self.finish();
        }
    }
}

/// Fold per-replica event logs (indexed by region) into the deterministic
/// merged stream: concatenate in region order, then stable-sort by
/// `(at, region)` — the same key [`Observables::merge`] uses for latency
/// samples, which reproduces the sequential region-major recording order
/// for same-instant events while preserving each replica's own in-order
/// sub-sequence.
pub fn merge_region_logs(logs: Vec<Vec<BusEvent>>) -> Vec<BusEvent> {
    let mut all: Vec<BusEvent> = Vec::with_capacity(logs.iter().map(Vec::len).sum());
    for log in logs {
        all.extend(log);
    }
    all.sort_by_key(|e| (e.at, e.region));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(at: SimTime, inst: u32) -> BusEventKind {
        BusEventKind::MetricsTick {
            inst,
            processed: at,
            state_bytes: 0,
            watermark: at,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_unallocated() {
        let mut b = Bus::new(BusSinkKind::Null);
        assert!(!b.enabled());
        assert_eq!(b.chans.capacity(), 0, "disabled bus must own no buffers");
        b.publish(1, 0, tick(1, 0));
        b.on_sample();
        assert_eq!(b.finish().expect("finish"), 0);
        assert_eq!(b.summary(), BusSummary::default());
        assert!(b.take_log().is_empty());
    }

    #[test]
    fn drop_oldest_overflow_counts_and_keeps_newest() {
        let mut b = Bus::new(BusSinkKind::Mem);
        let cap = BusClass::Metrics.capacity() as u64;
        for i in 0..cap + 10 {
            b.publish(i, 0, tick(i, i as u32));
        }
        let s = b.summary();
        assert_eq!(s.published, cap + 10);
        assert_eq!(s.dropped, 10);
        assert_eq!(s.class_drops[BusClass::Metrics as usize], 10);
        assert_eq!(s.lag_max, cap, "high-water mark is the full channel");
        b.finish().expect("finish");
        let log = b.take_log();
        assert_eq!(log.len() as u64, cap, "sink sees cap newest events");
        assert_eq!(log[0].at, 10, "the 10 oldest were dropped");
        assert_eq!(log.last().expect("non-empty").at, cap + 9);
    }

    #[test]
    fn block_policy_flushes_instead_of_dropping() {
        let mut b = Bus::new(BusSinkKind::Mem);
        let cap = BusClass::Checkpoint.capacity() as u64;
        for i in 0..cap + 3 {
            b.publish(i, 0, BusEventKind::CheckpointStart { id: i });
        }
        let s = b.summary();
        assert_eq!(s.published, cap + 3);
        assert_eq!(s.dropped, 0, "block classes never drop");
        assert_eq!(s.blocking_flushes, 1, "one forced drain at overflow");
        b.finish().expect("finish");
        let log = b.take_log();
        assert_eq!(log.len() as u64, cap + 3, "every event reached the sink");
        // Delivery preserves publish order within the class.
        for (i, ev) in log.iter().enumerate() {
            assert_eq!(ev.at, i as u64);
        }
    }

    #[test]
    fn periodic_drain_paces_at_the_sample_cadence() {
        let mut b = Bus::new(BusSinkKind::Mem);
        b.publish(5, 0, tick(5, 1));
        for _ in 0..DRAIN_EVERY_SAMPLES - 1 {
            b.on_sample();
        }
        assert!(b.log.is_empty(), "no drain before the cadence boundary");
        b.on_sample();
        assert_eq!(b.log.len(), 1, "cadence boundary drains the channels");
    }

    #[test]
    fn class_table_matches_capacity_guidelines() {
        // Control/lifecycle block; high-rate telemetry drops oldest.
        assert_eq!(BusClass::Scale.policy(), DropPolicy::Block);
        assert_eq!(BusClass::Checkpoint.policy(), DropPolicy::Block);
        assert_eq!(BusClass::Sync.policy(), DropPolicy::Block);
        assert_eq!(BusClass::Metrics.policy(), DropPolicy::DropOldest);
        assert_eq!(BusClass::Backpressure.policy(), DropPolicy::DropOldest);
        for c in BusClass::ALL {
            assert!((1..=128).contains(&c.capacity()), "{:?}", c);
        }
        // Class→channel indexing is the ALL order.
        for (i, c) in BusClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn jsonl_lines_are_deterministic_and_one_per_event() {
        let mut buf = Vec::new();
        let ev = BusEvent {
            at: 42,
            region: 1,
            kind: BusEventKind::ScalePlanned {
                op: 1,
                old_par: 4,
                new_par: 6,
                moves: 43,
                epoch: 1,
            },
        };
        ev.write_jsonl(&mut buf).expect("write");
        let line = String::from_utf8(buf).expect("utf8");
        assert_eq!(
            line,
            "{\"at\":42,\"region\":1,\"class\":\"scale\",\"kind\":\"scale_planned\",\
             \"op\":1,\"old_par\":4,\"new_par\":6,\"moves\":43,\"epoch\":1}\n"
        );
    }

    #[test]
    fn jsonl_worker_streams_and_reports_line_count() {
        let dir = std::env::temp_dir();
        let path = dir.join("streamflow_bus_worker_test.jsonl");
        let mut b = Bus::new(BusSinkKind::Jsonl);
        // Staged before attach...
        b.publish(1, 0, tick(1, 0));
        b.drain();
        b.attach_jsonl(&path).expect("attach");
        // ...and streamed after.
        for i in 2..50u64 {
            b.publish(i, 0, tick(i, 0));
        }
        let written = b.finish().expect("finish");
        assert_eq!(written, 49, "staged + streamed events all written");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 49);
        assert!(text.starts_with("{\"at\":1,"), "staged event first");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_folds_region_logs_in_region_major_order() {
        let e = |at, region| BusEvent {
            at,
            region,
            kind: tick(at, region as u32),
        };
        let merged = merge_region_logs(vec![vec![e(10, 0), e(30, 0)], vec![e(10, 1), e(20, 1)]]);
        let keys: Vec<(SimTime, u8)> = merged.iter().map(|ev| (ev.at, ev.region)).collect();
        assert_eq!(keys, vec![(10, 0), (10, 1), (20, 1), (30, 0)]);
    }

    #[test]
    fn summary_absorb_sums_counters_and_maxes_lag() {
        let mut a = BusSummary {
            published: 3,
            dropped: 1,
            blocking_flushes: 0,
            lag_max: 5,
            class_drops: [1, 0, 0, 0, 0],
        };
        let b = BusSummary {
            published: 4,
            dropped: 2,
            blocking_flushes: 1,
            lag_max: 9,
            class_drops: [0, 0, 0, 2, 0],
        };
        a.absorb(&b);
        assert_eq!(a.published, 7);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.blocking_flushes, 1);
        assert_eq!(a.lag_max, 9);
        assert_eq!(a.class_drops, [1, 0, 0, 2, 0]);
    }
}
