//! Job graph construction: logical operators, edges, and the builder that
//! lowers them into an executable [`World`](crate::world::World).

use simcore::SimTime;

use crate::config::EngineConfig;
use crate::ids::{ChannelId, EdgeId, InstId, OpId};
use crate::instance::SourceGen;
use crate::keygroup::RoutingTable;
use crate::operator::{OpRole, OperatorLogic};

/// How records are partitioned across an edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Hash-partitioned by key via key-groups and routing tables.
    Keyed,
    /// Round-robin.
    Rebalance,
    /// Every record to every instance (not used by the stock workloads but
    /// supported for completeness).
    Broadcast,
}

/// Factory producing per-subtask operator logic.
pub type LogicFactory = Box<dyn Fn() -> Box<dyn OperatorLogic>>;
/// Factory producing per-subtask source generators (arg = subtask index).
pub type SourceFactory = Box<dyn Fn(usize) -> Box<dyn SourceGen>>;

/// Runtime descriptor of a logical operator.
pub struct OperatorRt {
    /// Operator id.
    pub id: OpId,
    /// Human-readable name.
    pub name: String,
    /// Role.
    pub role: OpRole,
    /// Current instances, in subtask order.
    pub instances: Vec<InstId>,
    /// Incoming edges.
    pub in_edges: Vec<EdgeId>,
    /// Outgoing edges.
    pub out_edges: Vec<EdgeId>,
    /// Cached: the keyed subset of `in_edges`. Edges are fixed at build
    /// time, so this never changes after lowering; computing it per call
    /// allocated on the dispatch path.
    pub keyed_in_edges: Vec<EdgeId>,
    /// Cached: all upstream instances feeding the keyed inputs (deduped, in
    /// discovery order). Refreshed by the world whenever an upstream
    /// operator's instance list changes (scale-out/retirement).
    pub pred_insts: Vec<InstId>,
    /// Logic factory (Transform only).
    pub logic_factory: Option<LogicFactory>,
    /// Source factory (Source only).
    pub source_factory: Option<SourceFactory>,
    /// Per-record service time at sinks.
    pub sink_service: SimTime,
    /// Does this operator have a keyed input (and therefore keyed state)?
    /// Set during lowering.
    pub stateful: bool,
}

/// Sentinel for "no channel wired between this (from, to) pair".
const NO_CHANNEL: ChannelId = ChannelId(u32::MAX);
/// Sentinel for "this instance has no slot on this edge".
const NO_SLOT: u32 = u32::MAX;

/// Runtime descriptor of an edge.
///
/// Per-record lookups — routing table of the sender, channel of a
/// `(from, to)` pair — are two dense index reads plus one matrix read, no
/// hashing. The dense index is derived from an append-only wiring log and
/// rebuilt only on scale events (build time, scale-out channel wiring), so
/// sender/receiver slots are compacted per edge and stable across rebuilds.
pub struct EdgeRt {
    /// Edge id.
    pub id: EdgeId,
    /// Upstream operator.
    pub from: OpId,
    /// Downstream operator.
    pub to: OpId,
    /// Partitioning.
    pub kind: EdgeKind,
    /// Append-only wiring log: every `(from, to, channel)` ever created on
    /// this edge, in creation order. Source of truth for rebuilds.
    wiring: Vec<(InstId, InstId, ChannelId)>,
    /// Global `InstId` → compacted sender slot (`NO_SLOT` = not a sender).
    from_slot: Vec<u32>,
    /// Global `InstId` → compacted receiver slot.
    to_slot: Vec<u32>,
    /// Receiver-slot count (stride of the channel matrix).
    to_len: usize,
    /// Sender-slot-major channel matrix; `NO_CHANNEL` where unwired.
    chan: Vec<ChannelId>,
    /// Keyed edges: per sender slot, that predecessor's private routing
    /// table (paper §II-A — scaling mechanisms update copies individually).
    tables: Vec<Option<RoutingTable>>,
}

impl EdgeRt {
    /// A fresh, unwired edge.
    pub fn new(id: EdgeId, from: OpId, to: OpId, kind: EdgeKind) -> Self {
        Self {
            id,
            from,
            to,
            kind,
            wiring: Vec::new(),
            from_slot: Vec::new(),
            to_slot: Vec::new(),
            to_len: 0,
            chan: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Record a newly created channel. The dense index does NOT see it
    /// until [`Self::rebuild_index`] runs — callers wire a batch of
    /// channels (build, scale-out) and rebuild once.
    pub fn add_channel(&mut self, from: InstId, to: InstId, ch: ChannelId) {
        self.wiring.push((from, to, ch));
    }

    /// Recompute the compacted slots and channel matrix from the wiring
    /// log. `n_insts` is the world's current instance count (slot vectors
    /// are indexed by global `InstId`). Slot assignment follows wiring
    /// discovery order, so existing instances keep their slots across
    /// rebuilds and routing tables survive in place.
    pub fn rebuild_index(&mut self, n_insts: usize) {
        // Remember which instance owned each sender slot, to carry tables.
        let mut old_slot_inst: Vec<Option<InstId>> = vec![None; self.tables.len()];
        for (inst, &slot) in self.from_slot.iter().enumerate() {
            if slot != NO_SLOT {
                old_slot_inst[slot as usize] = Some(InstId(inst as u32));
            }
        }
        self.from_slot = vec![NO_SLOT; n_insts];
        self.to_slot = vec![NO_SLOT; n_insts];
        let mut from_len = 0u32;
        let mut to_len = 0u32;
        for &(f, t, _) in &self.wiring {
            if self.from_slot[f.0 as usize] == NO_SLOT {
                self.from_slot[f.0 as usize] = from_len;
                from_len += 1;
            }
            if self.to_slot[t.0 as usize] == NO_SLOT {
                self.to_slot[t.0 as usize] = to_len;
                to_len += 1;
            }
        }
        self.to_len = to_len as usize;
        self.chan = vec![NO_CHANNEL; from_len as usize * self.to_len];
        for &(f, t, c) in &self.wiring {
            let fs = self.from_slot[f.0 as usize] as usize;
            let ts = self.to_slot[t.0 as usize] as usize;
            self.chan[fs * self.to_len + ts] = c;
        }
        let mut tables = vec![None; from_len as usize];
        for (old_slot, inst) in old_slot_inst.into_iter().enumerate() {
            if let Some(inst) = inst {
                let new_slot = self.from_slot[inst.0 as usize];
                debug_assert_ne!(new_slot, NO_SLOT, "wired sender lost its slot");
                tables[new_slot as usize] = self.tables[old_slot].take();
            }
        }
        self.tables = tables;
    }

    /// Channel between two instances, if wired.
    #[inline]
    pub fn channel(&self, from: InstId, to: InstId) -> Option<ChannelId> {
        let fs = *self.from_slot.get(from.0 as usize)?;
        let ts = *self.to_slot.get(to.0 as usize)?;
        if fs == NO_SLOT || ts == NO_SLOT {
            return None;
        }
        let c = self.chan[fs as usize * self.to_len + ts as usize];
        (c != NO_CHANNEL).then_some(c)
    }

    /// Hot-path channel lookup: both endpoints must be wired on this edge
    /// (routing only ever targets wired destinations). Two dense reads and
    /// one matrix read — no hashing, no branching beyond debug asserts.
    #[inline]
    pub fn channel_of(&self, from: InstId, to: InstId) -> ChannelId {
        let fs = self.from_slot[from.0 as usize] as usize;
        let ts = self.to_slot[to.0 as usize] as usize;
        debug_assert!(fs != NO_SLOT as usize && ts != NO_SLOT as usize);
        let c = self.chan[fs * self.to_len + ts];
        debug_assert_ne!(c, NO_CHANNEL, "unwired channel on the hot path");
        c
    }

    /// The routing table of a sender instance (keyed edges).
    #[inline]
    pub fn table(&self, from: InstId) -> Option<&RoutingTable> {
        let fs = *self.from_slot.get(from.0 as usize)?;
        if fs == NO_SLOT {
            return None;
        }
        self.tables[fs as usize].as_ref()
    }

    /// Mutable routing-table access (scaling mechanisms re-point groups).
    #[inline]
    pub fn table_mut(&mut self, from: InstId) -> Option<&mut RoutingTable> {
        let fs = *self.from_slot.get(from.0 as usize)?;
        if fs == NO_SLOT {
            return None;
        }
        self.tables[fs as usize].as_mut()
    }

    /// Install (or replace) a sender's routing table. The sender must
    /// already hold a slot, i.e. its channels were wired and the index
    /// rebuilt.
    pub fn set_table(&mut self, from: InstId, table: RoutingTable) {
        let fs = self.from_slot[from.0 as usize];
        assert_ne!(fs, NO_SLOT, "routing table for unwired sender {from}");
        self.tables[fs as usize] = Some(table);
    }

    /// All `(sender, routing table)` pairs on this edge, in ascending
    /// sender-instance order (cold path: assertions, planners).
    pub fn tables(&self) -> impl Iterator<Item = (InstId, &RoutingTable)> + '_ {
        self.from_slot
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != NO_SLOT)
            .filter_map(|(inst, &slot)| {
                self.tables[slot as usize]
                    .as_ref()
                    .map(|t| (InstId(inst as u32), t))
            })
    }
}

/// Builder for a streaming job.
pub struct JobBuilder {
    cfg: EngineConfig,
    ops: Vec<OperatorRt>,
    edges: Vec<(OpId, OpId, EdgeKind)>,
}

impl JobBuilder {
    /// Start building with the given engine configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Self {
            cfg,
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn push_op(
        &mut self,
        name: &str,
        role: OpRole,
        parallelism: usize,
        logic_factory: Option<LogicFactory>,
        source_factory: Option<SourceFactory>,
    ) -> OpId {
        assert!(parallelism > 0, "operator {name} needs parallelism >= 1");
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OperatorRt {
            id,
            name: name.to_string(),
            role,
            instances: Vec::with_capacity(parallelism),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
            keyed_in_edges: Vec::new(),
            pred_insts: Vec::new(),
            logic_factory,
            source_factory,
            sink_service: 1,
            stateful: false,
        });
        // Record requested parallelism by pre-sizing: world build fills ids.
        self.ops.last_mut().expect("just pushed").instances = vec![InstId(u32::MAX); parallelism];
        id
    }

    /// Add a source operator.
    pub fn source(&mut self, name: &str, parallelism: usize, factory: SourceFactory) -> OpId {
        self.push_op(name, OpRole::Source, parallelism, None, Some(factory))
    }

    /// Add a transform operator.
    pub fn operator(&mut self, name: &str, parallelism: usize, factory: LogicFactory) -> OpId {
        self.push_op(name, OpRole::Transform, parallelism, Some(factory), None)
    }

    /// Add a sink operator.
    pub fn sink(&mut self, name: &str, parallelism: usize) -> OpId {
        self.push_op(name, OpRole::Sink, parallelism, None, None)
    }

    /// Connect two operators.
    pub fn connect(&mut self, from: OpId, to: OpId, kind: EdgeKind) {
        assert_ne!(from, to, "self-loops unsupported");
        self.edges.push((from, to, kind));
    }

    /// Lower into an executable world.
    pub fn build(self) -> crate::world::World {
        crate::world::World::from_builder(self.cfg, self.ops, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Relay;

    #[test]
    fn builder_assigns_sequential_op_ids() {
        let mut b = JobBuilder::new(EngineConfig::test());
        let s = b.source(
            "src",
            1,
            Box::new(|_| Box::new(crate::world::tests_support::FixedGen::new(10.0, 4))),
        );
        let t = b.operator("map", 2, Box::new(|| Box::new(Relay { service: 10 })));
        let k = b.sink("sink", 1);
        assert_eq!(s, OpId(0));
        assert_eq!(t, OpId(1));
        assert_eq!(k, OpId(2));
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        let mut b = JobBuilder::new(EngineConfig::test());
        b.sink("sink", 0);
    }
}
