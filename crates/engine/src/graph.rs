//! Job graph construction: logical operators, edges, and the builder that
//! lowers them into an executable [`World`](crate::world::World).

use simcore::{FxHashMap, SimTime};

use crate::config::EngineConfig;
use crate::ids::{ChannelId, EdgeId, InstId, OpId};
use crate::instance::SourceGen;
use crate::keygroup::RoutingTable;
use crate::operator::{OpRole, OperatorLogic};

/// How records are partitioned across an edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Hash-partitioned by key via key-groups and routing tables.
    Keyed,
    /// Round-robin.
    Rebalance,
    /// Every record to every instance (not used by the stock workloads but
    /// supported for completeness).
    Broadcast,
}

/// Factory producing per-subtask operator logic.
pub type LogicFactory = Box<dyn Fn() -> Box<dyn OperatorLogic>>;
/// Factory producing per-subtask source generators (arg = subtask index).
pub type SourceFactory = Box<dyn Fn(usize) -> Box<dyn SourceGen>>;

/// Runtime descriptor of a logical operator.
pub struct OperatorRt {
    /// Operator id.
    pub id: OpId,
    /// Human-readable name.
    pub name: String,
    /// Role.
    pub role: OpRole,
    /// Current instances, in subtask order.
    pub instances: Vec<InstId>,
    /// Incoming edges.
    pub in_edges: Vec<EdgeId>,
    /// Outgoing edges.
    pub out_edges: Vec<EdgeId>,
    /// Cached: the keyed subset of `in_edges`. Edges are fixed at build
    /// time, so this never changes after lowering; computing it per call
    /// allocated on the dispatch path.
    pub keyed_in_edges: Vec<EdgeId>,
    /// Cached: all upstream instances feeding the keyed inputs (deduped, in
    /// discovery order). Refreshed by the world whenever an upstream
    /// operator's instance list changes (scale-out/retirement).
    pub pred_insts: Vec<InstId>,
    /// Logic factory (Transform only).
    pub logic_factory: Option<LogicFactory>,
    /// Source factory (Source only).
    pub source_factory: Option<SourceFactory>,
    /// Per-record service time at sinks.
    pub sink_service: SimTime,
    /// Does this operator have a keyed input (and therefore keyed state)?
    /// Set during lowering.
    pub stateful: bool,
}

/// Runtime descriptor of an edge.
pub struct EdgeRt {
    /// Edge id.
    pub id: EdgeId,
    /// Upstream operator.
    pub from: OpId,
    /// Downstream operator.
    pub to: OpId,
    /// Partitioning.
    pub kind: EdgeKind,
    /// Keyed edges: each upstream instance's private routing table.
    /// Looked up once per routed record — deterministic fast hashing.
    pub tables: FxHashMap<InstId, RoutingTable>,
    /// Channel lookup by `(from instance, to instance)`, same hot path.
    pub channels: FxHashMap<(InstId, InstId), ChannelId>,
}

/// Builder for a streaming job.
pub struct JobBuilder {
    cfg: EngineConfig,
    ops: Vec<OperatorRt>,
    edges: Vec<(OpId, OpId, EdgeKind)>,
}

impl JobBuilder {
    /// Start building with the given engine configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Self {
            cfg,
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn push_op(
        &mut self,
        name: &str,
        role: OpRole,
        parallelism: usize,
        logic_factory: Option<LogicFactory>,
        source_factory: Option<SourceFactory>,
    ) -> OpId {
        assert!(parallelism > 0, "operator {name} needs parallelism >= 1");
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OperatorRt {
            id,
            name: name.to_string(),
            role,
            instances: Vec::with_capacity(parallelism),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
            keyed_in_edges: Vec::new(),
            pred_insts: Vec::new(),
            logic_factory,
            source_factory,
            sink_service: 1,
            stateful: false,
        });
        // Record requested parallelism by pre-sizing: world build fills ids.
        self.ops.last_mut().expect("just pushed").instances = vec![InstId(u32::MAX); parallelism];
        id
    }

    /// Add a source operator.
    pub fn source(&mut self, name: &str, parallelism: usize, factory: SourceFactory) -> OpId {
        self.push_op(name, OpRole::Source, parallelism, None, Some(factory))
    }

    /// Add a transform operator.
    pub fn operator(&mut self, name: &str, parallelism: usize, factory: LogicFactory) -> OpId {
        self.push_op(name, OpRole::Transform, parallelism, Some(factory), None)
    }

    /// Add a sink operator.
    pub fn sink(&mut self, name: &str, parallelism: usize) -> OpId {
        self.push_op(name, OpRole::Sink, parallelism, None, None)
    }

    /// Connect two operators.
    pub fn connect(&mut self, from: OpId, to: OpId, kind: EdgeKind) {
        assert_ne!(from, to, "self-loops unsupported");
        self.edges.push((from, to, kind));
    }

    /// Lower into an executable world.
    pub fn build(self) -> crate::world::World {
        crate::world::World::from_builder(self.cfg, self.ops, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Relay;

    #[test]
    fn builder_assigns_sequential_op_ids() {
        let mut b = JobBuilder::new(EngineConfig::test());
        let s = b.source(
            "src",
            1,
            Box::new(|_| Box::new(crate::world::tests_support::FixedGen::new(10.0, 4))),
        );
        let t = b.operator("map", 2, Box::new(|| Box::new(Relay { service: 10 })));
        let k = b.sink("sink", 1);
        assert_eq!(s, OpId(0));
        assert_eq!(t, OpId(1));
        assert_eq!(k, OpId(2));
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        let mut b = JobBuilder::new(EngineConfig::test());
        b.sink("sink", 0);
    }
}
