//! Thread-per-region parallel PDES execution over the SPSC rings.
//!
//! Each scheduler region runs its own dispatch loop on an OS thread, in
//! **epochs**:
//!
//! 1. every worker drains its inbound [`simcore::spsc`] rings (cross-cut
//!    deliveries and cut-credit returns from the other regions), applies
//!    them under their explicit [`CROSS_BIT`](crate::world::CROSS_BIT)
//!    keys, and publishes the timestamp of its next pending event;
//! 2. an [`EpochBarrier`] synchronizes; each worker computes the global
//!    minimum `m` of the published clocks and — from the *transitive
//!    closure* of the region lookahead matrix — its private dispatch cap
//!    `min over all s (including r itself) of (next[s] + L[s→r] - 1)`,
//!    clipped to the horizon. The diagonal `L[r→r]` is the shortest
//!    lookahead *cycle* through other regions, which paces a region
//!    against its own echo (deliveries whose processing sends cut
//!    credits back);
//! 3. each worker dispatches independently up to its cap, staging
//!    outbound cross messages in its world's outbox, then ships them over
//!    the rings (falling back to a shared overflow vector if a ring
//!    fills);
//! 4. a second barrier ends the epoch; when `m` exceeds the horizon every
//!    worker breaks (they all computed the same `m`, so they all break in
//!    the same epoch).
//!
//! # Why the closure, not the direct matrix
//!
//! With direct edges only, a chain `A → B → C` with no direct `A → C`
//! channel would let `C` run arbitrarily far ahead of `A` even though an
//! `A` event can reach `C` *through `B`* — `next[B]` does not reflect
//! messages still in flight from `A`. The shortest-path closure
//! `L[s→r]` bounds the earliest instant any *transitively* reachable
//! message from `s` can arrive at `r`, which makes the cap safe:
//! every in-flight or future message from `s` arrives at or after
//! `next[s] + L[s→r] > cap`.
//!
//! # Determinism
//!
//! Each worker constructs its **own complete replica** of the simulation
//! by calling the factory — worlds never cross threads, records ship by
//! value, and nothing here requires `Send` simulation internals. The
//! replica prunes its queue to its own region
//! ([`retain_region`](simcore::queue::FutureEventList::retain_region));
//! region-major pop order plus explicitly keyed cross events make every
//! replica pop its region's events in exactly the order the sequential
//! PDES engine ([`CrossMode::Inline`]) pops them, so the merged
//! [`Observables`] digest equals the sequential digest at the same
//! `resume_latency`. Proptests in the workspace root enforce this across
//! random graphs, region counts and dispatch modes.
//!
//! When the factory's world is not in PDES mode (`resume_latency == 0` or
//! a single region), the executor falls back to the plain sequential
//! `run_until` — byte-identical to every pre-existing digest.

use simcore::sync::{AtomicU64, Ordering};
use std::sync::Mutex;

use simcore::spsc::{ring, Consumer, EpochBarrier, Producer};
use simcore::time::SimTime;

use crate::bus::{merge_region_logs, BusEvent, BusEventKind, BusSummary};
use crate::world::{CrossMode, CrossMsg, Observables, Sim};

/// Capacity of each inter-region SPSC ring, in messages. A full ring is
/// not a stall: overflow spills into a mutex-guarded vector drained at the
/// same point in the next epoch (message order across the two paths is
/// irrelevant — every cross event carries its own explicit key).
const RING_CAP: usize = 4096;

/// Publish one cumulative `SyncEpoch` bus event every this many epochs
/// (plus the totals after the loop). Epoch counts are lock-stepped and
/// deterministic, so the resulting bus stream is too — but at fine
/// `resume_latency` an epoch is far more frequent than a metrics sample,
/// so the bus samples the accounting rather than flooding the channel.
const SYNC_EPOCH_EVERY: u64 = 64;

/// Per-worker epoch accounting, summed across workers in the report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Barrier rounds executed (including the final all-idle round).
    pub epochs: u64,
    /// Rounds in which this worker's cap reached its next pending event,
    /// i.e. it actually dispatched.
    pub busy_epochs: u64,
    /// Cross messages shipped over the rings.
    pub msgs_sent: u64,
    /// Cross messages that hit a full ring and took the overflow path.
    pub msgs_overflowed: u64,
}

impl EpochStats {
    fn absorb(&mut self, o: &EpochStats) {
        // Epochs are lock-stepped: every worker runs the same count.
        self.epochs = self.epochs.max(o.epochs);
        self.busy_epochs += o.busy_epochs;
        self.msgs_sent += o.msgs_sent;
        self.msgs_overflowed += o.msgs_overflowed;
    }
}

/// Result of a [`run_parallel`] execution.
#[derive(Debug)]
pub struct ParallelReport {
    /// Merged observables — digest-comparable against the sequential
    /// engine at the same configuration (see [`Observables::merge`]).
    pub obs: Observables,
    /// Events dispatched by each region's worker, indexed by region.
    pub per_region_events: Vec<u64>,
    /// Epoch/synchronization accounting summed across workers.
    pub stats: EpochStats,
    /// OS threads actually used (1 on the sequential fallback).
    pub threads: usize,
    /// Bus events from all replicas, deterministically merged: per-region
    /// buffers folded in region order by stable `(at, region)` sort —
    /// exactly the [`Observables::merge`] key (see
    /// [`merge_region_logs`]). Empty with the default `Null` sink.
    pub bus_events: Vec<BusEvent>,
    /// Bus lag/drop accounting summed across replicas (deterministic —
    /// every counter is a function of the simulated timeline).
    pub bus: BusSummary,
}

impl ParallelReport {
    /// Digest of the merged observables.
    pub fn digest(&self) -> u64 {
        self.obs.digest()
    }
}

/// Floyd–Warshall shortest-path closure of the row-major `k × k`
/// lookahead matrix, with saturating addition (`SimTime::MAX` =
/// unreachable).
///
/// The diagonal is re-initialized to `MAX` before the relaxation, so
/// `L[r→r]` comes out as the shortest *cycle* through other regions (or
/// `MAX` when the region graph is acyclic at `r`). The cycle entry is
/// load-bearing: a region's own earliest event can induce a message chain
/// that loops back to it (deliver out, cut-credit back), so its dispatch
/// cap must include `next[r] + L[r→r] - 1` — otherwise a region whose
/// peers are all momentarily idle (`next = MAX`) would race to the
/// horizon unpaced and receive its own echo in its past.
fn lookahead_closure(direct: &[SimTime], k: usize) -> Vec<SimTime> {
    let mut l = direct.to_vec();
    for a in 0..k {
        l[a * k + a] = SimTime::MAX;
    }
    for via in 0..k {
        for a in 0..k {
            let av = l[a * k + via];
            if av == SimTime::MAX {
                continue;
            }
            for b in 0..k {
                let vb = l[via * k + b];
                if vb == SimTime::MAX {
                    continue;
                }
                let cand = av.saturating_add(vb);
                if cand < l[a * k + b] {
                    l[a * k + b] = cand;
                }
            }
        }
    }
    l
}

/// Per-worker endpoints of the inter-region rings: `prods[d]` sends to
/// region `d`, `cons[s]` receives from region `s` (`None` on the
/// diagonal).
struct Mailbox {
    prods: Vec<Option<Producer<CrossMsg>>>,
    cons: Vec<Option<Consumer<CrossMsg>>>,
}

struct WorkerOut {
    obs: Observables,
    events: u64,
    stats: EpochStats,
    bus_events: Vec<BusEvent>,
    bus: BusSummary,
}

/// One region's epoch loop (runs on its own thread; worker 0 runs on the
/// caller's thread, reusing the probe simulation).
#[allow(clippy::too_many_arguments)]
fn drive(
    r: usize,
    k: usize,
    horizon: SimTime,
    mut sim: Sim,
    mut mb: Mailbox,
    l: &[SimTime],
    next: &[AtomicU64],
    barrier_a: &EpochBarrier,
    barrier_b: &EpochBarrier,
    overflow: &[Mutex<Vec<CrossMsg>>],
) -> WorkerOut {
    sim.world.set_cross_mode(CrossMode::Outbox);
    sim.world.q.retain_region(r);
    let mut stats = EpochStats::default();
    loop {
        // Drain inbound cross traffic. Everything visible here was pushed
        // before the previous epoch's closing barrier, so the rings are
        // quiescent during the drain.
        for s in 0..k {
            if let Some(c) = mb.cons[s].as_mut() {
                while let Some(m) = c.pop() {
                    sim.world.apply_cross_msg(m);
                }
            }
        }
        {
            let mut ov = overflow[r].lock().expect("overflow poisoned");
            for m in ov.drain(..) {
                sim.world.apply_cross_msg(m);
            }
        }
        // Publish this region's clock, then synchronize: after the
        // barrier every worker reads the same snapshot (no store can
        // happen until all workers pass the closing barrier below).
        let t = sim.world.q.peek_time().unwrap_or(SimTime::MAX);
        next[r].store(t, Ordering::SeqCst);
        barrier_a.wait();
        let mut m = SimTime::MAX;
        for s in next.iter().take(k) {
            m = m.min(s.load(Ordering::SeqCst));
        }
        stats.epochs += 1;
        if m <= horizon {
            let mut cap = horizon;
            for s in 0..k {
                // `s == r` participates: L[r→r] is the shortest cycle back
                // to this region, bounding the earliest self-induced echo.
                let ns = next[s].load(Ordering::SeqCst);
                cap = cap.min(ns.saturating_add(l[s * k + r]).saturating_sub(1));
            }
            // Progress: the worker holding the global minimum always has
            // cap >= its head (all finite off-diagonal L entries are > 0),
            // so every epoch with m <= horizon dispatches somewhere.
            if t <= cap {
                stats.busy_epochs += 1;
            }
            sim.dispatch_until(cap);
            let mut out = sim.world.take_outbox();
            for msg in out.drain(..) {
                let dst = msg.dst;
                match mb.prods[dst].as_mut().expect("no self ring").push(msg) {
                    Ok(()) => stats.msgs_sent += 1,
                    Err(msg) => {
                        stats.msgs_overflowed += 1;
                        overflow[dst].lock().expect("overflow poisoned").push(msg);
                    }
                }
            }
            sim.world.put_outbox_scratch(out);
            if sim.world.bus.enabled() {
                // Cumulative sync accounting, sampled every
                // `SYNC_EPOCH_EVERY` epochs. `merged` is the ring+overflow
                // *sum*: the repo only guarantees the sum is deterministic,
                // never the split. Draining each epoch keeps the replica's
                // channels (which have no sample-cadence drain of their
                // own outside region 0) from shedding events needlessly.
                if stats.epochs % SYNC_EPOCH_EVERY == 1 {
                    let ev = BusEventKind::SyncEpoch {
                        epochs: stats.epochs,
                        dispatched: sim.world.q.processed(),
                        merged: stats.msgs_sent + stats.msgs_overflowed,
                        grants: stats.busy_epochs,
                    };
                    sim.world.bus.publish(m, r as u8, ev);
                }
                sim.world.bus.drain();
            }
        }
        barrier_b.wait();
        if m > horizon {
            // All queues sit beyond the horizon and nothing is in flight
            // (nobody dispatched this epoch, and all earlier messages were
            // drained above). Every worker saw the same m — the cohort
            // breaks together.
            break;
        }
    }
    sim.world.q.advance_clock_to(horizon);
    if sim.world.bus.enabled() {
        // Final cumulative totals, then flush everything to the replica's
        // in-memory buffer for the region-order fold.
        let ev = BusEventKind::SyncEpoch {
            epochs: stats.epochs,
            dispatched: sim.world.q.processed(),
            merged: stats.msgs_sent + stats.msgs_overflowed,
            grants: stats.busy_epochs,
        };
        sim.world.bus.publish(horizon, r as u8, ev);
        sim.world.bus.drain();
    }
    WorkerOut {
        events: sim.world.q.processed(),
        obs: sim.world.observables(),
        stats,
        bus: sim.world.bus.summary(),
        bus_events: sim.world.bus.take_log(),
    }
}

/// Run the simulation to `horizon` with one executor thread per scheduler
/// region.
///
/// `factory` must build a fresh, identical simulation each call (same
/// config, same seed, same graph): each worker thread constructs its own
/// replica, so nothing in the simulation needs to be `Send`. When the
/// built world is not in PDES mode (`resume_latency == 0` or fewer than
/// two regions) the probe replica simply runs `run_until(horizon)`
/// sequentially on the calling thread.
pub fn run_parallel<F>(factory: F, horizon: SimTime) -> ParallelReport
where
    F: Fn() -> Sim + Sync,
{
    let mut probe = factory();
    let k = probe.world.region_map.k();
    if !probe.world.pdes() || k < 2 {
        probe.run_until(horizon);
        let per_region_events = (0..k.max(1))
            .map(|r| probe.world.q.region_processed(r))
            .collect();
        probe.world.bus.drain();
        return ParallelReport {
            obs: probe.world.observables(),
            per_region_events,
            stats: EpochStats::default(),
            threads: 1,
            bus: probe.world.bus.summary(),
            bus_events: probe.world.bus.take_log(),
        };
    }

    let l = lookahead_closure(probe.world.region_map.lookahead(), k);
    for a in 0..k {
        for b in 0..k {
            assert!(
                a == b || l[a * k + b] > 0,
                "zero transitive lookahead {a} -> {b}: PDES mode requires every \
                 cross-region latency (net, ctrl, resume) to be positive"
            );
        }
    }

    // Wire the k*(k-1) directed rings.
    let mut boxes: Vec<Mailbox> = (0..k)
        .map(|_| Mailbox {
            prods: (0..k).map(|_| None).collect(),
            cons: (0..k).map(|_| None).collect(),
        })
        .collect();
    for s in 0..k {
        for d in 0..k {
            if s == d {
                continue;
            }
            let (p, c) = ring::<CrossMsg>(RING_CAP);
            boxes[s].prods[d] = Some(p);
            boxes[d].cons[s] = Some(c);
        }
    }
    let next: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let barrier_a = EpochBarrier::new(k);
    let barrier_b = EpochBarrier::new(k);
    let overflow: Vec<Mutex<Vec<CrossMsg>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();

    let mut outs: Vec<Option<WorkerOut>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut boxes_iter = boxes.into_iter();
        let mb0 = boxes_iter.next().expect("k >= 2");
        let mut handles = Vec::with_capacity(k - 1);
        for (i, mb) in boxes_iter.enumerate() {
            let r = i + 1;
            let (factory, l, next) = (&factory, &l, &next);
            let (barrier_a, barrier_b, overflow) = (&barrier_a, &barrier_b, &overflow);
            handles.push(scope.spawn(move || {
                drive(
                    r,
                    k,
                    horizon,
                    factory(),
                    mb,
                    l,
                    next,
                    barrier_a,
                    barrier_b,
                    overflow,
                )
            }));
        }
        // The probe becomes worker 0 on the calling thread.
        outs[0] = Some(drive(
            0, k, horizon, probe, mb0, &l, &next, &barrier_a, &barrier_b, &overflow,
        ));
        for (i, h) in handles.into_iter().enumerate() {
            outs[i + 1] = Some(h.join().expect("region worker panicked"));
        }
    });

    let outs: Vec<WorkerOut> = outs
        .into_iter()
        .map(|o| o.expect("worker result"))
        .collect();
    let per_region_events: Vec<u64> = outs.iter().map(|o| o.events).collect();
    let mut stats = EpochStats::default();
    let mut bus = BusSummary::default();
    for o in &outs {
        stats.absorb(&o.stats);
        bus.absorb(&o.bus);
    }
    let mut logs: Vec<Vec<BusEvent>> = Vec::with_capacity(k);
    let mut replicas: Vec<Observables> = Vec::with_capacity(k);
    for o in outs {
        logs.push(o.bus_events);
        replicas.push(o.obs);
    }
    ParallelReport {
        obs: Observables::merge(&replicas),
        per_region_events,
        stats,
        threads: k,
        bus_events: merge_region_logs(logs),
        bus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::scaling::NoScale;
    use crate::world::tests_support::{tiny_job, twin_jobs};
    use simcore::time::secs;

    fn cfg(regions: usize, resume_latency: SimTime) -> EngineConfig {
        EngineConfig {
            regions,
            resume_latency,
            ..EngineConfig::test()
        }
    }

    #[test]
    fn closure_tightens_multi_hop_paths() {
        const X: SimTime = SimTime::MAX;
        // A→B=10, B→C=5, no direct A→C: closure must find 15.
        let direct = vec![0, 10, X, X, 0, 5, X, X, 0];
        let l = lookahead_closure(&direct, 3);
        assert_eq!(l[2], 15, "A→C through B");
        assert_eq!(l[3], X, "B→A stays unreachable");
        // No edge re-enters A: its self-cycle entry must stay unreachable.
        assert_eq!(l[0], X, "A has no cycle");
    }

    #[test]
    fn closure_diagonal_is_the_shortest_cycle() {
        // A→B=10, B→A=3: both regions are paced by the 13-cycle.
        let direct = vec![0, 10, 3, 0];
        let l = lookahead_closure(&direct, 2);
        assert_eq!(l[0], 13, "A→B→A cycle");
        assert_eq!(l[3], 13, "B→A→B cycle");
        assert_eq!(l[1], 10);
        assert_eq!(l[2], 3);
    }

    #[test]
    fn parallel_matches_sequential_on_a_cut_pipeline() {
        for &rl in &[100, 2_000] {
            let factory = || {
                let (w, _) = tiny_job(cfg(2, rl), 20_000.0, 256, 4);
                Sim::new(w, Box::new(NoScale))
            };
            let mut seq = factory();
            assert!(seq.world.pdes(), "config must engage PDES mode");
            seq.run_until(secs(1));
            let sobs = seq.world.observables();
            let par = run_parallel(factory, secs(1));
            assert_eq!(par.threads, 2);
            assert_eq!(par.obs.processed, sobs.processed, "rl={rl}");
            assert_eq!(par.obs.sink_records, sobs.sink_records, "rl={rl}");
            assert_eq!(par.digest(), sobs.digest(), "rl={rl}");
        }
    }

    #[test]
    fn disjoint_pipelines_finish_in_one_busy_epoch() {
        let factory = || {
            let w = twin_jobs(cfg(2, 100), 20_000.0, 256, 2, 2);
            Sim::new(w, Box::new(NoScale))
        };
        let mut seq = factory();
        seq.run_until(secs(1));
        let sobs = seq.world.observables();
        let par = run_parallel(factory, secs(1));
        assert_eq!(par.digest(), sobs.digest());
        // No cut channels → infinite lookahead → one dispatching epoch
        // plus the final all-idle round.
        assert_eq!(par.stats.epochs, 2);
        assert_eq!(par.stats.msgs_sent + par.stats.msgs_overflowed, 0);
    }

    #[test]
    fn bus_is_digest_neutral_and_deterministic_in_parallel() {
        use crate::bus::BusSinkKind;
        let factory_with = |sink: BusSinkKind| {
            move || {
                let mut c = cfg(2, 100);
                c.bus_sink = sink;
                let (w, _) = tiny_job(c, 20_000.0, 256, 4);
                Sim::new(w, Box::new(NoScale))
            }
        };
        let off = run_parallel(factory_with(BusSinkKind::Null), secs(1));
        let on1 = run_parallel(factory_with(BusSinkKind::Mem), secs(1));
        let on2 = run_parallel(factory_with(BusSinkKind::Mem), secs(1));
        // Observing must not steer: digests identical bus-on vs bus-off.
        assert_eq!(on1.digest(), off.digest());
        assert_eq!(off.bus.published, 0);
        assert!(off.bus_events.is_empty());
        // The merged emission and every counter are run-to-run stable.
        assert!(on1.bus.published > 0, "replicas published nothing");
        assert_eq!(on1.bus, on2.bus);
        assert_eq!(on1.bus_events, on2.bus_events);
        // The fold is ordered by the Observables::merge key.
        for w in on1.bus_events.windows(2) {
            assert!((w[0].at, w[0].region) <= (w[1].at, w[1].region));
        }
    }

    #[test]
    fn zero_resume_latency_falls_back_to_the_sequential_engine() {
        let factory = || {
            let (w, _) = tiny_job(cfg(2, 0), 20_000.0, 256, 4);
            Sim::new(w, Box::new(NoScale))
        };
        let mut seq = factory();
        assert!(!seq.world.pdes());
        seq.run_until(secs(1));
        let par = run_parallel(factory, secs(1));
        assert_eq!(par.threads, 1, "fallback must stay sequential");
        assert_eq!(par.digest(), seq.world.metrics_digest());
        assert_eq!(
            par.per_region_events.iter().sum::<u64>(),
            seq.world.q.processed()
        );
    }
}
