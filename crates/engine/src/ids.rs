//! Newtype identifiers for the execution graph.
//!
//! Using dedicated types (rather than bare `u32`s) makes the scaling code —
//! which juggles operators, instances, channels, key-groups and subscales
//! simultaneously — impossible to mis-index.

use std::fmt;

/// A logical operator (node in the job DAG).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u32);

/// A physical operator instance (parallel subtask).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstId(pub u32);

/// A channel between two instances (one direction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ChannelId(pub u32);

/// An edge between two logical operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub u32);

/// A key-group: the atomic unit of state partitioning and (by default) of
/// state migration, exactly as in Flink.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct KeyGroup(pub u16);

/// A subscale: an independently migrated subset of the moving key-groups
/// (DRRS Section III-C). Baselines that have no subscale concept use
/// subscale 0, or one subscale per migration batch (Megaphone).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SubscaleId(pub u32);

/// A record key. Workloads map their domain keys (auction ids, user names,
/// channel names) onto `u64`.
pub type Key = u64;

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}
impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for KeyGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kg{}", self.0)
    }
}
impl fmt::Display for SubscaleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ss{}", self.0)
    }
}

/// Map a key to its key-group, Flink-style (`hash(key) % max_key_groups`).
///
/// A multiplicative mix keeps sequential workload keys from aliasing onto
/// sequential key-groups.
#[inline]
pub fn key_group_of(key: Key, max_key_groups: u16) -> KeyGroup {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = h ^ (h >> 31);
    KeyGroup((h % max_key_groups as u64) as u16)
}

/// Sub-key-group index within a key-group (Meces' hierarchical state
/// organization). `fanout = 1` collapses to "no hierarchy".
#[inline]
pub fn sub_group_of(key: Key, max_key_groups: u16, fanout: u8) -> u8 {
    if fanout <= 1 {
        return 0;
    }
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = h ^ (h >> 31);
    ((h / max_key_groups as u64) % fanout as u64) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_groups_in_range_and_stable() {
        for k in 0..10_000u64 {
            let kg = key_group_of(k, 128);
            assert!(kg.0 < 128);
            assert_eq!(kg, key_group_of(k, 128));
        }
    }

    #[test]
    fn key_groups_spread() {
        let mut counts = [0u32; 16];
        for k in 0..16_000u64 {
            counts[key_group_of(k, 16).0 as usize] += 1;
        }
        for c in counts {
            assert!(c > 500, "key-group badly unbalanced: {counts:?}");
        }
    }

    #[test]
    fn sub_groups_in_range() {
        for k in 0..1000u64 {
            assert!(sub_group_of(k, 128, 4) < 4);
            assert_eq!(sub_group_of(k, 128, 1), 0);
        }
    }

    #[test]
    fn sub_groups_partition_within_key_group() {
        // Two keys in the same key-group can land in different sub-groups.
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u64 {
            if key_group_of(k, 8).0 == 3 {
                seen.insert(sub_group_of(k, 8, 4));
            }
        }
        assert!(seen.len() > 1, "hierarchy degenerate: {seen:?}");
    }
}
