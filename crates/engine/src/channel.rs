//! Channels: bounded, credit-based links between instances.
//!
//! A channel has three stages, mirroring Flink's network stack:
//!
//! ```text
//!   sender backlog  ──(credit available)──►  in flight  ──►  receiver queue
//!   (output buffers)       network latency                  (input buffers)
//! ```
//!
//! The receiver queue has `capacity` slots (credits). When it is full,
//! elements accumulate in the sender backlog; when the backlog passes the
//! block watermark the *sender instance stalls*, which is how backpressure
//! propagates hop by hop back to the sources — the effect behind the paper's
//! latency spikes and post-scaling throughput overshoot.
//!
//! Queues hold [`RecordRef`] handles, not elements: the payload lives once
//! in the world's [`RecordArena`](crate::record::RecordArena) from `send`
//! until consumption, so moving an element between stages (backlog → wire →
//! queue) and DRRS' backlog redirection are 8-byte handle moves.

use std::collections::VecDeque;

use simcore::SimTime;

use crate::ids::{ChannelId, InstId};
use crate::record::{RecordArena, RecordRef, StreamElement};

/// Initial sender-backlog capacity, in elements.
///
/// Steady state never backlogs: under the credit model an element only
/// lands here once the receiver queue plus the wire hold `capacity`
/// elements, i.e. the link is already saturated. The backlog therefore
/// starts at a token size — enough to absorb a transient burst without
/// reallocating — and doubles only under genuine backpressure, where the
/// resize cost is noise against the stall itself. (The hard behavioural
/// bounds are `EngineConfig::{backlog_block, backlog_resume}`, not this.)
pub const BACKLOG_INITIAL_BUFFERS: usize = 16;

/// One directed channel between two instances.
pub struct Channel {
    /// Identifier (index into the world's channel table).
    pub id: ChannelId,
    /// Sending instance.
    pub from: InstId,
    /// Receiving instance.
    pub to: InstId,
    /// Receiver-side queue (input buffers) of arena handles.
    pub queue: VecDeque<RecordRef>,
    /// Sender-side backlog awaiting credit (output buffers).
    pub backlog: VecDeque<RecordRef>,
    /// Elements currently "on the wire".
    pub in_flight: usize,
    /// Receiver queue capacity (credits).
    pub capacity: usize,
    /// One-way latency.
    pub latency: SimTime,
    /// Highest watermark delivered over this channel (receiver-side view;
    /// the receiver's operator watermark is the min across its channels).
    pub rx_watermark: SimTime,
    /// Does this channel cross a region cut in PDES mode
    /// (`resume_latency > 0`)? Set once at build time. Cut channels switch
    /// from the synchronous `has_credit`/`pump` protocol to sender-owned
    /// [`Self::cut_credits`] with latency-bearing `CutCredit` returns, so
    /// neither side ever touches the other's fields — the property that
    /// lets the two endpoints live on different threads.
    pub cut: bool,
    /// Sender-owned credit count for a cut channel (starts at `capacity`).
    /// Decremented per element put on the wire; replenished by `CutCredit`
    /// events from the receiver's region. Unused (and untouched) when
    /// `cut` is false.
    pub cut_credits: usize,
}

impl Channel {
    /// Create an empty channel. The receiver queue is pre-sized to its
    /// credit capacity (its hard occupancy bound), so steady-state traffic
    /// never grows it; the backlog starts at
    /// [`BACKLOG_INITIAL_BUFFERS`] and doubles only under backpressure.
    pub fn new(id: ChannelId, from: InstId, to: InstId, capacity: usize, latency: SimTime) -> Self {
        Self {
            id,
            from,
            to,
            queue: VecDeque::with_capacity(capacity),
            backlog: VecDeque::with_capacity(BACKLOG_INITIAL_BUFFERS),
            in_flight: 0,
            capacity,
            latency,
            rx_watermark: 0,
            cut: false,
            cut_credits: capacity,
        }
    }

    /// Is there credit to put one more element on the wire?
    #[inline]
    pub fn has_credit(&self) -> bool {
        self.queue.len() + self.in_flight < self.capacity
    }

    /// Elements queued at the receiver.
    #[inline]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Elements waiting at the sender.
    #[inline]
    pub fn backlogged(&self) -> usize {
        self.backlog.len()
    }

    /// Total occupancy across all three stages.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.in_flight + self.backlog.len()
    }

    /// Drain records of the backlog matching `pred` into `out`, preserving
    /// relative order of both kept and drained elements. Used by DRRS'
    /// confirm-barrier output-cache redirection. Only handles move; the
    /// elements stay parked in `arena`.
    pub fn drain_backlog_matching(
        &mut self,
        arena: &RecordArena,
        pred: impl FnMut(&StreamElement) -> bool,
        out: &mut Vec<RecordRef>,
    ) {
        self.drain_backlog_matching_until(arena, pred, |_| false, out);
    }

    /// Like [`Self::drain_backlog_matching`] but stops scanning at the
    /// first element for which `fence` returns true (paper Fig. 9a: during
    /// checkpoint/scaling interplay, "redirection concludes at the
    /// [checkpoint] barrier").
    pub fn drain_backlog_matching_until(
        &mut self,
        arena: &RecordArena,
        mut pred: impl FnMut(&StreamElement) -> bool,
        mut fence: impl FnMut(&StreamElement) -> bool,
        out: &mut Vec<RecordRef>,
    ) {
        let mut kept = VecDeque::with_capacity(self.backlog.len());
        let mut fenced = false;
        for r in self.backlog.drain(..) {
            let e = &arena[r];
            if !fenced && fence(e) {
                fenced = true;
            }
            if !fenced && pred(e) {
                out.push(r);
            } else {
                kept.push_back(r);
            }
        }
        self.backlog = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn chan() -> Channel {
        Channel::new(ChannelId(0), InstId(0), InstId(1), 4, 100)
    }

    fn rec(arena: &mut RecordArena, key: u64) -> RecordRef {
        arena.insert(StreamElement::Record(Record::data(key, 0, 0)))
    }

    #[test]
    fn credit_accounting() {
        let mut arena = RecordArena::new();
        let mut c = chan();
        assert!(c.has_credit());
        c.in_flight = 2;
        c.queue.push_back(rec(&mut arena, 1));
        c.queue.push_back(rec(&mut arena, 2));
        assert!(!c.has_credit());
        c.in_flight = 1;
        assert!(c.has_credit());
    }

    #[test]
    fn occupancy_counts_all_stages() {
        let mut arena = RecordArena::new();
        let mut c = chan();
        c.queue.push_back(rec(&mut arena, 1));
        c.in_flight = 1;
        c.backlog.push_back(rec(&mut arena, 2));
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn drain_backlog_preserves_order() {
        let mut arena = RecordArena::new();
        let mut c = chan();
        for k in 0..6u64 {
            let r = rec(&mut arena, k);
            c.backlog.push_back(r);
        }
        let mut out = Vec::new();
        // Extract even keys.
        c.drain_backlog_matching(
            &arena,
            |e| e.as_record().map(|r| r.key % 2 == 0).unwrap_or(false),
            &mut out,
        );
        let drained: Vec<u64> = out
            .iter()
            .filter_map(|&h| arena[h].as_record().map(|r| r.key))
            .collect();
        let kept: Vec<u64> = c
            .backlog
            .iter()
            .filter_map(|&h| arena[h].as_record().map(|r| r.key))
            .collect();
        assert_eq!(drained, vec![0, 2, 4]);
        assert_eq!(kept, vec![1, 3, 5]);
    }
}
