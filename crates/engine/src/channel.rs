//! Channels: bounded, credit-based links between instances.
//!
//! A channel has three stages, mirroring Flink's network stack:
//!
//! ```text
//!   sender backlog  ──(credit available)──►  in flight  ──►  receiver queue
//!   (output buffers)       network latency                  (input buffers)
//! ```
//!
//! The receiver queue has `capacity` slots (credits). When it is full,
//! elements accumulate in the sender backlog; when the backlog passes the
//! block watermark the *sender instance stalls*, which is how backpressure
//! propagates hop by hop back to the sources — the effect behind the paper's
//! latency spikes and post-scaling throughput overshoot.

use std::collections::VecDeque;

use simcore::SimTime;

use crate::ids::{ChannelId, InstId};
use crate::record::StreamElement;

/// One directed channel between two instances.
pub struct Channel {
    /// Identifier (index into the world's channel table).
    pub id: ChannelId,
    /// Sending instance.
    pub from: InstId,
    /// Receiving instance.
    pub to: InstId,
    /// Receiver-side queue (input buffers).
    pub queue: VecDeque<StreamElement>,
    /// Sender-side backlog awaiting credit (output buffers).
    pub backlog: VecDeque<StreamElement>,
    /// Elements currently "on the wire".
    pub in_flight: usize,
    /// Receiver queue capacity (credits).
    pub capacity: usize,
    /// One-way latency.
    pub latency: SimTime,
    /// Highest watermark delivered over this channel (receiver-side view;
    /// the receiver's operator watermark is the min across its channels).
    pub rx_watermark: SimTime,
}

impl Channel {
    /// Create an empty channel. The receiver queue is pre-sized to its
    /// credit capacity (its hard occupancy bound), so steady-state traffic
    /// never grows it; the backlog starts small and doubles only under
    /// backpressure.
    pub fn new(id: ChannelId, from: InstId, to: InstId, capacity: usize, latency: SimTime) -> Self {
        Self {
            id,
            from,
            to,
            queue: VecDeque::with_capacity(capacity),
            backlog: VecDeque::with_capacity(16),
            in_flight: 0,
            capacity,
            latency,
            rx_watermark: 0,
        }
    }

    /// Is there credit to put one more element on the wire?
    #[inline]
    pub fn has_credit(&self) -> bool {
        self.queue.len() + self.in_flight < self.capacity
    }

    /// Elements queued at the receiver.
    #[inline]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Elements waiting at the sender.
    #[inline]
    pub fn backlogged(&self) -> usize {
        self.backlog.len()
    }

    /// Total occupancy across all three stages.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.in_flight + self.backlog.len()
    }

    /// Drain records of the backlog matching `pred` into `out`, preserving
    /// relative order of both kept and drained elements. Used by DRRS'
    /// confirm-barrier output-cache redirection.
    pub fn drain_backlog_matching(
        &mut self,
        pred: impl FnMut(&StreamElement) -> bool,
        out: &mut Vec<StreamElement>,
    ) {
        self.drain_backlog_matching_until(pred, |_| false, out);
    }

    /// Like [`Self::drain_backlog_matching`] but stops scanning at the
    /// first element for which `fence` returns true (paper Fig. 9a: during
    /// checkpoint/scaling interplay, "redirection concludes at the
    /// [checkpoint] barrier").
    pub fn drain_backlog_matching_until(
        &mut self,
        mut pred: impl FnMut(&StreamElement) -> bool,
        mut fence: impl FnMut(&StreamElement) -> bool,
        out: &mut Vec<StreamElement>,
    ) {
        let mut kept = VecDeque::with_capacity(self.backlog.len());
        let mut fenced = false;
        for e in self.backlog.drain(..) {
            if !fenced && fence(&e) {
                fenced = true;
            }
            if !fenced && pred(&e) {
                out.push(e);
            } else {
                kept.push_back(e);
            }
        }
        self.backlog = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn chan() -> Channel {
        Channel::new(ChannelId(0), InstId(0), InstId(1), 4, 100)
    }

    fn rec(key: u64) -> StreamElement {
        StreamElement::Record(Record::data(key, 0, 0))
    }

    #[test]
    fn credit_accounting() {
        let mut c = chan();
        assert!(c.has_credit());
        c.in_flight = 2;
        c.queue.push_back(rec(1));
        c.queue.push_back(rec(2));
        assert!(!c.has_credit());
        c.in_flight = 1;
        assert!(c.has_credit());
    }

    #[test]
    fn occupancy_counts_all_stages() {
        let mut c = chan();
        c.queue.push_back(rec(1));
        c.in_flight = 1;
        c.backlog.push_back(rec(2));
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn drain_backlog_preserves_order() {
        let mut c = chan();
        for k in 0..6u64 {
            c.backlog.push_back(rec(k));
        }
        let mut out = Vec::new();
        // Extract even keys.
        c.drain_backlog_matching(
            |e| e.as_record().map(|r| r.key % 2 == 0).unwrap_or(false),
            &mut out,
        );
        let drained: Vec<u64> = out
            .iter()
            .filter_map(|e| e.as_record().map(|r| r.key))
            .collect();
        let kept: Vec<u64> = c
            .backlog
            .iter()
            .filter_map(|e| e.as_record().map(|r| r.key))
            .collect();
        assert_eq!(drained, vec![0, 2, 4]);
        assert_eq!(kept, vec![1, 3, 5]);
    }
}
