//! Engine-level configuration: the knobs that correspond to the paper's
//! deployment settings (network, buffers, key-groups, deploy delay).

use crate::bus::BusSinkKind;
use simcore::time::{ms, SimTime};
use simcore::SchedulerBackend;

/// Engine configuration. Defaults model the paper's single-machine Docker
/// deployment: sub-millisecond network, 1 Gbps migration bandwidth, Flink's
/// credit-based buffers, and a multi-second container deploy delay.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of key-groups (128 single-machine, 256 cluster experiments).
    pub max_key_groups: u16,
    /// Sub-key-group fanout for hierarchical state organization (Meces).
    /// 1 = plain key-group granularity.
    pub sub_group_fanout: u8,
    /// One-way channel latency for data records.
    pub net_latency: SimTime,
    /// Latency for priority/control messages (trigger barriers, fetch
    /// requests) — these skip queues but still cross the wire.
    pub ctrl_latency: SimTime,
    /// Receiver-side queue capacity per channel, in records (Flink credits).
    pub channel_capacity: usize,
    /// Sender-side backlog high watermark: beyond this the sender blocks.
    pub backlog_block: usize,
    /// Backlog low watermark: the sender resumes below this.
    pub backlog_resume: usize,
    /// Migration link bandwidth, Gbps (paper: Gigabit Ethernet).
    pub migration_gbps: f64,
    /// State (de)serialization throughput, bytes/µs (part of the paper's Lo).
    pub ser_bytes_per_us: f64,
    /// Time for a newly deployed instance container to become operational
    /// (part of Lo: "physical resource initialization").
    pub deploy_delay: SimTime,
    /// Max records fused into one processing quantum (simulation efficiency;
    /// admissibility is still checked per record).
    pub quantum_records: usize,
    /// Max busy time per quantum.
    pub quantum_time: SimTime,
    /// Latency-marker injection period (paper: periodically inserted markers
    /// that bypass windowing operators).
    pub marker_interval: SimTime,
    /// Watermark emission period at sources.
    pub watermark_interval: SimTime,
    /// Checkpoint interval; `None` disables checkpointing.
    pub checkpoint_interval: Option<SimTime>,
    /// Per-instance snapshot cost per byte of state, µs (synchronous part).
    pub snapshot_us_per_mb: SimTime,
    /// Metric sampling period (cumulative-suspension series etc.).
    pub sample_interval: SimTime,
    /// Track per-key execution-order semantics (costs memory; on for tests,
    /// off for the big sensitivity grid).
    pub check_semantics: bool,
    /// Future-event-list backend. Behavior-neutral by contract (both
    /// backends pop identical sequences — `perf_report` digest-verifies
    /// this); the calendar queue is the fast default, the binary heap the
    /// A/B reference.
    pub scheduler: SchedulerBackend,
    /// Number of scheduler regions for conservative region-partitioned
    /// PDES (see `simcore::region`). 1 (the default) is the plain
    /// single-queue sequential engine — the reference every region count
    /// is digest-verified against. Behavior-neutral by contract: any
    /// region count pops the identical `(at, seq)` event order, so this
    /// knob is purely a performance axis like `scheduler`.
    pub regions: usize,
    /// Latency of a sender-resume notice crossing a region cut, µs. This
    /// is the PDES mode switch:
    ///
    /// * `0` (the default) — the engine keeps the merged-exact sequential
    ///   loop: receiver-side `pump()` wakes blocked senders synchronously
    ///   (a zero-lookahead reverse edge), every existing digest is
    ///   byte-identical to the `regions = 1` reference, and the
    ///   thread-per-region executor falls back to that sequential loop.
    /// * `> 0` with `regions > 1` — cut channels switch to a latency-
    ///   bearing credit protocol (credits return to the sender's region as
    ///   `CutCredit` events after this delay, as resume notices do in a
    ///   real deployment), reverse cut edges gain this much lookahead, and
    ///   regions may genuinely execute concurrently. Exactness is then
    ///   *parallel digest == sequential digest at the same
    ///   `resume_latency`* — a new semantic point, not the
    ///   `resume_latency = 0` timeline.
    pub resume_latency: SimTime,
    /// RNG seed for the run.
    pub seed: u64,
    /// Which sink the event/metrics bus feeds (see [`crate::bus`]).
    /// `Null` (the default) disables the bus entirely: publishing is a
    /// single branch and steady state allocates and hashes nothing, so
    /// every digest is byte-identical to a bus-less build. Behavior-
    /// neutral by contract for *any* sink: the bus observes, never
    /// steers.
    pub bus_sink: BusSinkKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_key_groups: 128,
            sub_group_fanout: 1,
            net_latency: ms(1),
            ctrl_latency: 300,
            channel_capacity: 256,
            backlog_block: 512,
            backlog_resume: 128,
            migration_gbps: 1.0,
            // Effective state extraction+serialization throughput. The
            // paper's measured scaling durations imply ~10-15 MB/s through
            // the Flink/JVM migration path (e.g. DRRS moves ~500 MB of
            // Twitch state in tens of seconds), far below wire speed.
            ser_bytes_per_us: 15.0,
            deploy_delay: ms(3_000),
            quantum_records: 64,
            quantum_time: ms(4),
            marker_interval: ms(100),
            watermark_interval: ms(200),
            checkpoint_interval: None,
            snapshot_us_per_mb: 200,
            sample_interval: ms(500),
            check_semantics: false,
            scheduler: SchedulerBackend::default(),
            regions: 1,
            resume_latency: 0,
            seed: 0xD225,
            bus_sink: BusSinkKind::Null,
        }
    }
}

impl EngineConfig {
    /// Convenience: a small, fast configuration for unit/integration tests.
    pub fn test() -> Self {
        Self {
            max_key_groups: 16,
            net_latency: 200,
            ctrl_latency: 50,
            ser_bytes_per_us: 1_500.0,
            deploy_delay: ms(100),
            marker_interval: ms(50),
            sample_interval: ms(100),
            check_semantics: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = EngineConfig::default();
        assert!(c.backlog_resume < c.backlog_block);
        assert!(c.channel_capacity > 0);
        assert!(c.quantum_records > 0);
        assert!(c.sub_group_fanout >= 1);
        assert_eq!(c.regions, 1, "the sequential engine is the default");
        assert_eq!(
            c.resume_latency, 0,
            "PDES mode is opt-in; 0 preserves the merged-exact timeline"
        );
        assert_eq!(
            c.bus_sink,
            BusSinkKind::Null,
            "the bus must be off by default: the Null sink is the \
             zero-cost steady-state contract"
        );
    }

    #[test]
    fn test_profile_checks_semantics() {
        assert!(EngineConfig::test().check_semantics);
    }

    #[test]
    fn default_scheduler_is_the_calendar_queue() {
        assert_eq!(
            EngineConfig::default().scheduler,
            SchedulerBackend::Calendar
        );
    }
}
