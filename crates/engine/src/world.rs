//! The executable world: instances, channels, the event loop, emission and
//! routing, backpressure, alignment, migration links, and the scaling
//! control plane.
//!
//! # Hot-path discipline
//!
//! The dispatch path (`Deliver` → `try_start` → `build_run` → `ProcDone` →
//! `apply_record` → `emit_records` → `route_record` → `send`) is
//! allocation-free and hash-free in steady state:
//!
//! * stream elements live exactly once in the world's [`RecordArena`];
//!   `send` parks the payload and everything downstream — sender backlog,
//!   the in-flight leg of `Ev::Deliver`, the receiver queue — moves 8-byte
//!   [`RecordRef`](crate::record::RecordRef) handles until `chan_pop`
//!   takes the element out,
//! * edge routing is dense: per-edge compacted (from, to) slots index a
//!   flat channel matrix and per-sender routing tables ([`EdgeRt`]),
//!   rebuilt only on scale events — no per-record map lookup remains,
//! * per-operator topology (`keyed_in_edges`, `pred_insts`) is cached on
//!   [`OperatorRt`] at build time and refreshed only on scale events,
//! * operator output goes through a reused `emit_scratch` buffer,
//! * quantum record buffers are recycled through `run_buf_pool`,
//! * round-robin routing scans the destination list in place instead of
//!   collecting eligible instances, cursors are dense per-edge slots, and
//!   the scale-in retiring probe is a bitset read,
//! * channel queues, the arena and the future-event list are pre-sized at
//!   build time.
//!
//! Keep it that way: if a change needs a temporary collection on any of
//! those paths, reuse a scratch buffer on `World` instead of allocating.

use simcore::time::{transfer_time, SimTime};

const MICROS_PER_SEC_DEFER: SimTime = 1_000_000;
use simcore::{DetRng, EventQueue};

use crate::bus::{Bus, BusEventKind};
use crate::channel::Channel;
use crate::config::EngineConfig;
use crate::events::{ControlMsg, ControlStore, Ev, PriorityMsg};
use crate::graph::{EdgeKind, EdgeRt, OperatorRt};
use crate::ids::{key_group_of, ChannelId, EdgeId, InstId, KeyGroup, OpId, SubscaleId};
use crate::instance::{CkptAlign, Instance, SourceState};
use crate::keygroup::{uniform_repartition, RoutingTable};
use crate::metrics::Metrics;
use crate::operator::{OpCtx, OpRole, WmCtx};
use crate::record::{Record, RecordArena, RecordKind, RecordRef, StreamElement};
use crate::scaling::{ScaleContext, ScalePlan, ScalePlugin, Selection};
use crate::semantics::SemanticsChecker;
use crate::state::{StateBackend, StateUnit};

/// Region-crossing event keys carry this bit (PDES mode). Cross events are
/// keyed explicitly — `CROSS_BIT | src_region << 48 | per-link counter` —
/// instead of drawing from the queue's global `seq` mint, so the
/// sequential reference engine and the thread-per-region replicas assign
/// the *same* key to the same message. Local mints stay far below this
/// bit, so at one instant inside one region all local events order before
/// all cross arrivals, identically in both engines.
pub const CROSS_BIT: u64 = 1 << 63;

/// How region-crossing deliveries travel in PDES mode
/// (`resume_latency > 0`, `regions > 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossMode {
    /// Push cross events straight into this world's own (multi-region)
    /// event list. This is the sequential PDES reference engine: one
    /// thread, one world, region-major pop order — the digest every
    /// parallel run is checked against.
    Inline,
    /// Stage cross events in [`World::take_outbox`] as plain-data
    /// [`CrossMsg`]s. The thread-per-region executor
    /// ([`crate::parallel`]) drains the outbox after each epoch slice and
    /// ships the messages over SPSC rings to the owning replica.
    Outbox,
}

/// A region-crossing message staged for the parallel executor. Plain data
/// (`Send`): the stream element travels **by value** between per-thread
/// world replicas — arena handles never cross a thread boundary.
#[derive(Debug)]
pub struct CrossMsg {
    /// Destination region.
    pub dst: usize,
    /// Absolute arrival time.
    pub at: SimTime,
    /// Explicit event key (see [`CROSS_BIT`]).
    pub key: u64,
    /// What arrives.
    pub payload: CrossPayload,
}

/// Payload of a [`CrossMsg`].
#[derive(Debug)]
pub enum CrossPayload {
    /// An element coming off the wire of a cut channel.
    Deliver {
        /// Target channel.
        ch: ChannelId,
        /// The element itself (re-parked in the receiving replica's arena).
        elem: StreamElement,
    },
    /// Credits returning to a cut channel's sender region.
    Credit {
        /// The cut channel whose sender gets the credits.
        ch: ChannelId,
        /// Number of credits returned.
        n: u32,
    },
}

/// The simulation world. Holds every entity; scaling mechanisms manipulate
/// it through the methods in the `impl` blocks below.
pub struct World {
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// Future event list.
    pub q: EventQueue<Ev>,
    /// Logical operators.
    pub ops: Vec<OperatorRt>,
    /// Physical instances.
    pub insts: Vec<Instance>,
    /// Channels.
    pub chans: Vec<Channel>,
    /// Every stream element currently queued, backlogged or on the wire
    /// lives here exactly once; channels and `Ev::Deliver` carry handles.
    pub arena: RecordArena,
    /// Edges.
    pub edges: Vec<EdgeRt>,
    /// Scaling context.
    pub scale: ScaleContext,
    /// Run metrics.
    pub metrics: Metrics,
    /// Operator/instance → scheduler-region assignment plus the lookahead
    /// matrix (trivial when `cfg.regions <= 1`). Region tags steer which
    /// per-region queue stores an event — never its pop order, which is
    /// the global `(at, seq)` total order for any region count (see
    /// `simcore::region`).
    pub region_map: crate::region::RegionMap,
    /// Per-key order checker (enabled via config).
    pub semantics: SemanticsChecker,
    /// Deterministic randomness.
    pub rng: DetRng,
    /// Scratch: records of the quantum each busy instance is executing.
    pending_runs: Vec<Vec<Record>>,
    /// Scratch: reusable operator-output buffer (`apply_record_basic`,
    /// watermark firing). Always drained back to empty after use.
    emit_scratch: Vec<Record>,
    /// Recycled quantum buffers: `build_run` pops, `on_proc_done` returns.
    run_buf_pool: Vec<Vec<Record>>,
    /// Next checkpoint id.
    next_ckpt: u64,
    /// Suspension series tracks instances of this op (set at scale time;
    /// defaults to all Transform ops).
    suspension_op: Option<OpId>,
    /// Is PDES mode active (`resume_latency > 0` and more than one
    /// region)? Frozen at build time. When false, nothing in the
    /// cut-channel credit machinery runs and every digest is byte-for-byte
    /// the merged-exact sequential timeline.
    pdes: bool,
    /// Where region-crossing events go in PDES mode (see [`CrossMode`]).
    cross_mode: CrossMode,
    /// Per ordered region pair `(src, dst)` counters minting cross-event
    /// keys (row-major `k × k`). Sender handlers run in the same relative
    /// order in every engine, so these counters — and thus the keys —
    /// agree between the sequential reference and the parallel replicas.
    cross_seq: Vec<u64>,
    /// Per-region RNG stripes for PDES mode: region-local draws (latency
    /// marker keys) must not share one global stream, or the draw order
    /// would depend on cross-region interleaving. Seeded from `cfg.seed`
    /// per region; unused when `pdes` is false.
    rngs: Vec<DetRng>,
    /// Staged outgoing cross messages (only in [`CrossMode::Outbox`]).
    outbox: Vec<CrossMsg>,
    /// Low-rate control side-channel: the rare, large
    /// `PriorityMsg`/`ControlMsg` payloads park here (slots recycled
    /// through a free list) while the queue-borne `Ev::Priority` /
    /// `Ev::Control` events carry only `u32` handles — no per-control-
    /// event allocation, and `Ev` stays at hot-variant size.
    pub ctrl: ControlStore,
    /// The event/metrics bus (see [`crate::bus`]). Default `Null` sink =
    /// disabled: publishing is a single branch and nothing is allocated.
    pub bus: Bus,
}

/// The predecessor list of `op`: all upstream instances feeding its keyed
/// inputs, deduped in discovery order. Single source of truth for the
/// `pred_insts` cache — build-time seeding and scale-time refresh must
/// never diverge.
fn compute_pred_insts(op: &OperatorRt, ops: &[OperatorRt], edges: &[EdgeRt]) -> Vec<InstId> {
    let mut preds: Vec<InstId> = Vec::new();
    for &e in &op.keyed_in_edges {
        let from_op = edges[e.0 as usize].from;
        for &fi in &ops[from_op.0 as usize].instances {
            if !preds.contains(&fi) {
                preds.push(fi);
            }
        }
    }
    preds
}

impl World {
    /// Lower builder output into a wired world. Called by
    /// [`JobBuilder::build`](crate::graph::JobBuilder::build).
    pub fn from_builder(
        cfg: EngineConfig,
        mut ops: Vec<OperatorRt>,
        edge_defs: Vec<(OpId, OpId, EdgeKind)>,
    ) -> Self {
        let mut rng = DetRng::seed(cfg.seed);
        let mut insts: Vec<Instance> = Vec::new();

        // Create instances.
        for op in ops.iter_mut() {
            let par = op.instances.len();
            for li in 0..par {
                let id = InstId(insts.len() as u32);
                let mut inst = Instance::new(
                    id,
                    op.id,
                    li,
                    StateBackend::new(cfg.max_key_groups, cfg.sub_group_fanout),
                );
                match op.role {
                    OpRole::Source => {
                        let gen = (op.source_factory.as_ref().expect("source factory"))(li);
                        let offset = (li as SimTime) * cfg.marker_interval / par.max(1) as SimTime;
                        let mut src = SourceState::new(gen, offset);
                        src.next_checkpoint = cfg.checkpoint_interval;
                        inst.source = Some(src);
                    }
                    OpRole::Transform => {
                        inst.logic = Some((op.logic_factory.as_ref().expect("logic factory"))());
                    }
                    OpRole::Sink => {}
                }
                op.instances[li] = id;
                insts.push(inst);
            }
        }

        // Create edges + channels.
        let mut edges: Vec<EdgeRt> = Vec::new();
        let mut chans: Vec<Channel> = Vec::new();
        for (from, to, kind) in edge_defs {
            let eid = EdgeId(edges.len() as u32);
            let mut edge = EdgeRt::new(eid, from, to, kind);
            let from_insts = ops[from.0 as usize].instances.clone();
            let to_insts = ops[to.0 as usize].instances.clone();
            for &fi in &from_insts {
                for &ti in &to_insts {
                    let cid = ChannelId(chans.len() as u32);
                    chans.push(Channel::new(
                        cid,
                        fi,
                        ti,
                        cfg.channel_capacity,
                        cfg.net_latency,
                    ));
                    edge.add_channel(fi, ti, cid);
                    insts[fi.0 as usize].out_channels.push(cid);
                    insts[ti.0 as usize].in_channels.push(cid);
                }
            }
            edge.rebuild_index(insts.len());
            if kind == EdgeKind::Keyed {
                for &fi in &from_insts {
                    edge.set_table(fi, RoutingTable::uniform(cfg.max_key_groups, &to_insts));
                }
            }
            ops[from.0 as usize].out_edges.push(eid);
            ops[to.0 as usize].in_edges.push(eid);
            if kind == EdgeKind::Keyed {
                ops[to.0 as usize].stateful = true;
            }
            // Seed initial key-group ownership at the downstream instances.
            if kind == EdgeKind::Keyed {
                let table = RoutingTable::uniform(cfg.max_key_groups, &to_insts);
                for g in 0..cfg.max_key_groups {
                    let owner = table.route(KeyGroup(g));
                    insts[owner.0 as usize].state.ensure_group(KeyGroup(g));
                }
            }
            edges.push(edge);
        }

        // Freeze the topology caches. Keyed in-edge lists never change
        // after lowering; predecessor lists are refreshed on scale events.
        for op in ops.iter_mut() {
            op.keyed_in_edges = op
                .in_edges
                .iter()
                .copied()
                .filter(|&e| edges[e.0 as usize].kind == EdgeKind::Keyed)
                .collect();
        }
        let pred_lists: Vec<Vec<InstId>> = ops
            .iter()
            .map(|op| compute_pred_insts(op, &ops, &edges))
            .collect();
        for (op, preds) in ops.iter_mut().zip(pred_lists) {
            op.pred_insts = preds;
        }

        // Dense per-edge round-robin cursors (edge count is now final).
        for inst in insts.iter_mut() {
            inst.rr_cursor = vec![0; edges.len()];
        }

        // Partition the operator graph into scheduler regions (trivial for
        // the default regions=1) before the event list exists — source
        // ticks below are already tagged.
        let region_map = if cfg.regions > 1 {
            crate::region::RegionMap::compute(
                cfg.regions,
                &ops,
                &edges,
                &chans,
                insts.len(),
                cfg.ctrl_latency,
                cfg.resume_latency,
            )
        } else {
            crate::region::RegionMap::single(ops.len(), insts.len())
        };

        // PDES mode: nonzero resume latency with a real partition. Cut
        // channels switch to the sender-owned credit protocol, same-instant
        // pop order becomes region-major, and randomness is striped per
        // region — all chosen so the sequential PDES engine and the
        // thread-per-region replicas produce identical digests.
        let pdes = cfg.resume_latency > 0 && region_map.k() > 1;
        if pdes {
            assert!(
                cfg.checkpoint_interval.is_none(),
                "PDES mode (resume_latency > 0, regions > 1) does not support \
                 periodic checkpointing: barrier alignment across cut channels \
                 is not wired into the credit protocol yet"
            );
            for c in chans.iter_mut() {
                if region_map.inst(c.from) != region_map.inst(c.to) {
                    c.cut = true;
                }
            }
        }

        // Pre-size the future-event list: in steady state it holds at most
        // a few events per instance (ticks, quanta) plus in-flight elements
        // bounded by per-channel credits. The backend comes from config;
        // both pop identical sequences, so this is a pure perf knob — and
        // so is the region count (any partitioning pops the identical
        // global `(at, seq)` order).
        let mut q = EventQueue::with_backend_regions(
            cfg.scheduler,
            insts.len() * 8 + chans.len() * 4 + 64,
            region_map.k(),
        );
        q.set_region_lookahead(region_map.lookahead());
        if pdes {
            q.set_region_major(true);
        }
        // Arm source ticks (jittered so they do not all fire in lockstep).
        for inst in insts.iter() {
            if inst.source.is_some() {
                let r = region_map.inst(inst.id);
                q.schedule_tagged(r, rng.below(1_000), Ev::SourceTick { inst: inst.id });
            }
        }
        q.schedule(cfg.sample_interval, Ev::Sample);
        let mut ctrl = ControlStore::new();
        if let Some(iv) = cfg.checkpoint_interval {
            let slot = ctrl.put_control(ControlMsg::CheckpointTick);
            q.schedule(iv, Ev::Control { slot });
        }

        let n = insts.len();
        let k = region_map.k();
        // Region-striped RNGs (PDES mode): splitmix-style per-region seeds
        // derived from the run seed.
        let rngs = (0..k)
            .map(|r| DetRng::seed(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1)))
            .collect();
        // Pre-size the arena to the steady-state bound: live elements are
        // capped by per-channel credits plus modest backlogs.
        let arena = RecordArena::with_capacity(chans.len() * (cfg.channel_capacity + 4) + 64);
        let bus = Bus::new(cfg.bus_sink);
        World {
            cfg,
            q,
            ops,
            insts,
            chans,
            arena,
            edges,
            scale: ScaleContext::default(),
            metrics: Metrics::default(),
            region_map,
            semantics: SemanticsChecker::new(),
            rng,
            pending_runs: (0..n).map(|_| Vec::new()).collect(),
            emit_scratch: Vec::with_capacity(16),
            run_buf_pool: Vec::new(),
            next_ckpt: 0,
            suspension_op: None,
            pdes,
            cross_mode: CrossMode::Inline,
            cross_seq: vec![0; k * k],
            rngs,
            outbox: Vec::new(),
            ctrl,
            bus,
        }
    }

    /// Is PDES mode active (`resume_latency > 0` and more than one
    /// region)?
    #[inline]
    pub fn pdes(&self) -> bool {
        self.pdes
    }

    /// Select where region-crossing events go (PDES mode only — see
    /// [`CrossMode`]). The thread-per-region executor flips its replicas
    /// to [`CrossMode::Outbox`] before running.
    pub fn set_cross_mode(&mut self, mode: CrossMode) {
        debug_assert!(
            self.pdes || mode == CrossMode::Inline,
            "cross mode is meaningless outside PDES mode"
        );
        self.cross_mode = mode;
    }

    /// Take the staged outgoing cross messages (see [`CrossMode::Outbox`]).
    /// Returns the internal buffer by value; hand the (drained) vector
    /// back via [`Self::put_outbox_scratch`] to avoid reallocating.
    pub fn take_outbox(&mut self) -> Vec<CrossMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Return a drained outbox buffer so its allocation is reused. Only
    /// installs the buffer when no new messages were staged in between
    /// (the executor takes/puts around a dispatch-free drain, so this is
    /// always the case there).
    pub fn put_outbox_scratch(&mut self, mut scratch: Vec<CrossMsg>) {
        scratch.clear();
        if self.outbox.is_empty() && self.outbox.capacity() < scratch.capacity() {
            self.outbox = scratch;
        }
    }

    /// Apply a cross message shipped from another replica: re-park the
    /// element (or credit notice) in this world under its explicit key.
    /// Counterpart of the [`CrossMode::Outbox`] send side.
    pub fn apply_cross_msg(&mut self, m: CrossMsg) {
        match m.payload {
            CrossPayload::Deliver { ch, elem } => {
                let r = self.arena.insert(elem);
                self.q.push_keyed(
                    m.dst,
                    m.at,
                    m.key,
                    Ev::Deliver {
                        ch,
                        elem: r,
                        credited: false,
                    },
                );
            }
            CrossPayload::Credit { ch, n } => {
                self.q
                    .push_keyed(m.dst, m.at, m.key, Ev::CutCredit { ch, n });
            }
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Scheduler region of an instance (0 on a single-region world).
    #[inline]
    fn reg(&self, inst: InstId) -> usize {
        self.region_map.inst(inst)
    }

    /// The operator an instance belongs to.
    pub fn op_of(&self, inst: InstId) -> &OperatorRt {
        &self.ops[self.insts[inst.0 as usize].op.0 as usize]
    }

    /// Key-group of a key under this world's configuration.
    #[inline]
    pub fn kg_of(&self, key: u64) -> KeyGroup {
        key_group_of(key, self.cfg.max_key_groups)
    }

    /// Keyed input edges of an operator (cached at build time — edges are
    /// fixed after lowering).
    #[inline]
    pub fn keyed_in_edges(&self, op: OpId) -> &[EdgeId] {
        &self.ops[op.0 as usize].keyed_in_edges
    }

    /// Wrap a priority message into its queue-borne event: the payload
    /// parks in the control side-channel, the event carries the slot.
    // checker:hot-path
    #[inline]
    fn ev_priority(&mut self, to: InstId, msg: PriorityMsg) -> Ev {
        Ev::Priority {
            to,
            slot: self.ctrl.put_priority(msg),
        }
    }

    /// Wrap a control command into its queue-borne event (see
    /// [`ev_priority`](Self::ev_priority)).
    // checker:hot-path
    #[inline]
    fn ev_control(&mut self, cmd: ControlMsg) -> Ev {
        Ev::Control {
            slot: self.ctrl.put_control(cmd),
        }
    }

    /// Schedule a plugin timer.
    pub fn schedule_plugin(&mut self, delay: SimTime, tag: u64) {
        let ev = self.ev_control(ControlMsg::Plugin(tag));
        self.q.schedule(delay, ev);
    }

    /// Schedule a generic instance wake-up.
    pub fn wake(&mut self, inst: InstId) {
        let r = self.reg(inst);
        self.q.schedule_tagged(r, 0, Ev::Wake { inst });
    }

    /// Request a rescale of `op` to `new_parallelism` at time `at`, with the
    /// paper's default uniform re-partitioning.
    pub fn schedule_scale(&mut self, at: SimTime, op: OpId, new_parallelism: usize) {
        self.schedule_scale_with(
            at,
            op,
            new_parallelism,
            crate::keygroup::Repartition::Uniform,
        );
    }

    /// Request a rescale with an explicit re-partitioning strategy.
    pub fn schedule_scale_with(
        &mut self,
        at: SimTime,
        op: OpId,
        new_parallelism: usize,
        strategy: crate::keygroup::Repartition,
    ) {
        let old = self.ops[op.0 as usize].instances.len();
        let ev = self.ev_control(ControlMsg::StartScale(ScalePlan {
            op,
            old_parallelism: old,
            new_parallelism,
            strategy,
            moves: Vec::new(),
        }));
        self.q.schedule_at(at, ev);
    }

    // -----------------------------------------------------------------
    // Channel primitives
    // -----------------------------------------------------------------

    /// Send an element over a channel, respecting credits and backlog. The
    /// element is parked in the arena here — its single resting place until
    /// consumption — and only its handle moves through backlog, wire and
    /// receiver queue.
    pub fn send(&mut self, ch: ChannelId, elem: StreamElement) {
        if self.pdes && self.chans[ch.0 as usize].cut {
            self.send_cut(ch, elem);
            return;
        }
        let r = self.arena.insert(elem);
        let c = &mut self.chans[ch.0 as usize];
        if c.backlog.is_empty() && c.has_credit() {
            c.in_flight += 1;
            let lat = c.latency;
            // Deliveries dispatch in the *receiver's* region — on a cut
            // channel this is the cross-region hop whose wire latency is
            // the forward lookahead.
            let reg = self.region_map.inst(c.to);
            self.q.schedule_tagged(
                reg,
                lat,
                Ev::Deliver {
                    ch,
                    elem: r,
                    credited: true,
                },
            );
        } else {
            c.backlog.push_back(r);
            if c.backlog.len() >= self.cfg.backlog_block {
                let from = c.from;
                if !self.insts[from.0 as usize].blocked_out {
                    self.insts[from.0 as usize].blocked_out = true;
                    let reg = self.reg(from) as u8;
                    self.bus.publish(
                        self.q.now(),
                        reg,
                        BusEventKind::BackpressureBlock { inst: from.0 },
                    );
                }
            }
        }
    }

    /// Send a control element bypassing the backlog and credits (used for
    /// barriers that are "priority in the output cache"). On a cut channel
    /// in PDES mode the element still travels as a keyed cross delivery —
    /// uncredited in both engines, so credit accounting is untouched
    /// either way.
    pub fn send_uncredited(&mut self, ch: ChannelId, elem: StreamElement) {
        let r = self.arena.insert(elem);
        if self.pdes && self.chans[ch.0 as usize].cut {
            self.cross_deliver_ref(ch, r);
            return;
        }
        let lat = self.chans[ch.0 as usize].latency;
        let reg = self.region_map.inst(self.chans[ch.0 as usize].to);
        self.q.schedule_tagged(
            reg,
            lat,
            Ev::Deliver {
                ch,
                elem: r,
                credited: false,
            },
        );
    }

    /// `send` for a cut channel in PDES mode: the sender-owned credit pool
    /// replaces `has_credit()`'s receiver-side reads, so this path touches
    /// no receiver state at all — the property that lets the two channel
    /// endpoints live on different threads.
    fn send_cut(&mut self, ch: ChannelId, elem: StreamElement) {
        let r = self.arena.insert(elem);
        let c = &mut self.chans[ch.0 as usize];
        if c.backlog.is_empty() && c.cut_credits > 0 {
            c.cut_credits -= 1;
            self.cross_deliver_ref(ch, r);
        } else {
            c.backlog.push_back(r);
            if c.backlog.len() >= self.cfg.backlog_block {
                let from = c.from;
                if !self.insts[from.0 as usize].blocked_out {
                    self.insts[from.0 as usize].blocked_out = true;
                    let reg = self.reg(from) as u8;
                    self.bus.publish(
                        self.q.now(),
                        reg,
                        BusEventKind::BackpressureBlock { inst: from.0 },
                    );
                }
            }
        }
    }

    /// Put one arena-parked element on the wire of a cut channel: mint the
    /// explicit cross key and either push it into this world's own queue
    /// (sequential reference) or stage a by-value [`CrossMsg`] for the
    /// executor (see [`CrossMode`]). Always uncredited — cut channels
    /// account credits on the sender side only.
    fn cross_deliver_ref(&mut self, ch: ChannelId, r: RecordRef) {
        let (lat, src, dst) = {
            let c = &self.chans[ch.0 as usize];
            (
                c.latency,
                self.region_map.inst(c.from),
                self.region_map.inst(c.to),
            )
        };
        let at = self.now() + lat;
        let key = self.mint_cross_key(src, dst);
        match self.cross_mode {
            CrossMode::Inline => {
                self.q.push_keyed(
                    dst,
                    at,
                    key,
                    Ev::Deliver {
                        ch,
                        elem: r,
                        credited: false,
                    },
                );
            }
            CrossMode::Outbox => {
                let elem = self.arena.remove(r);
                self.outbox.push(CrossMsg {
                    dst,
                    at,
                    key,
                    payload: CrossPayload::Deliver { ch, elem },
                });
            }
        }
    }

    /// Receiver side of the cut-credit protocol: after popping an element
    /// off a cut channel, notify the *sender's* region that one credit is
    /// free — after `resume_latency`, as a resume notice would take in a
    /// real deployment. This latency is exactly the reverse-edge lookahead
    /// in the region matrix.
    fn return_cut_credit(&mut self, ch: ChannelId) {
        let (src, dst) = {
            let c = &self.chans[ch.0 as usize];
            (self.region_map.inst(c.to), self.region_map.inst(c.from))
        };
        let at = self.now() + self.cfg.resume_latency;
        let key = self.mint_cross_key(src, dst);
        match self.cross_mode {
            CrossMode::Inline => {
                self.q.push_keyed(dst, at, key, Ev::CutCredit { ch, n: 1 });
            }
            CrossMode::Outbox => {
                self.outbox.push(CrossMsg {
                    dst,
                    at,
                    key,
                    payload: CrossPayload::Credit { ch, n: 1 },
                });
            }
        }
    }

    /// Mint the next cross-event key for the ordered region pair
    /// `(src, dst)` (see [`CROSS_BIT`]).
    #[inline]
    fn mint_cross_key(&mut self, src: usize, dst: usize) -> u64 {
        let k = self.region_map.k();
        let ctr = &mut self.cross_seq[src * k + dst];
        let key = CROSS_BIT | ((src as u64) << 48) | *ctr;
        *ctr += 1;
        key
    }

    /// Send a priority message out-of-band to an instance.
    pub fn send_priority(&mut self, to: InstId, msg: PriorityMsg) {
        let lat = self.cfg.ctrl_latency;
        let reg = self.reg(to);
        let ev = self.ev_priority(to, msg);
        self.q.schedule_tagged(reg, lat, ev);
    }

    /// Move backlog elements onto the wire while credit allows, and unblock
    /// the sender if all its backlogs drained below the resume watermark.
    pub fn pump(&mut self, ch: ChannelId) {
        loop {
            let c = &mut self.chans[ch.0 as usize];
            if c.backlog.is_empty() || !c.has_credit() {
                break;
            }
            let r = c.backlog.pop_front().expect("non-empty");
            c.in_flight += 1;
            let lat = c.latency;
            let reg = self.region_map.inst(c.to);
            self.q.schedule_tagged(
                reg,
                lat,
                Ev::Deliver {
                    ch,
                    elem: r,
                    credited: true,
                },
            );
        }
        // Hysteresis: unblock the sender when every outgoing backlog is low.
        let from = self.chans[ch.0 as usize].from;
        if self.insts[from.0 as usize].blocked_out {
            let resume = self.cfg.backlog_resume;
            let clear = self.insts[from.0 as usize]
                .out_channels
                .iter()
                .all(|&oc| self.chans[oc.0 as usize].backlogged() < resume);
            if clear {
                self.insts[from.0 as usize].blocked_out = false;
                let reg = self.reg(from) as u8;
                self.bus.publish(
                    self.q.now(),
                    reg,
                    BusEventKind::BackpressureResume { inst: from.0 },
                );
                self.wake(from);
            }
        }
    }

    /// Pop the front element of a channel, refilling from the backlog. The
    /// element leaves the arena here — the single payload move on the
    /// consume side.
    pub fn chan_pop(&mut self, ch: ChannelId) -> Option<StreamElement> {
        match self.chans[ch.0 as usize].queue.pop_front() {
            Some(r) => {
                self.after_chan_pop(ch);
                Some(self.arena.remove(r))
            }
            None => None,
        }
    }

    /// Remove the element at queue position `idx` (intra-channel
    /// scheduling). Position 0 is the front.
    pub fn chan_remove_at(&mut self, ch: ChannelId, idx: usize) -> Option<StreamElement> {
        match self.chans[ch.0 as usize].queue.remove(idx) {
            Some(r) => {
                self.after_chan_pop(ch);
                Some(self.arena.remove(r))
            }
            None => None,
        }
    }

    /// A receiver-queue slot just freed: refill the channel. On a cut
    /// channel in PDES mode the freed credit travels back to the sender's
    /// region as a latency-bearing `CutCredit` event; everywhere else the
    /// synchronous `pump` runs as before.
    #[inline]
    fn after_chan_pop(&mut self, ch: ChannelId) {
        if self.pdes && self.chans[ch.0 as usize].cut {
            self.return_cut_credit(ch);
        } else {
            self.pump(ch);
        }
    }

    /// Peek the element at the front of a channel's receiver queue.
    #[inline]
    pub fn chan_front(&self, ch: ChannelId) -> Option<&StreamElement> {
        self.chans[ch.0 as usize]
            .queue
            .front()
            .map(|&r| &self.arena[r])
    }

    /// Peek the element at receiver-queue position `idx` (0 = front).
    #[inline]
    pub fn chan_peek(&self, ch: ChannelId, idx: usize) -> Option<&StreamElement> {
        self.chans[ch.0 as usize]
            .queue
            .get(idx)
            .map(|&r| &self.arena[r])
    }

    /// Channel between two instances on an edge.
    pub fn channel_between(&self, edge: EdgeId, from: InstId, to: InstId) -> Option<ChannelId> {
        self.edges[edge.0 as usize].channel(from, to)
    }

    // -----------------------------------------------------------------
    // Emission & routing
    // -----------------------------------------------------------------

    /// Emit records produced by `inst` onto all its out edges, draining the
    /// buffer (its capacity is preserved so callers can reuse it).
    pub fn emit_records(&mut self, inst: InstId, records: &mut Vec<Record>) {
        let mut taken = std::mem::take(records);
        for rec in taken.drain(..) {
            self.emit_one(inst, rec);
        }
        // Hand the (empty, capacity-preserving) allocation back.
        *records = taken;
    }

    /// Emit one record produced by `inst` (stamps the origin sequence).
    pub fn emit_one(&mut self, inst: InstId, mut rec: Record) {
        let seq = self.insts[inst.0 as usize].next_seq();
        rec.origin = (inst, seq);
        self.fan_out(inst, rec);
    }

    /// Route an already-stamped record onto every out edge of `inst`,
    /// cloning only for all-but-the-last edge (single-edge operators — the
    /// common case — move the record straight through).
    fn fan_out(&mut self, inst: InstId, rec: Record) {
        let opi = self.insts[inst.0 as usize].op.0 as usize;
        let n = self.ops[opi].out_edges.len();
        for k in 0..n {
            let e = self.ops[opi].out_edges[k];
            if k + 1 == n {
                self.route_record(inst, e, rec);
                return;
            }
            self.route_record(inst, e, rec.clone());
        }
    }

    fn route_record(&mut self, from: InstId, eid: EdgeId, rec: Record) {
        let edge = &self.edges[eid.0 as usize];
        let kind = edge.kind;
        match kind {
            EdgeKind::Keyed if rec.kind == RecordKind::Data => {
                let kg = key_group_of(rec.key, self.cfg.max_key_groups);
                let dest = edge
                    .table(from)
                    .unwrap_or_else(|| panic!("no routing table for {from} on edge {}", eid.0))
                    .route(kg);
                let ch = edge.channel_of(from, dest);
                self.send(ch, StreamElement::Record(rec));
            }
            _ => {
                // Rebalance, broadcast, and all markers: markers round-robin
                // over operational destinations so they sample every path.
                if kind == EdgeKind::Broadcast && rec.kind == RecordKind::Data {
                    let toi = edge.to.0 as usize;
                    let n = self.ops[toi].instances.len();
                    for k in 0..n {
                        let ti = self.ops[toi].instances[k];
                        let ch = self.edges[eid.0 as usize].channel_of(from, ti);
                        if k + 1 == n {
                            self.send(ch, StreamElement::Record(rec));
                            return;
                        }
                        self.send(ch, StreamElement::Record(rec.clone()));
                    }
                    return;
                }
                // Round-robin only over operational, non-retiring
                // destinations: freshly deployed instances must not swallow
                // traffic (or markers) while their container is still
                // initializing, and retiring instances receive nothing new.
                // Two in-place scans (count, then pick) keep this
                // allocation-free; destination lists are a handful of
                // instances, and the retiring probe is a bitset read.
                let now = self.now();
                let toi = self.edges[eid.0 as usize].to.0 as usize;
                let eligible = |w: &World, i: InstId| {
                    w.insts[i.0 as usize].operational_at <= now && !w.scale.retiring.contains(i)
                };
                let mut count = 0usize;
                for k in 0..self.ops[toi].instances.len() {
                    let i = self.ops[toi].instances[k];
                    if eligible(self, i) {
                        count += 1;
                    }
                }
                if count == 0 {
                    return;
                }
                let cursor = {
                    let c = &mut self.insts[from.0 as usize].rr_cursor[eid.0 as usize];
                    *c += 1;
                    *c
                };
                let pick = cursor % count;
                let mut seen = 0usize;
                for k in 0..self.ops[toi].instances.len() {
                    let i = self.ops[toi].instances[k];
                    if eligible(self, i) {
                        if seen == pick {
                            let ch = self.edges[eid.0 as usize].channel_of(from, i);
                            self.send(ch, StreamElement::Record(rec));
                            return;
                        }
                        seen += 1;
                    }
                }
                unreachable!("pick < count");
            }
        }
    }

    /// Broadcast a watermark from `inst` on every out channel.
    pub fn broadcast_watermark(&mut self, inst: InstId, wm: SimTime) {
        let n = self.insts[inst.0 as usize].out_channels.len();
        for k in 0..n {
            let ch = self.insts[inst.0 as usize].out_channels[k];
            self.send(ch, StreamElement::Watermark(wm));
        }
    }

    fn broadcast_ckpt(&mut self, inst: InstId, id: u64) {
        let n = self.insts[inst.0 as usize].out_channels.len();
        for k in 0..n {
            let ch = self.insts[inst.0 as usize].out_channels[k];
            self.send(ch, StreamElement::CheckpointBarrier(id));
        }
    }

    // -----------------------------------------------------------------
    // Routing-table updates (used by scaling mechanisms)
    // -----------------------------------------------------------------

    /// Update one predecessor's routing for a set of key-groups on every
    /// keyed input edge of the scaling operator. (The touched edges are
    /// exactly [`Self::keyed_in_edges`]; callers that need them can read
    /// the cache directly.)
    pub fn reroute_groups(&mut self, op: OpId, pred: InstId, kgs: &[KeyGroup], to: InstId) {
        let n = self.ops[op.0 as usize].keyed_in_edges.len();
        for k in 0..n {
            let e = self.ops[op.0 as usize].keyed_in_edges[k];
            if let Some(t) = self.edges[e.0 as usize].table_mut(pred) {
                for &kg in kgs {
                    t.set(kg, to);
                }
            }
        }
    }

    /// All upstream instances feeding the keyed inputs of `op` (cached;
    /// refreshed whenever an upstream instance list changes).
    #[inline]
    pub fn predecessors(&self, op: OpId) -> &[InstId] {
        &self.ops[op.0 as usize].pred_insts
    }

    /// Rebuild the cached predecessor lists of every operator downstream
    /// of `op`. Must be called whenever `op`'s instance list changes
    /// (scale-out instance creation, retirement removal).
    fn refresh_pred_caches_after(&mut self, op: OpId) {
        let outs = self.ops[op.0 as usize].out_edges.clone();
        for e in outs {
            let to = self.edges[e.0 as usize].to;
            let preds = compute_pred_insts(&self.ops[to.0 as usize], &self.ops, &self.edges);
            self.ops[to.0 as usize].pred_insts = preds;
        }
    }

    // -----------------------------------------------------------------
    // Migration links
    // -----------------------------------------------------------------

    /// Extract a whole key-group at `from` and enqueue its units for
    /// migration to `to` under `subscale`.
    pub fn migrate_group(&mut self, from: InstId, to: InstId, kg: KeyGroup, subscale: SubscaleId) {
        let units = self.insts[from.0 as usize].state.extract_group(kg);
        for u in units {
            self.enqueue_unit(from, to, u, subscale);
        }
    }

    /// Extract a single sub-group and enqueue it.
    pub fn migrate_unit(
        &mut self,
        from: InstId,
        to: InstId,
        kg: KeyGroup,
        sub: u8,
        subscale: SubscaleId,
    ) -> bool {
        match self.insts[from.0 as usize].state.extract(kg, sub) {
            Some(u) => {
                self.enqueue_unit(from, to, u, subscale);
                true
            }
            None => false,
        }
    }

    fn enqueue_unit(&mut self, from: InstId, to: InstId, unit: StateUnit, subscale: SubscaleId) {
        self.scale
            .unit_loc
            .insert((unit.kg.0, unit.sub), (from, Some(to)));
        let link = self.scale.links.entry(from).or_default();
        link.queue.push_back((to, unit, subscale));
        if !link.busy {
            self.link_start(from);
        }
    }

    fn link_start(&mut self, from: InstId) {
        let now = self.now();
        let Some(link) = self.scale.links.get_mut(&from) else {
            return;
        };
        let Some((_to, unit, ss)) = link.queue.front() else {
            link.busy = false;
            return;
        };
        link.busy = true;
        let bytes = unit.bytes();
        let ss = *ss;
        let dur = (bytes as f64 / self.cfg.ser_bytes_per_us).ceil() as SimTime
            + transfer_time(bytes, self.cfg.migration_gbps)
            + 1;
        self.scale.metrics.first_migration.entry(ss).or_insert(now);
        self.scale.metrics.bytes_transferred += bytes;
        let reg = self.reg(from);
        self.q.schedule_tagged(reg, dur, Ev::LinkSendDone { from });
    }

    /// Install a migrated unit at `inst`. `active = false` keeps the
    /// key-group present-but-inactive (DRRS implicit alignment).
    pub fn install_unit(&mut self, inst: InstId, unit: StateUnit, active: bool) {
        let key = (unit.kg.0, unit.sub);
        let now = self.now();
        self.scale.metrics.unit_installed.insert(key, now);
        *self.scale.metrics.unit_migrations.entry(key).or_insert(0) += 1;
        self.scale.unit_loc.insert(key, (inst, None));
        self.insts[inst.0 as usize].state.install(unit, active);
        self.check_scale_complete();
        self.wake(inst);
    }

    fn check_scale_complete(&mut self) {
        if !self.scale.in_progress {
            return;
        }
        let done = self
            .scale
            .plan
            .as_ref()
            .map(|p| {
                p.moves
                    .iter()
                    .all(|m| self.insts[m.to.0 as usize].state.holds_group(m.kg))
            })
            .unwrap_or(false);
        if done {
            self.scale.in_progress = false;
            self.scale.metrics.migration_done = Some(self.now());
        }
    }

    // -----------------------------------------------------------------
    // Alignment-style channel blocking (checkpoints + coupled barriers)
    // -----------------------------------------------------------------

    /// Block consumption from a channel at its receiver.
    pub fn block_channel(&mut self, ch: ChannelId) {
        let to = self.chans[ch.0 as usize].to;
        self.insts[to.0 as usize].blocked_channels.insert(ch);
    }

    /// Unblock a channel and wake the receiver.
    pub fn unblock_channel(&mut self, ch: ChannelId) {
        let to = self.chans[ch.0 as usize].to;
        self.insts[to.0 as usize].blocked_channels.remove(&ch);
        self.wake(to);
    }

    // -----------------------------------------------------------------
    // Stop-restart support
    // -----------------------------------------------------------------

    /// Halt every instance (global stop). Sources keep *generating* (the
    /// Kafka backlog grows) but nothing is drained or processed.
    pub fn halt_all(&mut self) {
        for i in &mut self.insts {
            i.halted = true;
        }
    }

    /// Resume every instance after a halt.
    pub fn resume_all(&mut self) {
        let ids: Vec<InstId> = self.insts.iter().map(|i| i.id).collect();
        for i in &mut self.insts {
            i.halted = false;
        }
        for id in ids {
            self.wake(id);
        }
    }

    /// A deterministic digest of the run's observable state: metrics,
    /// per-instance progress, state sizes and watermarks. Two runs with the
    /// same seed and timeline must produce identical digests — the
    /// regression guard for every hot-path data-structure swap.
    /// Delegates to [`Observables::digest`] so a sequential world and a
    /// merge of parallel replicas hash the exact same serialization.
    pub fn metrics_digest(&self) -> u64 {
        self.observables().digest()
    }

    /// Snapshot everything [`Self::metrics_digest`] hashes into a
    /// plain-data, `Send` value. The thread-per-region executor collects
    /// one per replica and [`Observables::merge`]s them into the view the
    /// sequential engine would have produced.
    pub fn observables(&self) -> Observables {
        Observables {
            sink_records: self.metrics.sink_records,
            processed: self.q.processed(),
            latency: self.metrics.latency.points().to_vec(),
            source_counts: self.metrics.source_counts.clone(),
            violations: self.semantics.violations(),
            per_inst: self
                .insts
                .iter()
                .map(|i| InstObservables {
                    processed: i.processed,
                    watermark: i.watermark,
                    state_bytes: i.state.total_bytes(),
                    state_keys: i.state.total_keys() as u64,
                    suspended_total: i.suspended_total,
                })
                .collect(),
            inst_regions: self
                .insts
                .iter()
                .map(|i| self.region_map.inst(i.id) as u8)
                .collect(),
            bytes_transferred: self.scale.metrics.bytes_transferred,
            now: self.now(),
        }
    }

    /// Total nominal state bytes across instances of an operator.
    pub fn op_state_bytes(&self, op: OpId) -> u64 {
        self.ops[op.0 as usize]
            .instances
            .iter()
            .map(|&i| self.insts[i.0 as usize].state.total_bytes())
            .sum()
    }
}

// ---------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------

impl World {
    /// Handle one event. The driver ([`Sim`]) owns the plugin.
    pub fn dispatch(&mut self, plugin: &mut dyn ScalePlugin, ev: Ev) {
        match ev {
            Ev::SourceTick { inst } => self.on_source_tick(plugin, inst),
            Ev::Deliver { ch, elem, credited } => {
                let c = &mut self.chans[ch.0 as usize];
                if credited {
                    // A credited delivery without a matching in-flight
                    // element is a credit-accounting bug — surface it loudly
                    // in debug builds instead of silently clamping.
                    debug_assert!(
                        c.in_flight > 0,
                        "credited Deliver on {:?} with in_flight == 0",
                        c.id
                    );
                    c.in_flight = c.in_flight.saturating_sub(1);
                }
                c.queue.push_back(elem);
                let to = c.to;
                self.try_start(plugin, to);
            }
            Ev::Priority { to, slot } => {
                let msg = self.ctrl.take_priority(slot);
                self.on_priority(plugin, to, msg)
            }
            Ev::ProcDone { inst, gen } => self.on_proc_done(plugin, inst, gen),
            Ev::LinkSendDone { from } => self.on_link_done(plugin, from),
            Ev::Control { slot } => {
                let cmd = self.ctrl.take_control(slot);
                self.on_control(plugin, cmd)
            }
            Ev::CutCredit { ch, n } => self.on_cut_credit(ch, n),
            Ev::Sample => self.on_sample(),
            Ev::Wake { inst } => self.try_start(plugin, inst),
        }
    }

    /// Credits returned to a cut channel's sender (PDES mode): grow the
    /// sender-owned pool, drain backlog onto the wire while credit lasts,
    /// and apply the same hysteresis unblock `pump` uses.
    fn on_cut_credit(&mut self, ch: ChannelId, n: u32) {
        self.chans[ch.0 as usize].cut_credits += n as usize;
        loop {
            let c = &mut self.chans[ch.0 as usize];
            if c.backlog.is_empty() || c.cut_credits == 0 {
                break;
            }
            c.cut_credits -= 1;
            let r = c.backlog.pop_front().expect("non-empty");
            self.cross_deliver_ref(ch, r);
        }
        let from = self.chans[ch.0 as usize].from;
        if self.insts[from.0 as usize].blocked_out {
            let resume = self.cfg.backlog_resume;
            let clear = self.insts[from.0 as usize]
                .out_channels
                .iter()
                .all(|&oc| self.chans[oc.0 as usize].backlogged() < resume);
            if clear {
                self.insts[from.0 as usize].blocked_out = false;
                let reg = self.reg(from) as u8;
                self.bus.publish(
                    self.q.now(),
                    reg,
                    BusEventKind::BackpressureResume { inst: from.0 },
                );
                self.wake(from);
            }
        }
    }

    /// Dispatch a whole same-instant run (drained by `pop_run_at_most`),
    /// fusing massed `Deliver` bursts: when consecutive deliveries target
    /// the same channel and the receiver provably cannot start work, the
    /// per-event `try_start` is skipped and the credit decrement is
    /// batched into one channel borrow per (channel, streak).
    ///
    /// **Exactness.** Single-pop semantics per delivery are
    /// `in_flight -= 1; queue.push_back; try_start(to)`. `try_start`
    /// returns without any side effect when the receiver is halted, busy,
    /// not yet operational, or output-blocked (for a source,
    /// `drain_source` breaks immediately on `blocked_out`) — and none of
    /// those guard fields can change while we only push handles and count
    /// credits, so skipping those calls is observationally identical. The
    /// moment a delivery's `try_start` is *not* provably a no-op, the
    /// deferred credits are flushed first — `try_start → build_run →
    /// chan_pop → pump` reads `has_credit()`, which must see the exact
    /// sequential `in_flight`. Deliveries are still pushed strictly one
    /// at a time before their own `try_start` (batching the pushes would
    /// let the first quantum see later records). The cross-dispatch
    /// digest check in `perf_report` enforces all of this.
    pub fn dispatch_run(&mut self, plugin: &mut dyn ScalePlugin, buf: &mut Vec<Ev>) {
        // Deferred credit decrements for the current Deliver streak.
        let mut cur: Option<(ChannelId, usize)> = None;
        macro_rules! flush {
            () => {
                if let Some((ch, credits)) = cur.take() {
                    if credits > 0 {
                        let c = &mut self.chans[ch.0 as usize];
                        debug_assert!(
                            c.in_flight >= credits,
                            "batched credit underflow on {:?}",
                            c.id
                        );
                        c.in_flight = c.in_flight.saturating_sub(credits);
                    }
                }
            };
        }
        for ev in buf.drain(..) {
            if let Ev::Deliver { ch, elem, credited } = ev {
                match &mut cur {
                    Some((c, credits)) if *c == ch => *credits += credited as usize,
                    _ => {
                        flush!();
                        cur = Some((ch, credited as usize));
                    }
                }
                let to = self.chans[ch.0 as usize].to;
                let noop = {
                    let i = &self.insts[to.0 as usize];
                    i.halted || i.busy || self.q.now() < i.operational_at || i.blocked_out
                };
                self.chans[ch.0 as usize].queue.push_back(elem);
                if !noop {
                    flush!();
                    self.try_start(plugin, to);
                }
            } else {
                // Any other event may observe channel credit (wakes,
                // control, proc-done all can reach `pump`): settle first.
                flush!();
                self.dispatch(plugin, ev);
            }
        }
        flush!();
    }

    fn on_priority(&mut self, plugin: &mut dyn ScalePlugin, to: InstId, msg: PriorityMsg) {
        match msg {
            PriorityMsg::Signal(sig) => plugin.on_priority_signal(self, to, sig),
            PriorityMsg::Chunk {
                unit,
                subscale,
                from,
            } => plugin.on_chunk(self, to, *unit, subscale, from),
            PriorityMsg::ReroutedRecords { from, records } => {
                plugin.on_rerouted_records(self, to, from, records)
            }
            PriorityMsg::ReroutedConfirm { from, signal } => {
                plugin.on_rerouted_confirm(self, to, from, signal)
            }
            PriorityMsg::Fetch { kg, sub, requester } => {
                plugin.on_fetch(self, to, kg, sub, requester)
            }
        }
        self.try_start(plugin, to);
    }

    fn on_link_done(&mut self, plugin: &mut dyn ScalePlugin, from: InstId) {
        let Some(link) = self.scale.links.get_mut(&from) else {
            return;
        };
        let Some((to, unit, ss)) = link.queue.pop_front() else {
            return;
        };
        link.busy = false;
        let lat = self.cfg.net_latency;
        let reg = self.reg(to);
        let ev = self.ev_priority(
            to,
            PriorityMsg::Chunk {
                unit: Box::new(unit),
                subscale: ss,
                from,
            },
        );
        self.q.schedule_tagged(reg, lat, ev);
        self.link_start(from);
        let _ = plugin;
    }

    fn on_control(&mut self, plugin: &mut dyn ScalePlugin, cmd: ControlMsg) {
        match cmd {
            ControlMsg::StartScale(plan) => self.start_scale(plan),
            ControlMsg::DeployDone { epoch } => {
                if epoch == self.scale.epoch {
                    self.scale.metrics.deployed_at = Some(self.now());
                    self.bus
                        .publish(self.now(), 0, BusEventKind::ScaleDeployed { epoch });
                    let plan = self.scale.plan.clone().expect("deploying plan");
                    plugin.on_scale_start(self, &plan);
                }
            }
            ControlMsg::Plugin(tag) => plugin.on_control(self, tag),
            ControlMsg::CheckpointTick => {
                // The paper (§IV-C) prevents concurrent fault tolerance and
                // scaling: defer the checkpoint until migration completes.
                if self.scale.in_progress {
                    let ev = self.ev_control(ControlMsg::CheckpointTick);
                    self.q.schedule(MICROS_PER_SEC_DEFER, ev);
                    return;
                }
                self.next_ckpt += 1;
                let id = self.next_ckpt;
                self.bus
                    .publish(self.now(), 0, BusEventKind::CheckpointStart { id });
                for i in 0..self.insts.len() {
                    if let Some(src) = self.insts[i].source.as_mut() {
                        src.pending.push_back(Record {
                            key: id,
                            value: 0,
                            event_time: self.q.now(),
                            created: self.q.now(),
                            kind: RecordKind::Data,
                            origin: (InstId(i as u32), 0),
                            count: 0, // sentinel: count==0 marks a barrier carrier
                        });
                    }
                }
                if let Some(iv) = self.cfg.checkpoint_interval {
                    let ev = self.ev_control(ControlMsg::CheckpointTick);
                    self.q.schedule(iv, ev);
                }
            }
        }
    }

    fn start_scale(&mut self, mut plan: ScalePlan) {
        assert!(
            !self.pdes,
            "scaling operations are not supported in PDES mode \
             (resume_latency > 0, regions > 1): migration links and \
             re-routing cross regions without credit/lookahead accounting"
        );
        // Concurrent scaling requests (paper §IV-B scenario 1): the newer
        // request supersedes the older one. We realize this as deferral —
        // re-present the request once in-flight migrations have landed, so
        // no state unit is ever in two plans at once.
        if self.scale.in_progress {
            let ev = self.ev_control(ControlMsg::StartScale(plan));
            self.q.schedule(MICROS_PER_SEC_DEFER / 2, ev);
            return;
        }
        let now = self.now();
        self.scale.epoch += 1;
        let epoch = self.scale.epoch;
        let op = plan.op;
        self.suspension_op = Some(op);

        // Create the new instances (scale-out), or mark the tail instances
        // retiring (scale-in: they keep draining but receive no new traffic
        // and are halted once empty).
        let old_insts = self.ops[op.0 as usize].instances.clone();
        let mut all_insts = old_insts.clone();
        self.scale.new_instances.clear();
        self.scale.retiring.clear();
        if plan.new_parallelism < old_insts.len() {
            self.scale
                .retiring
                .assign(&old_insts[plan.new_parallelism..]);
            all_insts.truncate(plan.new_parallelism);
        }
        for li in old_insts.len()..plan.new_parallelism {
            let id = InstId(self.insts.len() as u32);
            let mut inst = Instance::new(
                id,
                op,
                li,
                StateBackend::new(self.cfg.max_key_groups, self.cfg.sub_group_fanout),
            );
            inst.operational_at = now + self.cfg.deploy_delay;
            inst.logic = Some((self.ops[op.0 as usize]
                .logic_factory
                .as_ref()
                .expect("scaling a transform operator"))());
            inst.rr_cursor = vec![0; self.edges.len()];
            self.insts.push(inst);
            self.pending_runs.push(Vec::new());
            self.ops[op.0 as usize].instances.push(id);
            self.scale.new_instances.push(id);
            all_insts.push(id);

            // Wire channels: predecessors → new instance.
            for eid in self.ops[op.0 as usize].in_edges.clone() {
                let from_op = self.edges[eid.0 as usize].from;
                for fi in self.ops[from_op.0 as usize].instances.clone() {
                    let cid = ChannelId(self.chans.len() as u32);
                    self.chans.push(Channel::new(
                        cid,
                        fi,
                        id,
                        self.cfg.channel_capacity,
                        self.cfg.net_latency,
                    ));
                    self.edges[eid.0 as usize].add_channel(fi, id, cid);
                    self.insts[fi.0 as usize].out_channels.push(cid);
                    self.insts[id.0 as usize].in_channels.push(cid);
                }
            }
            // New instance → successors.
            for eid in self.ops[op.0 as usize].out_edges.clone() {
                let to_op = self.edges[eid.0 as usize].to;
                for ti in self.ops[to_op.0 as usize].instances.clone() {
                    let cid = ChannelId(self.chans.len() as u32);
                    self.chans.push(Channel::new(
                        cid,
                        id,
                        ti,
                        self.cfg.channel_capacity,
                        self.cfg.net_latency,
                    ));
                    self.edges[eid.0 as usize].add_channel(id, ti, cid);
                    self.insts[id.0 as usize].out_channels.push(cid);
                    // Initialize the successor's view of this channel's
                    // watermark to its current one so downstream windows do
                    // not stall on the fresh channel.
                    let cur = self.insts[ti.0 as usize].watermark;
                    self.chans[cid.0 as usize].rx_watermark = cur;
                    self.insts[ti.0 as usize].in_channels.push(cid);
                }
            }
        }

        // Fold the freshly wired channels into the dense per-edge indices —
        // the one (cold) rebuild point; per-record routing never re-indexes.
        let n_insts = self.insts.len();
        for eid in self.ops[op.0 as usize]
            .in_edges
            .iter()
            .chain(self.ops[op.0 as usize].out_edges.iter())
            .copied()
            .collect::<Vec<_>>()
        {
            self.edges[eid.0 as usize].rebuild_index(n_insts);
        }

        // The scaled operator's instance list changed: downstream operators'
        // cached predecessor lists must see the new instances.
        self.refresh_pred_caches_after(op);

        // Scale-out instances inherit their operator's scheduler region,
        // and the freshly wired channels fold into the lookahead matrix
        // (they connect already-linked region pairs, so the matrix can
        // only stay equal — but the cut-channel count must stay honest).
        self.region_map.extend_for_new_instances(&self.insts);
        if self.region_map.k() > 1 {
            self.region_map.rebuild_lookahead(
                &self.edges,
                &self.chans,
                self.cfg.ctrl_latency,
                self.cfg.resume_latency,
            );
            self.q.set_region_lookahead(self.region_map.lookahead());
        }

        // Compute the moves with the uniform re-partitioning strategy.
        let base = self
            .keyed_in_edges(op)
            .first()
            .map(|&e| {
                let edge = &self.edges[e.0 as usize];
                let any_pred = self.ops[edge.from.0 as usize].instances[0];
                edge.table(any_pred)
                    .expect("predecessor routing table on keyed edge")
                    .clone()
            })
            .expect("scaling operator must have a keyed input");
        plan.moves = match plan.strategy {
            crate::keygroup::Repartition::Uniform => uniform_repartition(&base, &all_insts),
            crate::keygroup::Repartition::MinimalMoves => {
                crate::keygroup::minimal_repartition(&base, &all_insts)
            }
        };

        self.scale.plan = Some(plan);
        self.scale.in_progress = true;
        self.scale.metrics = Default::default();
        self.scale.metrics.requested_at = Some(now);
        {
            let p = self.scale.plan.as_ref().expect("just set");
            self.bus.publish(
                now,
                0,
                BusEventKind::ScalePlanned {
                    op: op.0,
                    old_par: p.old_parallelism as u32,
                    new_par: p.new_parallelism as u32,
                    moves: p.moves.len() as u64,
                    epoch,
                },
            );
        }
        // Seed the unit location registry.
        let fanout = self.cfg.sub_group_fanout.max(1);
        let moves = self.scale.plan.as_ref().expect("just set").moves.clone();
        for m in &moves {
            for s in 0..fanout {
                self.scale.unit_loc.insert((m.kg.0, s), (m.from, None));
            }
        }
        let delay = self.cfg.deploy_delay;
        let ev = self.ev_control(ControlMsg::DeployDone { epoch });
        self.q.schedule(delay, ev);
    }

    fn on_sample(&mut self) {
        let now = self.now();
        self.maybe_retire();
        if let Some(op) = self.suspension_op {
            let total: SimTime = self.ops[op.0 as usize]
                .instances
                .iter()
                .map(|&i| self.insts[i.0 as usize].suspension_as_of(now))
                .sum();
            self.metrics.suspension.push(now, total as f64);
        }
        if self.bus.enabled() {
            // Per-instance progress ticks. `Ev::Sample` is pinned to
            // region 0, so under the thread-per-region executor (Outbox
            // mode) the sampler sees other regions' instance state frozen
            // at replica-pruning time — tick only the instances this
            // replica owns; whole-fleet snapshots come from
            // `Observables::merge`. The sequential engine ticks everyone.
            let outbox = self.cross_mode == CrossMode::Outbox;
            for i in 0..self.insts.len() {
                let reg = self.region_map.inst(self.insts[i].id) as u8;
                if outbox && reg != 0 {
                    continue;
                }
                let tick = BusEventKind::MetricsTick {
                    inst: self.insts[i].id.0,
                    processed: self.insts[i].processed,
                    state_bytes: self.insts[i].state.total_bytes(),
                    watermark: self.insts[i].watermark,
                };
                self.bus.publish(now, reg, tick);
            }
            // Sequential multi-region runs surface the region scheduler's
            // cumulative sync accounting here; the parallel executor
            // publishes its own per-epoch `SyncEpoch` events instead.
            if self.region_map.k() > 1 && !outbox {
                let s = self.q.region_sync_stats();
                let ev = BusEventKind::SyncEpoch {
                    epochs: s.runs,
                    dispatched: self.q.processed(),
                    merged: s.merged_runs,
                    grants: s.min_rule_grants,
                };
                self.bus.publish(now, 0, ev);
            }
        }
        self.bus.on_sample();
        let iv = self.cfg.sample_interval;
        self.q.schedule(iv, Ev::Sample);
    }

    /// Halt retiring instances once their migration finished and their
    /// queues drained, and remove them from the operator's instance list.
    fn maybe_retire(&mut self) {
        if self.scale.in_progress || self.scale.retiring.is_empty() {
            return;
        }
        let ready: Vec<InstId> = self
            .scale
            .retiring
            .iter()
            .filter(|&i| {
                let inst = &self.insts[i.0 as usize];
                !inst.busy
                    && inst
                        .in_channels
                        .iter()
                        .all(|&c| self.chans[c.0 as usize].occupancy() == 0)
            })
            .collect();
        let mut changed_op = None;
        for i in ready {
            self.insts[i.0 as usize].halted = true;
            self.scale.retiring.remove(i);
            if let Some(plan) = self.scale.plan.as_ref() {
                let op = plan.op;
                self.ops[op.0 as usize].instances.retain(|&x| x != i);
                changed_op = Some(op);
            }
        }
        if let Some(op) = changed_op {
            self.refresh_pred_caches_after(op);
        }
    }

    // -----------------------------------------------------------------
    // Sources
    // -----------------------------------------------------------------

    fn on_source_tick(&mut self, plugin: &mut dyn ScalePlugin, inst: InstId) {
        const TICK: SimTime = 10_000; // 10 ms generation granularity
        let now = self.now();
        let reg = self.reg(inst);
        let pdes = self.pdes;
        {
            let i = &mut self.insts[inst.0 as usize];
            let src = i.source.as_mut().expect("source tick on non-source");
            // Generate records for this tick.
            let rate = src.gen.rate(now);
            let mut due = rate * TICK as f64 / 1_000_000.0 + src.carry;
            let limit_hit = src.gen.limit().map(|l| src.generated >= l).unwrap_or(false);
            if limit_hit {
                due = 0.0;
            }
            let n = due as u64;
            src.carry = due - n as f64;
            let batch = src.gen.batch().max(1) as u64;
            let mut left = n;
            while left > 0 {
                let c = left.min(batch);
                let (key, value) = src.gen.next(now);
                let et = now + (n - left) * TICK / n.max(1);
                let mut r = Record::data(key, value, et);
                r.count = c as u32;
                src.pending.push_back(r);
                src.generated += c;
                left -= c;
            }
            // Latency markers. In PDES mode the key draw comes from the
            // region's own RNG stripe: a single global stream would make
            // the draw order depend on how source ticks across regions
            // interleave, which the parallel replicas cannot reproduce.
            while src.next_marker <= now {
                src.next_marker += self.cfg.marker_interval;
                let key = if pdes {
                    self.rngs[reg].below(u32::MAX as u64)
                } else {
                    self.rng.below(u32::MAX as u64)
                };
                let mut m = Record::data(key, 0, now);
                m.kind = RecordKind::Marker;
                m.created = now;
                src.pending.push_back(m);
            }
            // Watermarks ride in pending too (in-order with the data).
            while src.next_watermark <= now {
                src.next_watermark += self.cfg.watermark_interval;
                let mut wm = Record::data(0, 0, now);
                wm.count = u32::MAX; // sentinel: watermark carrier
                src.pending.push_back(wm);
            }
        }
        self.drain_source(inst);
        self.q.schedule_tagged(reg, TICK, Ev::SourceTick { inst });
        let _ = plugin;
    }

    fn drain_source(&mut self, inst: InstId) {
        let now = self.now();
        loop {
            {
                let i = &self.insts[inst.0 as usize];
                if i.halted || i.blocked_out {
                    break;
                }
                if i.source
                    .as_ref()
                    .map(|s| s.pending.is_empty())
                    .unwrap_or(true)
                {
                    break;
                }
            }
            let rec = {
                let src = self.insts[inst.0 as usize].source.as_mut().expect("source");
                src.pending.pop_front().expect("non-empty")
            };
            if rec.count == u32::MAX {
                // Watermark carrier.
                self.broadcast_watermark(inst, rec.event_time);
            } else if rec.count == 0 {
                // Checkpoint barrier carrier.
                self.broadcast_ckpt(inst, rec.key);
            } else {
                let n = rec.count as u64;
                self.emit_one(inst, rec);
                self.metrics.count_source(now, n);
                if let Some(src) = self.insts[inst.0 as usize].source.as_mut() {
                    src.emitted += n;
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Instance processing
    // -----------------------------------------------------------------

    /// Attempt to start work at an instance. Safe to call at any time.
    pub fn try_start(&mut self, plugin: &mut dyn ScalePlugin, inst: InstId) {
        loop {
            {
                let i = &self.insts[inst.0 as usize];
                if i.halted || i.busy || self.now() < i.operational_at {
                    return;
                }
                if i.source.is_some() {
                    break;
                }
                if i.blocked_out {
                    return;
                }
            }
            if self.insts[inst.0 as usize].source.is_some() {
                break;
            }
            let sel = if plugin.selects(self, inst) {
                plugin.select(self, inst)
            } else {
                self.default_select(plugin, inst)
            };
            match sel {
                Selection::Control(ch, elem) => {
                    self.handle_control_elem(plugin, inst, ch, elem);
                    // Loop: look for more work at the same instant.
                }
                Selection::Run { records, service } => {
                    let now = self.now();
                    let i = &mut self.insts[inst.0 as usize];
                    i.leave_suspend(now);
                    i.busy = true;
                    i.proc_gen += 1;
                    let gen = i.proc_gen;
                    // The slot holds an empty Vec (drained by the previous
                    // `on_proc_done`); dropping it frees nothing.
                    self.pending_runs[inst.0 as usize] = records;
                    let reg = self.reg(inst);
                    self.q
                        .schedule_tagged(reg, service.max(1), Ev::ProcDone { inst, gen });
                    return;
                }
                Selection::Suspend => {
                    let now = self.now();
                    self.insts[inst.0 as usize].enter_suspend(now);
                    return;
                }
                Selection::Idle => {
                    let now = self.now();
                    self.insts[inst.0 as usize].leave_suspend(now);
                    return;
                }
            }
        }
        // Sources fall through to draining.
        self.drain_source(inst);
    }

    /// Engine-default input selection: active-channel discipline with the
    /// plugin's admission filter (the generalized-OTFS behaviour from the
    /// paper's Fig. 6 — suspend when the active channel's head is
    /// unprocessable, even if other channels have processable records).
    pub fn default_select(&mut self, plugin: &mut dyn ScalePlugin, inst: InstId) -> Selection {
        let (n, start) = {
            let i = &self.insts[inst.0 as usize];
            (i.in_channels.len(), i.active_ch)
        };
        if n == 0 {
            return Selection::Idle;
        }
        for k in 0..n {
            let idx = (start + k) % n;
            let ch = self.insts[inst.0 as usize].in_channels[idx];
            if self.insts[inst.0 as usize].blocked_channels.contains(&ch) {
                continue;
            }
            if self.chans[ch.0 as usize].queue.is_empty() {
                continue;
            }
            // First non-empty unblocked channel becomes the active channel.
            self.insts[inst.0 as usize].active_ch = idx;
            let is_record = self.chan_front(ch).map(|e| e.is_record()).unwrap_or(false);
            if !is_record {
                let elem = self.chan_pop(ch).expect("non-empty");
                return Selection::Control(ch, elem);
            }
            // Peek admission for the head record.
            let rec = self
                .chan_front(ch)
                .and_then(|e| e.as_record())
                .cloned()
                .expect("checked record");
            let admissible = rec.kind == RecordKind::Marker || plugin.admit(self, inst, ch, &rec);
            if !admissible {
                return Selection::Suspend;
            }
            return self.build_run(plugin, inst, ch);
        }
        Selection::Idle
    }

    /// Pop a run of admissible records from `ch` bounded by the quantum.
    pub fn build_run(
        &mut self,
        plugin: &mut dyn ScalePlugin,
        inst: InstId,
        ch: ChannelId,
    ) -> Selection {
        let mut records = self.run_buf_pool.pop().unwrap_or_default();
        debug_assert!(records.is_empty());
        let mut service: SimTime = 0;
        loop {
            if records.len() >= self.cfg.quantum_records || service >= self.cfg.quantum_time {
                break;
            }
            let Some(front) = self.chan_front(ch) else {
                break;
            };
            let Some(rec) = front.as_record() else { break };
            let rec = rec.clone();
            if rec.kind != RecordKind::Marker && !plugin.admit(self, inst, ch, &rec) {
                break;
            }
            service += self.service_of(inst, &rec);
            let popped = self.chan_pop(ch).expect("non-empty");
            match popped {
                StreamElement::Record(r) => records.push(r),
                _ => unreachable!("front was a record"),
            }
        }
        if records.is_empty() {
            self.run_buf_pool.push(records);
            Selection::Suspend
        } else {
            Selection::Run { records, service }
        }
    }

    /// Service time of one element at an instance.
    pub fn service_of(&self, inst: InstId, rec: &Record) -> SimTime {
        if rec.kind == RecordKind::Marker {
            return 0;
        }
        let i = &self.insts[inst.0 as usize];
        match self.ops[i.op.0 as usize].role {
            OpRole::Sink => self.ops[i.op.0 as usize].sink_service * rec.count as SimTime,
            _ => i
                .logic
                .as_ref()
                .map(|l| l.service_time(rec) * rec.count as SimTime)
                .unwrap_or(1),
        }
    }

    fn on_proc_done(&mut self, plugin: &mut dyn ScalePlugin, inst: InstId, gen: u64) {
        if self.insts[inst.0 as usize].proc_gen != gen {
            return;
        }
        self.insts[inst.0 as usize].busy = false;
        let mut records = std::mem::take(&mut self.pending_runs[inst.0 as usize]);
        for rec in records.drain(..) {
            self.apply_record(plugin, inst, rec);
        }
        // Recycle the (now empty, capacity-preserving) buffer. Bound the
        // pool so pathological plugins cannot hoard memory through it.
        if self.run_buf_pool.len() < 64 {
            self.run_buf_pool.push(records);
        }
        self.try_start(plugin, inst);
    }

    /// Apply one record at an instance (logic + emission + metrics). Public
    /// because plugins processing re-routed records call it directly.
    pub fn apply_record(&mut self, plugin: &mut dyn ScalePlugin, inst: InstId, rec: Record) {
        let now = self.now();
        let role = self.op_of(inst).role;
        self.insts[inst.0 as usize].processed += rec.count as u64;
        match role {
            OpRole::Sink => {
                if rec.kind == RecordKind::Marker {
                    self.metrics
                        .record_latency(now, now.saturating_sub(rec.created));
                } else {
                    self.metrics.sink_records += rec.count as u64;
                }
            }
            _ => {
                if rec.kind == RecordKind::Marker {
                    // Markers bypass operator logic entirely (origin is
                    // already stamped; forward as-is).
                    self.fan_out(inst, rec);
                    return;
                }
                let kg = self.kg_of(rec.key);
                // Guard (stateful operators): the sub-group may have been
                // extracted between admission and quantum completion
                // (trigger barriers bypass in-flight work). Hand such
                // records to the mechanism.
                if self.op_of(inst).stateful {
                    let sub = self.insts[inst.0 as usize].state.sub_of(rec.key);
                    if !self.insts[inst.0 as usize].state.holds(kg, sub) {
                        if plugin.on_orphan_record(self, inst, &rec) {
                            return;
                        }
                        panic!(
                            "record for absent state {kg}/{sub} at {inst} not handled by {}",
                            plugin.name()
                        );
                    }
                }
                self.apply_record_basic(inst, rec.clone());
                plugin.after_record(self, inst, &rec);
            }
        }
    }

    /// Apply a data record's logic at a transform instance without the
    /// orphan guard or plugin hooks. Plugins use this to replay records they
    /// buffered themselves (Meces orphan replay, Unbound universal keys);
    /// semantics checking still applies.
    pub fn apply_record_basic(&mut self, inst: InstId, rec: Record) {
        let now = self.now();
        let kg = self.kg_of(rec.key);
        // Per-key order is only a guarantee of keyed (hash-partitioned)
        // edges; rebalance edges interleave keys across instances by design.
        if self.cfg.check_semantics && rec.origin.0 != InstId(u32::MAX) && self.op_of(inst).stateful
        {
            let op = self.insts[inst.0 as usize].op;
            self.semantics
                .observe(op, rec.key, rec.origin.0, rec.origin.1);
        }
        let mut logic = self.insts[inst.0 as usize]
            .logic
            .take()
            .expect("transform logic");
        // Reuse the world's emission scratch: one operator invocation runs
        // at a time on this path, and `emit_records` drains it back to
        // empty before we return it.
        let mut out = std::mem::take(&mut self.emit_scratch);
        debug_assert!(out.is_empty());
        {
            let i = &mut self.insts[inst.0 as usize];
            let mut ctx = OpCtx {
                now,
                watermark: i.watermark,
                kg,
                state: &mut i.state,
                out: &mut out,
                max_key_groups: self.cfg.max_key_groups,
            };
            logic.on_record(&mut ctx, &rec);
        }
        self.insts[inst.0 as usize].logic = Some(logic);
        if !out.is_empty() {
            self.emit_records(inst, &mut out);
        }
        self.emit_scratch = out;
    }

    /// Handle a popped control element (public: plugin selections reuse it).
    pub fn handle_control_elem(
        &mut self,
        plugin: &mut dyn ScalePlugin,
        inst: InstId,
        ch: ChannelId,
        elem: StreamElement,
    ) {
        match elem {
            StreamElement::Watermark(wm) => self.on_watermark(inst, ch, wm),
            StreamElement::CheckpointBarrier(id) => self.on_ckpt_barrier(inst, ch, id),
            StreamElement::Scale(sig) => plugin.on_signal(self, inst, ch, sig),
            StreamElement::Record(_) => unreachable!("records are not control elements"),
        }
    }

    fn on_watermark(&mut self, inst: InstId, ch: ChannelId, wm: SimTime) {
        {
            let c = &mut self.chans[ch.0 as usize];
            c.rx_watermark = c.rx_watermark.max(wm);
        }
        // The operator watermark is the min across input channels; the
        // per-channel value lives on the channel itself (plain indexed
        // reads, no map lookups on this per-watermark path).
        let mut min = SimTime::MAX;
        {
            let i = &self.insts[inst.0 as usize];
            for &ic in &i.in_channels {
                min = min.min(self.chans[ic.0 as usize].rx_watermark);
            }
            if i.in_channels.is_empty() {
                min = 0;
            }
        }
        let advanced = {
            let i = &mut self.insts[inst.0 as usize];
            if min > i.watermark {
                i.watermark = min;
                true
            } else {
                false
            }
        };
        if !advanced {
            return;
        }
        let role = self.op_of(inst).role;
        if role == OpRole::Transform {
            let now = self.now();
            let new_wm = self.insts[inst.0 as usize].watermark;
            let mut logic = self.insts[inst.0 as usize]
                .logic
                .take()
                .expect("transform logic");
            let mut out = std::mem::take(&mut self.emit_scratch);
            debug_assert!(out.is_empty());
            {
                let i = &mut self.insts[inst.0 as usize];
                let mut ctx = WmCtx {
                    now,
                    watermark: new_wm,
                    state: &mut i.state,
                    out: &mut out,
                };
                logic.on_watermark(&mut ctx);
            }
            let cost = logic.watermark_cost();
            self.insts[inst.0 as usize].logic = Some(logic);
            if !out.is_empty() {
                self.emit_records(inst, &mut out);
            }
            self.emit_scratch = out;
            // Charge firing cost as a busy period.
            if cost > 0 {
                let i = &mut self.insts[inst.0 as usize];
                i.busy = true;
                i.proc_gen += 1;
                let gen = i.proc_gen;
                let reg = self.reg(inst);
                self.q
                    .schedule_tagged(reg, cost, Ev::ProcDone { inst, gen });
            }
            let wm_out = self.insts[inst.0 as usize].watermark;
            self.broadcast_watermark(inst, wm_out);
        } else if role == OpRole::Sink {
            // Terminal: nothing to forward.
        }
    }

    fn on_ckpt_barrier(&mut self, inst: InstId, ch: ChannelId, id: u64) {
        let role = self.op_of(inst).role;
        let (aligned, snapshot_bytes) = {
            let i = &mut self.insts[inst.0 as usize];
            if i.ckpt.is_none() {
                i.ckpt = Some(CkptAlign {
                    id,
                    arrived: Default::default(),
                });
            }
            let all = i.in_channels.len();
            let ck = i.ckpt.as_mut().expect("just set");
            if ck.id == id {
                ck.arrived.insert(ch);
            }
            i.blocked_channels.insert(ch);
            if ck.arrived.len() >= all {
                let bytes = i.state.total_bytes();
                (true, bytes)
            } else {
                (false, 0)
            }
        };
        if aligned {
            {
                let i = &mut self.insts[inst.0 as usize];
                i.ckpt = None;
                // `blocked_channels` only ever holds this instance's input
                // channels, so dropping them all is exactly the old
                // per-channel removal.
                i.blocked_channels.clear();
            }
            // Synchronous snapshot part.
            let cost = (snapshot_bytes / 1_000_000) * self.cfg.snapshot_us_per_mb;
            if cost > 0 && role == OpRole::Transform {
                let i = &mut self.insts[inst.0 as usize];
                i.busy = true;
                i.proc_gen += 1;
                let gen = i.proc_gen;
                let reg = self.reg(inst);
                self.q
                    .schedule_tagged(reg, cost, Ev::ProcDone { inst, gen });
            }
            if role == OpRole::Sink {
                let now = self.now();
                self.metrics.checkpoints.push(now, id as f64);
                let reg = self.reg(inst) as u8;
                self.bus
                    .publish(now, reg, BusEventKind::CheckpointDone { id });
            } else {
                self.broadcast_ckpt(inst, id);
            }
            self.wake(inst);
        }
    }
}

/// Per-instance slice of [`Observables`]: exactly the five values
/// `metrics_digest` hashes per instance, in hash order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstObservables {
    /// Records processed.
    pub processed: u64,
    /// Operator watermark.
    pub watermark: SimTime,
    /// Nominal state bytes.
    pub state_bytes: u64,
    /// Distinct keys held.
    pub state_keys: u64,
    /// Cumulative suspension time.
    pub suspended_total: SimTime,
}

/// A plain-data (`Send`) snapshot of everything
/// [`World::metrics_digest`] hashes, in the exact serialization order the
/// digest consumes. Exists so the thread-per-region executor can collect
/// one snapshot per replica, [`merge`](Self::merge) them, and compare
/// [`digest`](Self::digest) against the sequential engine — byte-for-byte
/// the same hash function over byte-for-byte the same serialization.
#[derive(Clone, Debug)]
pub struct Observables {
    /// Records absorbed by sinks.
    pub sink_records: u64,
    /// Events popped off the future-event list.
    pub processed: u64,
    /// Latency samples `(t, µs)` in recording order.
    pub latency: Vec<(SimTime, f64)>,
    /// Per-second source emission counts `(second, records)`, ascending.
    pub source_counts: Vec<(u64, u64)>,
    /// Per-key order violations observed.
    pub violations: u64,
    /// Per-instance progress, indexed by `InstId`.
    pub per_inst: Vec<InstObservables>,
    /// Region owning each instance (identical across replicas; drives the
    /// per-instance and latency merges).
    pub inst_regions: Vec<u8>,
    /// Migration bytes moved by the scaling mechanism.
    pub bytes_transferred: u64,
    /// The clock when the snapshot was taken.
    pub now: SimTime,
}

impl Observables {
    /// FNV-1a over the canonical serialization — the digest
    /// [`World::metrics_digest`] has always produced.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        put(self.sink_records);
        put(self.processed);
        put(self.latency.len() as u64);
        for &(t, v) in &self.latency {
            put(t);
            put(v.to_bits());
        }
        for &(s, c) in &self.source_counts {
            put(s);
            put(c);
        }
        put(self.violations);
        for i in &self.per_inst {
            put(i.processed);
            put(i.watermark);
            put(i.state_bytes);
            put(i.state_keys);
            put(i.suspended_total);
        }
        put(self.bytes_transferred);
        h
    }

    /// Merge per-replica snapshots (one per region, indexed by region)
    /// into the view the sequential PDES engine would have produced:
    ///
    /// * counters (`sink_records`, `processed`, `violations`,
    ///   `bytes_transferred`) sum — each replica only ever touches its own
    ///   region's share;
    /// * latency samples k-way merge by `(t, region)` — exactly the
    ///   sequential recording order, because region-major pop order breaks
    ///   same-instant ties by ascending region;
    /// * per-second source counts merge-sum per bucket;
    /// * each instance's row comes from the replica that owns its region
    ///   (the only replica that ever advanced it).
    pub fn merge(replicas: &[Observables]) -> Observables {
        assert!(!replicas.is_empty(), "nothing to merge");
        let inst_regions = replicas[0].inst_regions.clone();
        let mut latency: Vec<(SimTime, u8, f64)> = Vec::new();
        for (r, o) in replicas.iter().enumerate() {
            latency.extend(o.latency.iter().map(|&(t, v)| (t, r as u8, v)));
        }
        latency.sort_by_key(|&(t, r, _)| (t, r));
        let mut source_counts: Vec<(u64, u64)> = Vec::new();
        for o in replicas {
            for &(s, c) in &o.source_counts {
                match source_counts.binary_search_by_key(&s, |e| e.0) {
                    Ok(i) => source_counts[i].1 += c,
                    Err(i) => source_counts.insert(i, (s, c)),
                }
            }
        }
        let per_inst = inst_regions
            .iter()
            .enumerate()
            .map(|(i, &r)| replicas[r as usize].per_inst[i])
            .collect();
        Observables {
            sink_records: replicas.iter().map(|o| o.sink_records).sum(),
            processed: replicas.iter().map(|o| o.processed).sum(),
            latency: latency.into_iter().map(|(t, _, v)| (t, v)).collect(),
            source_counts,
            violations: replicas.iter().map(|o| o.violations).sum(),
            per_inst,
            inst_regions,
            bytes_transferred: replicas.iter().map(|o| o.bytes_transferred).sum(),
            now: replicas.iter().map(|o| o.now).max().unwrap_or(0),
        }
    }
}

/// How the driver pulls events off the future-event list.
///
/// The two modes are required to be **behavior-identical** — same event
/// order, same clock at every dispatch, same digests ([`perf_report`
/// A/Bs them and hard-fails on divergence]). Batch is a pure perf knob:
/// same-instant runs are drained with one cursor walk and one clock
/// update instead of one per event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// One `pop_at_most` per dispatched event — the reference loop every
    /// batching change is digest-verified against.
    SinglePop,
    /// Drain each same-instant run in one `pop_run_at_most` call and
    /// dispatch it from the driver's reused scratch buffer. The default.
    #[default]
    Batch,
}

impl DispatchMode {
    /// Parse a mode name as used by CLI flags (`single` / `batch`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "single" | "single-pop" | "singlepop" => Some(Self::SinglePop),
            "batch" => Some(Self::Batch),
            _ => None,
        }
    }

    /// The flag-style name (`single` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            Self::SinglePop => "single",
            Self::Batch => "batch",
        }
    }
}

/// The simulation driver: a world plus the rescaling mechanism under test.
pub struct Sim {
    /// The world.
    pub world: World,
    /// The mechanism.
    pub plugin: Box<dyn ScalePlugin>,
    /// Single-pop vs batch dispatch (see [`DispatchMode`]).
    mode: DispatchMode,
    /// Scratch buffer for batch dispatch. Owned by the driver — the
    /// future-event list only ever borrows it per `pop_run_at_most` call —
    /// and reused across runs, so the dispatch loop allocates nothing in
    /// steady state (the buffer grows to the largest same-instant run and
    /// stays there).
    batch: Vec<Ev>,
}

impl Sim {
    /// Pair a world with a mechanism.
    pub fn new(world: World, plugin: Box<dyn ScalePlugin>) -> Self {
        Self {
            world,
            plugin,
            mode: DispatchMode::default(),
            batch: Vec::new(),
        }
    }

    /// Select the dispatch mode (builder-style; default [`DispatchMode::Batch`]).
    pub fn with_dispatch_mode(mut self, mode: DispatchMode) -> Self {
        self.set_dispatch_mode(mode);
        self
    }

    /// Select the dispatch mode.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.mode = mode;
    }

    /// The current dispatch mode.
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.mode
    }

    /// Run until simulated time `t`. On return the clock is *at* `t`: the
    /// simulation has observed that nothing else happens in `(last event,
    /// t]`, so anything the caller schedules relative to `now()` afterwards
    /// is relative to the horizon, not to whenever the queue happened to
    /// drain (scheduling against a stale clock used to land in the past
    /// and get past-clamped).
    pub fn run_until(&mut self, t: SimTime) {
        self.dispatch_until(t);
        self.world.q.advance_clock_to(t);
    }

    /// Dispatch every pending event with `at <= t` *without* advancing the
    /// clock to `t` afterwards. The thread-per-region executor drives each
    /// epoch slice through this (the epoch cap is not the horizon — the
    /// clock must stay on the last dispatched event so the next slice's
    /// cross arrivals are still in the future); [`Self::run_until`] is
    /// this plus the final clock advance.
    pub fn dispatch_until(&mut self, t: SimTime) {
        // Hoisted out of the dispatch loop: one plugin re-borrow per run
        // (not per event), and — in batch mode — one clock update and one
        // scheduler cursor walk per same-instant run.
        let plugin = &mut *self.plugin;
        match self.mode {
            DispatchMode::SinglePop => {
                while let Some((_, ev)) = self.world.q.pop_at_most(t) {
                    self.world.dispatch(plugin, ev);
                }
            }
            DispatchMode::Batch => {
                let buf = &mut self.batch;
                // Events scheduled while a run is being dispatched (at the
                // run's own instant or later) are never part of the drained
                // buffer: they pop as a later run, exactly where single-pop
                // dispatch would put them, because their sequence numbers
                // are larger than everything already drained.
                while self.world.q.pop_run_at_most(t, buf).is_some() {
                    self.world.dispatch_run(plugin, buf);
                }
            }
        }
    }
}

/// Helpers shared by unit tests across modules (and by downstream crates'
/// tests). Not part of the stable API.
pub mod tests_support {
    use super::*;
    use crate::instance::SourceGen;

    /// Constant-rate generator emitting keys round-robin over a universe.
    pub struct FixedGen {
        rate: f64,
        universe: u64,
        next_key: u64,
    }

    impl FixedGen {
        /// `rate` records/s over `universe` keys.
        pub fn new(rate: f64, universe: u64) -> Self {
            Self {
                rate,
                universe,
                next_key: 0,
            }
        }
    }

    impl SourceGen for FixedGen {
        fn rate(&self, _t: SimTime) -> f64 {
            self.rate
        }
        fn next(&mut self, _t: SimTime) -> (u64, i64) {
            let k = self.next_key;
            self.next_key = (self.next_key + 1) % self.universe;
            (k, 1)
        }
    }

    /// Build a tiny source → keyed-agg → sink job for tests.
    pub fn tiny_job(cfg: EngineConfig, rate: f64, universe: u64, par: usize) -> (World, OpId) {
        use crate::graph::{EdgeKind, JobBuilder};
        use crate::operator::KeyedAgg;
        let mut b = JobBuilder::new(cfg);
        let src = b.source(
            "src",
            1,
            Box::new(move |_| Box::new(FixedGen::new(rate, universe))),
        );
        let agg = b.operator(
            "agg",
            par,
            Box::new(|| {
                Box::new(KeyedAgg {
                    service: 50,
                    bytes_per_key: 1_000,
                    bytes_per_record: 0,
                    emit_every: 1,
                })
            }),
        );
        let sink = b.sink("sink", 1);
        b.connect(src, agg, EdgeKind::Keyed);
        b.connect(agg, sink, EdgeKind::Rebalance);
        let w = b.build();
        (w, agg)
    }

    /// Build `pipes` fully disjoint source → keyed-agg → sink pipelines in
    /// one job. The region partitioner keeps connected components whole,
    /// so with `cfg.regions >= pipes` every pipeline gets its own region
    /// and zero channels cross a region boundary (infinite lookahead) —
    /// the best case for region-partitioned scheduling, and still required
    /// to be digest-identical to the single-region run.
    pub fn twin_jobs(
        cfg: EngineConfig,
        rate: f64,
        universe: u64,
        par: usize,
        pipes: usize,
    ) -> World {
        use crate::graph::{EdgeKind, JobBuilder};
        use crate::operator::KeyedAgg;
        let mut b = JobBuilder::new(cfg);
        for p in 0..pipes {
            let src = b.source(
                &format!("src{p}"),
                1,
                Box::new(move |_| Box::new(FixedGen::new(rate, universe))),
            );
            let agg = b.operator(
                &format!("agg{p}"),
                par,
                Box::new(|| {
                    Box::new(KeyedAgg {
                        service: 50,
                        bytes_per_key: 1_000,
                        bytes_per_record: 0,
                        emit_every: 1,
                    })
                }),
            );
            let sink = b.sink(&format!("sink{p}"), 1);
            b.connect(src, agg, EdgeKind::Keyed);
            b.connect(agg, sink, EdgeKind::Rebalance);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::*;
    use super::*;
    use crate::scaling::NoScale;
    use simcore::time::secs;

    #[test]
    fn records_flow_source_to_sink() {
        let (w, _agg) = tiny_job(EngineConfig::test(), 1000.0, 64, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(5));
        assert!(
            sim.world.metrics.sink_records > 3_000,
            "{}",
            sim.world.metrics.sink_records
        );
        // Latency markers made it through.
        assert!(sim.world.metrics.latency.len() > 50);
        // No order violations without scaling.
        assert_eq!(sim.world.semantics.violations(), 0);
    }

    #[test]
    fn latency_is_low_without_load() {
        let (w, _) = tiny_job(EngineConfig::test(), 100.0, 16, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(5));
        let (peak, mean) = sim.world.metrics.latency_stats_ms(0, secs(5));
        assert!(mean < 50.0, "mean latency {mean} ms");
        assert!(peak < 200.0, "peak latency {peak} ms");
    }

    #[test]
    fn state_accumulates_per_key() {
        let (w, agg) = tiny_job(EngineConfig::test(), 1000.0, 8, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        let total: u64 = sim.world.ops[agg.0 as usize]
            .instances
            .iter()
            .map(|&i| {
                sim.world.insts[i.0 as usize]
                    .state
                    .snapshot_counts()
                    .values()
                    .sum::<u64>()
            })
            .sum();
        // All data records that reached the agg are counted.
        assert!(total > 2_000, "{total}");
        // 8 keys → 8 KB nominal state.
        assert_eq!(sim.world.op_state_bytes(agg), 8_000);
    }

    #[test]
    fn overload_creates_backpressure_and_latency() {
        // Service 50 µs/record at parallelism 1 → capacity 20K/s; drive 30K/s.
        let (w, _) = tiny_job(EngineConfig::test(), 30_000.0, 64, 1);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(5));
        let (peak, _mean) = sim.world.metrics.latency_stats_ms(secs(3), secs(5));
        assert!(
            peak > 500.0,
            "expected growing latency under overload, peak={peak} ms"
        );
    }

    #[test]
    fn watermarks_advance_at_operators() {
        let (w, agg) = tiny_job(EngineConfig::test(), 500.0, 16, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        for &i in &sim.world.ops[agg.0 as usize].instances {
            assert!(
                sim.world.insts[i.0 as usize].watermark > secs(1),
                "watermark stalled at {}",
                sim.world.insts[i.0 as usize].watermark
            );
        }
    }

    #[test]
    fn scale_deploys_new_instances() {
        let (mut w, agg) = tiny_job(EngineConfig::test(), 500.0, 64, 2);
        w.schedule_scale(secs(1), agg, 3);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        assert_eq!(sim.world.ops[agg.0 as usize].instances.len(), 3);
        let plan = sim.world.scale.plan.as_ref().expect("plan");
        assert!(!plan.moves.is_empty());
        // NoScale never migrates: scale stays in progress.
        assert!(sim.world.scale.in_progress);
        // New instance wired: has inputs and outputs.
        let new = *sim.world.scale.new_instances.first().expect("new instance");
        assert!(!sim.world.insts[new.0 as usize].in_channels.is_empty());
        assert!(!sim.world.insts[new.0 as usize].out_channels.is_empty());
    }

    #[test]
    fn backpressure_blocks_and_unblocks_sources() {
        // Overload, then watch the source block; after the input rate is
        // relieved the backlog must drain and unblock.
        struct BurstGen {
            n: u64,
        }
        impl crate::instance::SourceGen for BurstGen {
            fn rate(&self, t: SimTime) -> f64 {
                if t < secs(2) {
                    60_000.0
                } else {
                    1_000.0
                }
            }
            fn next(&mut self, _t: SimTime) -> (u64, i64) {
                self.n += 1;
                (self.n % 64, 1)
            }
        }
        use crate::graph::JobBuilder;
        use crate::operator::KeyedAgg;
        let mut b = JobBuilder::new(EngineConfig::test());
        let src = b.source("src", 1, Box::new(|_| Box::new(BurstGen { n: 0 })));
        let agg = b.operator(
            "agg",
            1,
            Box::new(|| {
                Box::new(KeyedAgg {
                    service: 50,
                    bytes_per_key: 10,
                    bytes_per_record: 0,
                    emit_every: 1,
                })
            }),
        );
        let sink = b.sink("sink", 1);
        b.connect(src, agg, crate::graph::EdgeKind::Keyed);
        b.connect(agg, sink, crate::graph::EdgeKind::Rebalance);
        let mut sim = Sim::new(b.build(), Box::new(NoScale));
        sim.run_until(secs(1));
        let src_inst = sim.world.ops[src.0 as usize].instances[0];
        assert!(
            sim.world.insts[src_inst.0 as usize].blocked_out,
            "60K/s into a 20K/s operator must block the source"
        );
        sim.run_until(secs(10));
        assert!(
            !sim.world.insts[src_inst.0 as usize].blocked_out,
            "source still blocked after relief"
        );
        let pending = sim.world.insts[src_inst.0 as usize]
            .source
            .as_ref()
            .expect("source")
            .pending
            .len();
        assert!(pending < 1_000, "Kafka backlog not drained: {pending}");
    }

    #[test]
    fn watermark_is_min_across_channels() {
        // An instance fed by two sources only advances to the slower one.
        struct SlowWmGen;
        impl crate::instance::SourceGen for SlowWmGen {
            fn rate(&self, _t: SimTime) -> f64 {
                100.0
            }
            fn next(&mut self, _t: SimTime) -> (u64, i64) {
                (1, 1)
            }
        }
        use crate::graph::JobBuilder;
        use crate::operator::KeyedAgg;
        let mut b = JobBuilder::new(EngineConfig::test());
        let s1 = b.source("s1", 1, Box::new(|_| Box::new(SlowWmGen)));
        let s2 = b.source("s2", 1, Box::new(|_| Box::new(SlowWmGen)));
        let agg = b.operator(
            "agg",
            1,
            Box::new(|| {
                Box::new(KeyedAgg {
                    service: 10,
                    bytes_per_key: 0,
                    bytes_per_record: 0,
                    emit_every: 1,
                })
            }),
        );
        let sink = b.sink("sink", 1);
        b.connect(s1, agg, crate::graph::EdgeKind::Keyed);
        b.connect(s2, agg, crate::graph::EdgeKind::Keyed);
        b.connect(agg, sink, crate::graph::EdgeKind::Rebalance);
        let mut w = b.build();
        // Halt source 2: its watermarks stop flowing.
        let s2i = w.ops[s2.0 as usize].instances[0];
        w.insts[s2i.0 as usize].halted = true;
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        let aggi = sim.world.ops[agg.0 as usize].instances[0];
        assert_eq!(
            sim.world.insts[aggi.0 as usize].watermark, 0,
            "watermark advanced past a silent channel"
        );
        // Un-halt: the watermark catches up.
        sim.world.insts[s2i.0 as usize].halted = false;
        sim.world.wake(s2i);
        sim.run_until(secs(6));
        assert!(sim.world.insts[aggi.0 as usize].watermark > secs(3));
    }

    #[test]
    fn markers_measure_latency_through_the_pipeline() {
        let (w, _) = tiny_job(EngineConfig::test(), 1_000.0, 64, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        let m = &sim.world.metrics;
        assert!(m.latency.len() > 30);
        // Quantiles are available and ordered.
        let p50 = m.latency_quantile_ms(0.5).expect("samples");
        let p99 = m.latency_quantile_ms(0.99).expect("samples");
        assert!(p99 >= p50);
    }

    #[test]
    fn suspension_series_is_sampled() {
        let (mut w, agg) = tiny_job(EngineConfig::test(), 4_000.0, 128, 2);
        w.schedule_scale(secs(1), agg, 3);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(3));
        // NoScale never migrates: new instance suspends nothing, but the
        // series itself must tick once a scale nominated the operator.
        assert!(sim.world.metrics.suspension.len() > 5);
    }

    #[test]
    fn checkpoints_complete_end_to_end() {
        let mut cfg = EngineConfig::test();
        cfg.checkpoint_interval = Some(simcore::time::ms(500));
        let (w, _) = tiny_job(cfg, 500.0, 16, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(4));
        assert!(
            sim.world.metrics.checkpoints.len() >= 3,
            "checkpoints completed: {}",
            sim.world.metrics.checkpoints.len()
        );
    }

    #[test]
    fn halt_and_resume_pause_the_pipeline() {
        let (w, _) = tiny_job(EngineConfig::test(), 1000.0, 16, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(1));
        let before = sim.world.metrics.sink_records;
        sim.world.halt_all();
        sim.run_until(secs(2));
        let during = sim.world.metrics.sink_records;
        assert_eq!(before, during, "halted pipeline must not deliver");
        sim.world.resume_all();
        sim.run_until(secs(3));
        assert!(sim.world.metrics.sink_records > during);
    }

    #[test]
    fn migration_links_transfer_state() {
        let (mut w, agg) = tiny_job(EngineConfig::test(), 2000.0, 512, 2);
        w.schedule_scale(secs(1), agg, 3);
        let mut sim = Sim::new(w, Box::new(NoScale));
        // Run past deployment.
        sim.run_until(secs(2));
        let plan_moves = sim.world.scale.plan.as_ref().expect("plan").moves.clone();
        // Halt processing first: NoScale never updates routing, so records
        // for extracted groups would otherwise hit the old instances' (by
        // design) missing-state panic.
        sim.world.halt_all();
        for m in &plan_moves {
            sim.world.migrate_group(m.from, m.to, m.kg, SubscaleId(0));
        }
        // The chunk events call plugin.on_chunk (NoScale drops them), so
        // verify the links dispatched, bytes were counted and the sources
        // no longer hold the groups.
        sim.run_until(secs(3));
        assert!(sim.world.scale.metrics.bytes_transferred > 0);
        for m in &plan_moves {
            assert!(!sim.world.insts[m.from.0 as usize].state.holds_group(m.kg));
        }
    }

    #[test]
    fn run_until_leaves_the_clock_at_the_horizon() {
        // Regression: `run_until(t)` used to leave the clock at the last
        // dispatched event. With a 10 ms source-tick granularity, an
        // off-grid horizon almost always falls in an event gap, so
        // `now()` came back short of `t` — and anything the caller then
        // scheduled relative to `now()` (a follow-up scale, a plugin
        // timer) landed before the horizon it had just run to, or in the
        // past outright once the queue had drained. The driver now
        // advances the clock to the exhausted horizon.
        let horizon = secs(1) + 4_321; // deliberately off every event grid
        let (w, agg) = tiny_job(EngineConfig::test(), 2_000.0, 64, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(horizon);
        assert_eq!(
            sim.world.now(),
            horizon,
            "run_until must advance the clock to the horizon it exhausted"
        );
        // The original symptom: relative scheduling after the call is now
        // anchored at the horizon.
        let delay = 2_500;
        sim.world.schedule_scale(sim.world.now() + delay, agg, 3);
        sim.run_until(horizon + delay);
        assert!(
            sim.world.scale.in_progress || sim.world.scale.epoch > 0,
            "scale scheduled relative to now() after run_until never fired"
        );
        // Repeated runs to the same horizon are idempotent on the clock.
        sim.run_until(horizon + delay);
        assert_eq!(sim.world.now(), horizon + delay);
    }

    #[test]
    fn batch_and_single_dispatch_produce_identical_digests() {
        // The dispatch mode is a pure perf knob: draining a same-instant
        // run in one scheduler call must not change the event
        // interleaving. A mid-run scale keeps the control plane (boxed
        // priority/control events) in the mix.
        let digest = |mode: DispatchMode| {
            let mut cfg = EngineConfig::test();
            cfg.seed = 0xBA7C;
            let (mut w, agg) = tiny_job(cfg, 8_000.0, 256, 2);
            w.schedule_scale(secs(1), agg, 4);
            let mut sim = Sim::new(w, Box::new(NoScale)).with_dispatch_mode(mode);
            sim.run_until(secs(4));
            (sim.world.metrics_digest(), sim.world.q.processed())
        };
        assert_eq!(
            digest(DispatchMode::SinglePop),
            digest(DispatchMode::Batch),
            "batch dispatch changed the event interleaving"
        );
    }

    #[test]
    fn region_counts_produce_identical_digests() {
        // The region count is a pure perf knob like the backend and the
        // dispatch mode: any partitioning must pop the identical global
        // (at, seq) order. A mid-run rescale exercises scale-out region
        // inheritance and the lookahead refresh.
        let digest = |regions: usize, mode: DispatchMode| {
            let mut cfg = EngineConfig::test();
            cfg.seed = 0x7E91;
            cfg.regions = regions;
            let (mut w, agg) = tiny_job(cfg, 8_000.0, 256, 2);
            w.schedule_scale(secs(1), agg, 4);
            let mut sim = Sim::new(w, Box::new(NoScale)).with_dispatch_mode(mode);
            sim.run_until(secs(4));
            (sim.world.metrics_digest(), sim.world.q.processed())
        };
        let reference = digest(1, DispatchMode::SinglePop);
        for regions in [1usize, 2, 3] {
            for mode in [DispatchMode::SinglePop, DispatchMode::Batch] {
                assert_eq!(
                    digest(regions, mode),
                    reference,
                    "regions={regions} mode={mode:?} diverged from the sequential engine"
                );
            }
        }
    }

    #[test]
    fn disjoint_pipelines_have_no_cut_and_identical_digests() {
        let digest = |regions: usize| {
            let mut cfg = EngineConfig::test();
            cfg.seed = 0x2F2F;
            cfg.regions = regions;
            let w = twin_jobs(cfg, 4_000.0, 128, 2, 2);
            if regions == 2 {
                assert_eq!(
                    w.region_map.cut_channels(),
                    0,
                    "disjoint pipelines must not be split across a cut"
                );
            }
            let mut sim = Sim::new(w, Box::new(NoScale));
            sim.run_until(secs(3));
            (sim.world.metrics_digest(), sim.world.q.processed())
        };
        assert_eq!(digest(1), digest(2));
    }

    #[test]
    fn region_sync_stats_account_conservative_progress() {
        let mut cfg = EngineConfig::test();
        cfg.regions = 2;
        let (w, _) = tiny_job(cfg, 4_000.0, 128, 2);
        let mut sim = Sim::new(w, Box::new(NoScale));
        sim.run_until(secs(2));
        let stats = sim.world.q.region_sync_stats();
        assert!(stats.runs > 0, "no runs were accounted");
        // A cut pipeline has zero-lookahead reverse edges, so some pops
        // must have needed the global-minimum rule (the lockstep the
        // merged scheduler collapses — see simcore::region docs).
        assert!(
            stats.min_rule_grants > 0,
            "a cut pipeline cannot advance on lookahead alone"
        );
        // Both regions made progress.
        assert!(sim.world.q.region_clock(0) > 0);
        assert!(sim.world.q.region_clock(1) > 0);
    }
}
