//! `streamflow` — a from-scratch stateful stream-processing engine running
//! on a deterministic discrete-event simulator.
//!
//! This crate is the substrate for the DRRS reproduction (ICDE 2025,
//! "Towards Fine-Grained Scalability for Stateful Stream Processing
//! Systems"). It models the parts of Apache Flink that rescaling mechanisms
//! interact with:
//!
//! * a job DAG of operators with parallel instances ([`graph`], [`instance`]),
//! * keyed state partitioned into key-groups with per-predecessor routing
//!   tables ([`state`], [`keygroup`]),
//! * bounded credit-based channels whose backpressure propagates to the
//!   sources ([`channel`]),
//! * event-time watermarks, sliding windows and aligned checkpoints
//!   ([`operator`], [`window`]),
//! * migration links with serialization + bandwidth costs, suspension
//!   accounting and the scaling-plugin API every mechanism implements
//!   ([`scaling`]),
//! * latency / throughput / suspension measurement and the paper's
//!   scaling-period detector ([`metrics`]),
//! * an execution-order semantics checker ([`semantics`]), and
//! * an in-flight event/metrics bus with bounded per-class channels and
//!   pluggable sinks ([`bus`]).
//!
//! # Quick start
//!
//! ```
//! use streamflow::config::EngineConfig;
//! use streamflow::graph::{EdgeKind, JobBuilder};
//! use streamflow::operator::KeyedAgg;
//! use streamflow::scaling::NoScale;
//! use streamflow::world::tests_support::FixedGen;
//! use streamflow::world::Sim;
//!
//! let mut b = JobBuilder::new(EngineConfig::test());
//! let src = b.source("src", 1, Box::new(|_| Box::new(FixedGen::new(1000.0, 64))));
//! let agg = b.operator("agg", 2, Box::new(|| Box::new(KeyedAgg {
//!     service: 50, bytes_per_key: 1000, bytes_per_record: 0, emit_every: 1,
//! })));
//! let sink = b.sink("sink", 1);
//! b.connect(src, agg, EdgeKind::Keyed);
//! b.connect(agg, sink, EdgeKind::Rebalance);
//! let mut sim = Sim::new(b.build(), Box::new(NoScale));
//! sim.run_until(simcore::time::secs(2));
//! assert!(sim.world.metrics.sink_records > 0);
//! ```

pub mod bus;
pub mod channel;
pub mod config;
pub mod events;
pub mod graph;
pub mod ids;
pub mod instance;
pub mod keygroup;
pub mod metrics;
pub mod operator;
pub mod parallel;
pub mod record;
pub mod region;
pub mod scaling;
pub mod semantics;
pub mod state;
pub mod window;
pub mod world;

pub use bus::{Bus, BusClass, BusEvent, BusEventKind, BusSinkKind, BusSummary};
pub use config::EngineConfig;
pub use graph::{EdgeKind, JobBuilder};
pub use ids::{InstId, Key, KeyGroup, OpId, SubscaleId};
pub use parallel::{run_parallel, ParallelReport};
pub use record::{Record, ScaleSignal, SignalKind, StreamElement};
pub use region::RegionMap;
pub use scaling::{NoScale, ScalePlan, ScalePlugin, Selection};
pub use simcore::SchedulerBackend;
pub use world::{DispatchMode, Observables, Sim, World};
