//! Stream elements: data records, latency markers, watermarks, checkpoint
//! barriers and scaling signals — everything that can travel in a channel.

use simcore::SimTime;

use crate::ids::{InstId, Key, SubscaleId};

/// What a record is for. Latency markers flow like records but bypass
/// windowing (paper §V-A) and are timestamped at creation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordKind {
    /// A normal data record.
    Data,
    /// A latency marker: measured at the sink as `now - created`.
    Marker,
}

/// A data record (or marker) flowing through the dataflow.
#[derive(Clone, Debug)]
pub struct Record {
    /// Partitioning key.
    pub key: Key,
    /// Payload value; meaning is workload-specific (bid price, engagement
    /// points, join tag, ...).
    pub value: i64,
    /// Event time assigned by the source.
    pub event_time: SimTime,
    /// Wall-clock (simulated) creation time, for end-to-end latency.
    pub created: SimTime,
    /// Data or marker.
    pub kind: RecordKind,
    /// `(emitting instance, per-instance emission sequence)` — lets the
    /// semantics checker verify that per-key execution order preserves each
    /// upstream's emission order across scaling.
    pub origin: (InstId, u64),
    /// Batch multiplicity: `count` identical-key records fused into one
    /// element (simulation efficiency for the sensitivity grid). Markers are
    /// always `count == 1`.
    pub count: u32,
}

impl Record {
    /// A plain data record with multiplicity 1; origin is stamped at emission.
    pub fn data(key: Key, value: i64, event_time: SimTime) -> Self {
        Self {
            key,
            value,
            event_time,
            created: event_time,
            kind: RecordKind::Data,
            origin: (InstId(u32::MAX), 0),
            count: 1,
        }
    }
}

/// The kind of a scaling signal (the vocabulary shared by all mechanisms;
/// each mechanism uses the subset it needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignalKind {
    /// DRRS trigger barrier: priority, bypasses all in-flight data, starts
    /// migration at the scaling instance.
    Trigger,
    /// DRRS confirm barrier: in-order routing confirmation; re-routed by the
    /// old instance to the new one ("implicit alignment").
    Confirm,
    /// A conventional coupled barrier (OTFS / Megaphone): routing
    /// confirmation + migration trigger in one, requires alignment with
    /// input blocking.
    Coupled,
    /// A re-routed confirm barrier arriving at the *new* instance.
    ConfirmRerouted,
}

/// A scaling signal traveling in-band (or as a priority message).
#[derive(Clone, Copy, Debug)]
pub struct ScaleSignal {
    /// Which scaling operation this belongs to (monotonic per run).
    pub scale_epoch: u32,
    /// Which subscale / migration batch.
    pub subscale: SubscaleId,
    /// Barrier kind.
    pub kind: SignalKind,
    /// The predecessor instance that emitted it.
    pub from_pred: InstId,
    /// Injection time at the predecessor (for propagation-delay metrics).
    pub injected_at: SimTime,
}

/// Anything that can occupy a slot in a channel queue.
#[derive(Clone, Debug)]
pub enum StreamElement {
    /// Data record or latency marker.
    Record(Record),
    /// Event-time watermark.
    Watermark(SimTime),
    /// Aligned-checkpoint barrier.
    CheckpointBarrier(u64),
    /// Scaling signal (confirm/coupled travel in-band; triggers are usually
    /// delivered as priority messages instead).
    Scale(ScaleSignal),
}

/// Handle to a [`StreamElement`] parked in the world's [`RecordArena`].
/// Everything between emission and consumption — channel queues, sender
/// backlogs, the in-flight leg of `Ev::Deliver` — passes these 8-byte
/// `Copy` handles; the payload itself lives exactly once in the arena.
pub type RecordRef = simcore::SlabRef;

/// The slab owning every stream element currently queued, backlogged or on
/// the wire. Slots are generational: a handle that outlives its element is
/// caught at the access site instead of aliasing recycled storage.
pub type RecordArena = simcore::Slab<StreamElement>;

impl StreamElement {
    /// Is this a data/marker record?
    pub fn is_record(&self) -> bool {
        matches!(self, StreamElement::Record(_))
    }

    /// The record inside, if any.
    pub fn as_record(&self) -> Option<&Record> {
        match self {
            StreamElement::Record(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_constructor_defaults() {
        let r = Record::data(7, 42, 1000);
        assert_eq!(r.key, 7);
        assert_eq!(r.count, 1);
        assert_eq!(r.kind, RecordKind::Data);
        assert_eq!(r.created, 1000);
    }

    #[test]
    fn element_record_accessors() {
        let e = StreamElement::Record(Record::data(1, 2, 3));
        assert!(e.is_record());
        assert_eq!(e.as_record().map(|r| r.key), Some(1));
        let w = StreamElement::Watermark(5);
        assert!(!w.is_record());
        assert!(w.as_record().is_none());
    }
}
