//! Physical operator instances (parallel subtasks) and source generators.

use std::collections::VecDeque;

use simcore::{FxHashSet, SimTime};

use crate::ids::{ChannelId, InstId, Key, OpId};
use crate::operator::OperatorLogic;
use crate::record::Record;
use crate::state::StateBackend;

/// A workload generator driving one source instance. Implementations are
/// deterministic given their construction seed.
pub trait SourceGen: Send {
    /// Demanded input rate (records/second) at simulated time `t`. This is
    /// the pre-backpressure demand, i.e. the Kafka producer rate.
    fn rate(&self, t: SimTime) -> f64;

    /// Draw the next record: `(key, value)`. Event time is assigned by the
    /// engine.
    fn next(&mut self, t: SimTime) -> (Key, i64);

    /// Optional end of stream: stop generating after this many records.
    fn limit(&self) -> Option<u64> {
        None
    }

    /// Batch multiplicity: fuse this many same-key records into one stream
    /// element (`Record::count`). 1 = fully record-granular. Large
    /// sensitivity sweeps use small batches for simulation efficiency; all
    /// admissibility decisions remain per element.
    fn batch(&self) -> u32 {
        1
    }
}

/// Engine-managed state of one source instance: the pending queue models the
/// Kafka topic backlog, so marker latency includes "Kafka transit time" as
/// in the paper's measurement methodology.
pub struct SourceState {
    /// Generated but not yet emitted records (the Kafka backlog).
    pub pending: VecDeque<Record>,
    /// The generator.
    pub gen: Box<dyn SourceGen>,
    /// Fractional-record accumulator for rate control.
    pub carry: f64,
    /// Records generated so far.
    pub generated: u64,
    /// Records emitted into the dataflow so far.
    pub emitted: u64,
    /// Next latency-marker injection time.
    pub next_marker: SimTime,
    /// Next watermark emission time.
    pub next_watermark: SimTime,
    /// Next checkpoint-barrier injection time (sources only; id counter is
    /// global in the world).
    pub next_checkpoint: Option<SimTime>,
}

impl SourceState {
    /// Wrap a generator. The pending queue is pre-sized: it is the single
    /// hottest queue in the simulation (every generated record passes
    /// through it) and under backpressure it grows into the thousands.
    pub fn new(gen: Box<dyn SourceGen>, marker_offset: SimTime) -> Self {
        Self {
            pending: VecDeque::with_capacity(1024),
            gen,
            carry: 0.0,
            generated: 0,
            emitted: 0,
            next_marker: marker_offset,
            next_watermark: 0,
            next_checkpoint: None,
        }
    }
}

/// Checkpoint alignment state at an instance.
#[derive(Default)]
pub struct CkptAlign {
    /// Checkpoint id being aligned.
    pub id: u64,
    /// Channels whose barrier has arrived (and are therefore blocked).
    pub arrived: FxHashSet<ChannelId>,
}

/// One physical operator instance.
pub struct Instance {
    /// Global instance id.
    pub id: InstId,
    /// Owning logical operator.
    pub op: OpId,
    /// Index among the operator's instances.
    pub local_idx: usize,
    /// Input channels (ordered; the order defines channel rotation).
    pub in_channels: Vec<ChannelId>,
    /// Output channels.
    pub out_channels: Vec<ChannelId>,
    /// Keyed state.
    pub state: StateBackend,
    /// Operator logic (None for sources/sinks). Taken out during dispatch.
    pub logic: Option<Box<dyn OperatorLogic>>,
    /// Source machinery (sources only).
    pub source: Option<SourceState>,
    /// Is the instance mid-quantum?
    pub busy: bool,
    /// Guards stale `ProcDone` events.
    pub proc_gen: u64,
    /// Is the instance stalled on output backpressure?
    pub blocked_out: bool,
    /// Active-channel cursor (index into `in_channels`).
    pub active_ch: usize,
    /// Channels blocked by alignment (checkpoint or coupled scale barriers).
    pub blocked_channels: FxHashSet<ChannelId>,
    /// In-progress checkpoint alignment.
    pub ckpt: Option<CkptAlign>,
    /// Operator watermark (min across channels).
    pub watermark: SimTime,
    /// When the current suspension started, if suspended.
    pub suspended_since: Option<SimTime>,
    /// Total suspension time accumulated.
    pub suspended_total: SimTime,
    /// Emission sequence counter (stamps record origins).
    pub emit_seq: u64,
    /// Halted by Stop-Checkpoint-Restart.
    pub halted: bool,
    /// When this instance becomes operational (deploy delay).
    pub operational_at: SimTime,
    /// Round-robin cursors per out-edge for rebalance partitioning and
    /// marker forwarding, indexed densely by edge id (edge count is fixed
    /// at build time; a hash lookup per emitted record is pure overhead).
    pub rr_cursor: Vec<usize>,
    /// Records processed by this instance.
    pub processed: u64,
}

impl Instance {
    /// Create a fresh instance.
    pub fn new(id: InstId, op: OpId, local_idx: usize, state: StateBackend) -> Self {
        Self {
            id,
            op,
            local_idx,
            in_channels: Vec::new(),
            out_channels: Vec::new(),
            state,
            logic: None,
            source: None,
            busy: false,
            proc_gen: 0,
            blocked_out: false,
            active_ch: 0,
            blocked_channels: FxHashSet::default(),
            ckpt: None,
            watermark: 0,
            suspended_since: None,
            suspended_total: 0,
            emit_seq: 0,
            halted: false,
            operational_at: 0,
            rr_cursor: Vec::new(),
            processed: 0,
        }
    }

    /// Mark the instance suspended starting at `now` (idempotent).
    pub fn enter_suspend(&mut self, now: SimTime) {
        if self.suspended_since.is_none() {
            self.suspended_since = Some(now);
        }
    }

    /// Leave suspension, accumulating the elapsed time.
    pub fn leave_suspend(&mut self, now: SimTime) {
        if let Some(s) = self.suspended_since.take() {
            self.suspended_total += now.saturating_sub(s);
        }
    }

    /// Total suspension including a live open interval.
    pub fn suspension_as_of(&self, now: SimTime) -> SimTime {
        self.suspended_total + self.suspended_since.map_or(0, |s| now.saturating_sub(s))
    }

    /// Next emission sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.emit_seq += 1;
        self.emit_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(InstId(0), OpId(0), 0, StateBackend::new(16, 1))
    }

    #[test]
    fn suspension_accumulates() {
        let mut i = inst();
        i.enter_suspend(100);
        i.enter_suspend(150); // idempotent
        assert_eq!(i.suspension_as_of(300), 200);
        i.leave_suspend(300);
        assert_eq!(i.suspended_total, 200);
        assert_eq!(i.suspension_as_of(500), 200);
        i.leave_suspend(600); // no open interval: no-op
        assert_eq!(i.suspended_total, 200);
    }

    #[test]
    fn emit_seq_monotonic() {
        let mut i = inst();
        let a = i.next_seq();
        let b = i.next_seq();
        assert!(b > a);
    }
}
