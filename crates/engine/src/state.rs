//! The keyed state backend.
//!
//! State is partitioned into key-groups; each key-group is further split
//! into `fanout` sub-groups to support Meces' hierarchical state
//! organization (fanout 1 for everyone else). State values are *real*
//! (counts/sums/window panes) so that output equivalence can be verified,
//! while `nominal_bytes` carries the migration-cost model so that totals can
//! match the paper's 0.5–30 GB without materializing gigabytes.
//!
//! # Layout
//!
//! The backend is **dense**: sub-group slots live in one flat
//! `Vec<Option<SubState>>` indexed by `kg * fanout + sub`, and the per-group
//! inactive flags in a parallel `Vec<bool>`. `max_key_groups` is small (128
//! or 256 in every paper configuration), so the dense table costs a few KB
//! per instance and turns every state access on the per-record hot path into
//! two array indexings — no hashing, no map lookups, and iteration order is
//! the key-group order by construction, which keeps runs deterministic.
//! Per-key entries inside a sub-group use [`simcore::FxHashMap`]: simulator
//! keys are trusted `u64`s, so the DoS-resistant (and several-times slower)
//! SipHash default buys nothing here.
//!
//! A key-group is "locally present" iff at least one of its sub-group slots
//! is occupied; extracting the last sub-group of a group also clears its
//! inactive flag, matching the previous map-based semantics where the
//! group's entry was removed.

use std::collections::HashMap;

use simcore::FxHashMap;

use crate::ids::{sub_group_of, Key, KeyGroup};
use crate::window::PaneSet;

/// A single key's state.
#[derive(Clone, Debug, PartialEq)]
pub enum StateValue {
    /// Running count.
    Count(u64),
    /// Running count + sum.
    Sum { count: u64, sum: i64 },
    /// Sliding-window panes.
    Panes(PaneSet),
    /// Two lists (e.g. persons/auctions sides of a windowed join).
    Lists(Vec<i64>, Vec<i64>),
}

impl StateValue {
    /// Running count, where meaningful (testing/verification helper).
    pub fn count(&self) -> u64 {
        match self {
            StateValue::Count(c) => *c,
            StateValue::Sum { count, .. } => *count,
            StateValue::Panes(p) => p.total_count(),
            StateValue::Lists(a, b) => (a.len() + b.len()) as u64,
        }
    }
}

/// State of one sub-group (the migration atom under hierarchical
/// organization; the whole key-group when `fanout == 1`).
#[derive(Clone, Debug, Default)]
pub struct SubState {
    /// Per-key values (fast deterministic hashing; keys are trusted).
    pub entries: FxHashMap<Key, StateValue>,
    /// Modeled serialized size of this sub-group's state.
    pub nominal_bytes: u64,
}

/// A migratable unit of state extracted from a backend.
#[derive(Clone, Debug)]
pub struct StateUnit {
    /// Owning key-group.
    pub kg: KeyGroup,
    /// Sub-group index within the key-group.
    pub sub: u8,
    /// The state itself.
    pub state: SubState,
}

impl StateUnit {
    /// Serialized size used by the migration cost model.
    pub fn bytes(&self) -> u64 {
        self.state.nominal_bytes
    }
}

/// Per-instance keyed state store (dense layout, see module docs).
#[derive(Debug)]
pub struct StateBackend {
    max_key_groups: u16,
    fanout: u8,
    /// Flat sub-group table: index `kg * fanout + sub`.
    slots: Vec<Option<SubState>>,
    /// Per-group "arrived but awaiting alignment" flag (DRRS). Meaningful
    /// only while the group is present.
    inactive: Vec<bool>,
}

impl StateBackend {
    /// Create an empty backend.
    pub fn new(max_key_groups: u16, fanout: u8) -> Self {
        let fanout = fanout.max(1);
        let k = max_key_groups as usize;
        let mut slots = Vec::new();
        slots.resize_with(k * fanout as usize, || None);
        Self {
            max_key_groups,
            fanout,
            slots,
            inactive: vec![false; k],
        }
    }

    #[inline]
    fn slot_idx(&self, kg: KeyGroup, sub: u8) -> usize {
        debug_assert!(kg.0 < self.max_key_groups, "key-group {kg} out of range");
        debug_assert!(sub < self.fanout, "sub-group {sub} out of range");
        kg.0 as usize * self.fanout as usize + sub as usize
    }

    #[inline]
    fn group_slots(&self, kg: KeyGroup) -> &[Option<SubState>] {
        let base = kg.0 as usize * self.fanout as usize;
        &self.slots[base..base + self.fanout as usize]
    }

    /// Sub-group index of a key.
    #[inline]
    pub fn sub_of(&self, key: Key) -> u8 {
        sub_group_of(key, self.max_key_groups, self.fanout)
    }

    /// Is the sub-group holding `key` locally present?
    #[inline]
    pub fn holds(&self, kg: KeyGroup, sub: u8) -> bool {
        self.slots[self.slot_idx(kg, sub)].is_some()
    }

    /// Are *all* sub-groups of `kg` locally present?
    #[inline]
    pub fn holds_group(&self, kg: KeyGroup) -> bool {
        self.group_slots(kg).iter().all(|s| s.is_some())
    }

    /// Is any sub-group of `kg` locally present?
    #[inline]
    fn group_exists(&self, kg: KeyGroup) -> bool {
        self.group_slots(kg).iter().any(|s| s.is_some())
    }

    /// Mark a key-group inactive (arrived but awaiting alignment).
    pub fn set_inactive(&mut self, kg: KeyGroup, inactive: bool) {
        self.inactive[kg.0 as usize] = inactive;
    }

    /// Is the key-group active (present groups default to active)?
    #[inline]
    pub fn is_active(&self, kg: KeyGroup) -> bool {
        !self.inactive[kg.0 as usize]
    }

    /// Ensure a key-group exists locally with all sub-groups (used when an
    /// instance is the initial owner).
    pub fn ensure_group(&mut self, kg: KeyGroup) {
        if self.group_exists(kg) {
            return;
        }
        let base = kg.0 as usize * self.fanout as usize;
        for s in &mut self.slots[base..base + self.fanout as usize] {
            *s = Some(SubState::default());
        }
    }

    /// Access the value for `key`, creating it with `default` if absent.
    /// Panics if the sub-group is not locally present — admission control
    /// must have checked [`Self::holds`] first.
    #[inline]
    pub fn entry_or(
        &mut self,
        kg: KeyGroup,
        key: Key,
        default: impl FnOnce() -> StateValue,
    ) -> &mut StateValue {
        let sub = self.sub_of(key);
        let idx = self.slot_idx(kg, sub);
        let s = self.slots[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("state access to absent sub-group {kg}/{sub}"));
        s.entries.entry(key).or_insert_with(default)
    }

    /// Add to a sub-group's modeled serialized size (operators call this as
    /// their state grows).
    #[inline]
    pub fn add_bytes(&mut self, kg: KeyGroup, key: Key, bytes: i64) {
        let sub = self.sub_of(key);
        let idx = self.slot_idx(kg, sub);
        if let Some(s) = self.slots[idx].as_mut() {
            s.nominal_bytes = (s.nominal_bytes as i64 + bytes).max(0) as u64;
        }
    }

    /// Extract (remove) one sub-group for migration.
    pub fn extract(&mut self, kg: KeyGroup, sub: u8) -> Option<StateUnit> {
        let idx = self.slot_idx(kg, sub);
        let state = self.slots[idx].take()?;
        if !self.group_exists(kg) {
            self.inactive[kg.0 as usize] = false;
        }
        Some(StateUnit { kg, sub, state })
    }

    /// Extract all sub-groups of a key-group (key-group-granular migration).
    pub fn extract_group(&mut self, kg: KeyGroup) -> Vec<StateUnit> {
        (0..self.fanout)
            .filter_map(|s| self.extract(kg, s))
            .collect()
    }

    /// Install a migrated unit.
    pub fn install(&mut self, unit: StateUnit, active: bool) {
        let idx = self.slot_idx(unit.kg, unit.sub);
        debug_assert!(
            self.slots[idx].is_none(),
            "double-install of {}/{}",
            unit.kg,
            unit.sub
        );
        self.slots[idx] = Some(unit.state);
        self.set_inactive(unit.kg, !active);
    }

    /// Total modeled bytes held locally.
    pub fn total_bytes(&self) -> u64 {
        self.slots.iter().flatten().map(|s| s.nominal_bytes).sum()
    }

    /// Total number of keys held locally.
    pub fn total_keys(&self) -> usize {
        self.slots.iter().flatten().map(|s| s.entries.len()).sum()
    }

    /// Bytes held for one key-group.
    pub fn group_bytes(&self, kg: KeyGroup) -> u64 {
        self.group_slots(kg)
            .iter()
            .flatten()
            .map(|s| s.nominal_bytes)
            .sum()
    }

    /// Iterate over locally present key-groups, in key-group order.
    pub fn held_groups(&self) -> impl Iterator<Item = KeyGroup> + '_ {
        (0..self.max_key_groups)
            .map(KeyGroup)
            .filter(|&kg| self.group_exists(kg))
    }

    /// Fold all per-key values into `(key, count)` pairs — used by output
    /// equivalence tests.
    pub fn snapshot_counts(&self) -> HashMap<Key, u64> {
        let mut out = HashMap::new();
        for s in self.slots.iter().flatten() {
            for (&k, v) in &s.entries {
                *out.entry(k).or_insert(0) += v.count();
            }
        }
        out
    }

    /// Sub-group fanout.
    pub fn fanout(&self) -> u8 {
        self.fanout
    }

    /// Convenience for operators: adjust nominal bytes for the sub-group
    /// holding `key`, computing the key-group internally.
    #[inline]
    pub fn add_bytes_for(&mut self, key: Key, bytes: i64) {
        let kg = crate::ids::key_group_of(key, self.max_key_groups);
        self.add_bytes(kg, key, bytes);
    }

    /// Visit every locally present `(key, value)` pair mutably (window
    /// firing). Iteration order is deterministic (sorted by key-group then
    /// key) so runs stay reproducible.
    pub fn for_each_entry_mut(&mut self, mut f: impl FnMut(Key, &mut StateValue)) {
        let mut keys: Vec<Key> = Vec::new();
        for s in self.slots.iter_mut().flatten() {
            keys.clear();
            keys.extend(s.entries.keys().copied());
            keys.sort_unstable();
            for &k in &keys {
                let v = s.entries.get_mut(&k).expect("key listed");
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> StateBackend {
        let mut b = StateBackend::new(16, 1);
        b.ensure_group(KeyGroup(3));
        b
    }

    #[test]
    fn entry_updates_and_counts() {
        let mut b = backend();
        match b.entry_or(KeyGroup(3), 77, || StateValue::Count(0)) {
            StateValue::Count(c) => *c += 5,
            _ => unreachable!(),
        }
        assert_eq!(b.snapshot_counts()[&77], 5);
        assert_eq!(b.total_keys(), 1);
    }

    #[test]
    fn extract_install_round_trip() {
        let mut b = backend();
        *b.entry_or(KeyGroup(3), 1, || StateValue::Count(0)) = StateValue::Count(9);
        b.add_bytes(KeyGroup(3), 1, 1024);
        let units = b.extract_group(KeyGroup(3));
        assert_eq!(units.len(), 1);
        assert!(!b.holds_group(KeyGroup(3)));
        assert_eq!(b.total_bytes(), 0);

        let mut b2 = StateBackend::new(16, 1);
        for u in units {
            assert_eq!(u.bytes(), 1024);
            b2.install(u, true);
        }
        assert!(b2.holds_group(KeyGroup(3)));
        assert_eq!(b2.snapshot_counts()[&1], 9);
    }

    #[test]
    fn inactive_flag() {
        let mut b = backend();
        assert!(b.is_active(KeyGroup(3)));
        b.set_inactive(KeyGroup(3), true);
        assert!(!b.is_active(KeyGroup(3)));
        b.set_inactive(KeyGroup(3), false);
        assert!(b.is_active(KeyGroup(3)));
    }

    #[test]
    fn extracting_last_sub_clears_inactive_flag() {
        // Dense-backend equivalent of the old "remove the map entry removes
        // the flag": once a group is fully extracted, a later re-install
        // must not inherit a stale inactive flag unless asked for.
        let mut b = backend();
        *b.entry_or(KeyGroup(3), 1, || StateValue::Count(0)) = StateValue::Count(1);
        b.set_inactive(KeyGroup(3), true);
        let unit = b.extract(KeyGroup(3), 0).expect("present");
        assert!(!b.holds(KeyGroup(3), 0));
        assert!(
            b.is_active(KeyGroup(3)),
            "flag must reset on full extraction"
        );
        b.install(unit, true);
        assert!(b.is_active(KeyGroup(3)));
    }

    #[test]
    fn hierarchical_extract_is_partial() {
        let mut b = StateBackend::new(16, 4);
        b.ensure_group(KeyGroup(2));
        // Find keys for two different sub-groups of kg 2.
        let mut keys_by_sub: HashMap<u8, Key> = HashMap::new();
        for k in 0..100_000u64 {
            if crate::ids::key_group_of(k, 16) == KeyGroup(2) {
                keys_by_sub.entry(b.sub_of(k)).or_insert(k);
                if keys_by_sub.len() >= 2 {
                    break;
                }
            }
        }
        let subs: Vec<(u8, Key)> = keys_by_sub.into_iter().collect();
        assert!(subs.len() >= 2);
        for &(_, k) in &subs {
            *b.entry_or(KeyGroup(2), k, || StateValue::Count(0)) = StateValue::Count(1);
        }
        let (s0, k0) = subs[0];
        let unit = b.extract(KeyGroup(2), s0).expect("present");
        assert!(unit.state.entries.contains_key(&k0));
        assert!(!b.holds(KeyGroup(2), s0));
        assert!(!b.holds_group(KeyGroup(2)));
        // The other sub-group is still present.
        assert!(b.holds(KeyGroup(2), subs[1].0));
    }

    #[test]
    fn bytes_never_negative() {
        let mut b = backend();
        b.add_bytes(KeyGroup(3), 1, 100);
        b.add_bytes(KeyGroup(3), 1, -500);
        assert_eq!(b.total_bytes(), 0);
    }

    #[test]
    fn held_groups_iterates_in_order() {
        let mut b = StateBackend::new(16, 1);
        for g in [9u16, 2, 14] {
            b.ensure_group(KeyGroup(g));
        }
        let held: Vec<u16> = b.held_groups().map(|kg| kg.0).collect();
        assert_eq!(held, vec![2, 9, 14]);
    }
}
